// Non-isothermal EM profile tests.
#include <gtest/gtest.h>

#include <cmath>

#include "em/profile.h"
#include "numeric/constants.h"
#include "thermal/impedance.h"

namespace dsmt::em {
namespace {

struct LineSetup {
  materials::Metal metal = materials::make_copper();
  double w = um(1.0);
  double t = um(0.8);
  double rth = 0.0;
  LineSetup() {
    const double weff =
        thermal::effective_width(metres(w), um(3.0), thermal::kPhiQuasi1D);
    rth = thermal::rth_per_length_uniform(um(3.0), W_per_mK(1.15), metres(weff));
  }
};

TEST(EmProfile, HottestPointIsWeakest) {
  const LineSetup s;
  const double p = 5.0;  // strong heating, W/m
  const auto prof = thermal::finite_line_profile(s.metal, s.w, s.t, s.rth,
                                                 um(400), p, kTrefK, kTrefK);
  const auto em_prof = evaluate_line_em(s.metal.em, prof.x, prof.t, kTrefK);
  // TTF ratio is < 1 wherever the line is hotter than T_ref, with the
  // minimum at the (mid-line) temperature peak.
  const std::size_t mid = em_prof.x.size() / 2;
  EXPECT_NEAR(em_prof.ttf_ratio[mid], em_prof.worst_ratio,
              1e-9 * em_prof.worst_ratio);
  EXPECT_LT(em_prof.worst_ratio, 1.0);
  // Ends are via-cooled to T_ref: ratio 1 there.
  EXPECT_NEAR(em_prof.ttf_ratio.front(), 1.0, 1e-9);
  EXPECT_NEAR(em_prof.ttf_ratio.back(), 1.0, 1e-9);
}

TEST(EmProfile, WeakestLinkBelowWorstPoint) {
  const LineSetup s;
  const auto prof = thermal::finite_line_profile(s.metal, s.w, s.t, s.rth,
                                                 um(400), 3.0, kTrefK, kTrefK);
  const auto em_prof = evaluate_line_em(s.metal.em, prof.x, prof.t, kTrefK);
  // The chain correction can only reduce the (median) lifetime further.
  EXPECT_LE(em_prof.weakest_link_ratio, em_prof.worst_ratio * 1.0001);
  EXPECT_GT(em_prof.weakest_link_ratio, 0.0);
}

TEST(EmProfile, ShortLineGainsLifetime) {
  const LineSetup s;
  const double lambda =
      thermal::healing_length(s.metal, s.w, s.t, s.rth);
  const double p = 40.0;  // strong heating: dT_inf ~ 13 K
  // A line much shorter than lambda stays near T_ref -> gain >> 1.
  const double gain_short = short_line_lifetime_gain(
      s.metal, s.w, s.t, s.rth, 0.5 * lambda, p, kTrefK);
  // A thermally long line has no end-cooling benefit at its midpoint.
  const double gain_long = short_line_lifetime_gain(
      s.metal, s.w, s.t, s.rth, 40.0 * lambda, p, kTrefK);
  EXPECT_GT(gain_short, 1.5);
  EXPECT_NEAR(gain_long, 1.0, 0.01);
  EXPECT_GT(gain_short, gain_long);
}

TEST(EmProfile, UniformProfileIsNeutral) {
  const LineSetup s;
  std::vector<double> x{0.0, um(100), um(200)};
  std::vector<double> t(3, kTrefK);
  const auto em_prof = evaluate_line_em(s.metal.em, x, t, kTrefK);
  EXPECT_NEAR(em_prof.worst_ratio, 1.0, 1e-12);
}

TEST(EmProfile, Validation) {
  const LineSetup s;
  EXPECT_THROW(evaluate_line_em(s.metal.em, {0.0}, {kTrefK}, kTrefK),
               std::invalid_argument);
  EXPECT_THROW(evaluate_line_em(s.metal.em, {0.0, 1.0}, {kTrefK, kTrefK},
                                kTrefK, 0.5, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::em
