// Fault-injection coverage for the failure-handling layer: with a fault
// armed, every kernel and engine entry point must either recover (with the
// recovery stage recorded in its core::SolverDiag chain) or throw
// dsmt::SolveError carrying the full chain — silent garbage is the one
// forbidden outcome. Disarmed hooks must be exact no-ops.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/engine.h"
#include "numeric/constants.h"
#include "numeric/fault_injection.h"
#include "numeric/roots.h"
#include "numeric/sparse.h"
#include "selfconsistent/solver.h"
#include "tech/ntrs.h"
#include "thermal/fd2d.h"
#include "thermal/impedance.h"

namespace dsmt {
namespace {

using numeric::fault::FaultKind;
using numeric::fault::FaultPlan;
using numeric::fault::ScopedFault;

double quadratic(double x) { return x * x - 2.0; }

/// 1-D Laplacian with Dirichlet ends: small SPD system for the CG tests.
numeric::CsrMatrix laplacian_1d(std::size_t n) {
  numeric::SparseBuilder b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i + 1 < n) b.add(i, i + 1, -1.0);
  }
  return numeric::CsrMatrix(b);
}

selfconsistent::Problem make_problem() {
  selfconsistent::Problem p;
  p.metal = materials::make_copper();
  p.j0 = MA_per_cm2(0.6);
  p.duty_cycle = 0.1;
  const auto weff =
      thermal::effective_width(um(3.0), um(3.0), thermal::kPhiQuasi1D);
  p.heating_coefficient = selfconsistent::heating_coefficient(
      um(3.0), um(0.5),
      thermal::rth_per_length_uniform(um(3.0), W_per_mK(1.15), weff));
  return p;
}

core::EngineOptions fast_options() {
  core::EngineOptions o;
  o.sim.steps_per_period = 1500;
  o.sim.line_segments = 16;
  return o;
}

bool chain_has_note(const core::SolverDiag& diag, const std::string& piece) {
  for (const auto& ev : diag.chain)
    if (ev.note.find(piece) != std::string::npos) return true;
  return false;
}

TEST(FaultInjection, DisarmedHooksAreExactNoOps) {
  ASSERT_FALSE(numeric::fault::armed());
  EXPECT_EQ(numeric::fault::filter_residual("numeric/cg", 3, 0.125), 0.125);
  EXPECT_EQ(numeric::fault::clamp_iterations("numeric/cg", 777), 777);
  EXPECT_EQ(numeric::fault::injection_count(), 0);
}

TEST(FaultInjection, HooksMatchKernelBySubstringAndIteration) {
  ScopedFault fault({FaultKind::kPerturbResidual, "numeric/cg", 3, 10.0});
  ASSERT_TRUE(numeric::fault::armed());
  // Wrong kernel: untouched.
  EXPECT_EQ(numeric::fault::filter_residual("numeric/brent", 5, 1.0), 1.0);
  // Right kernel, before at_iteration: untouched.
  EXPECT_EQ(numeric::fault::filter_residual("numeric/cg", 2, 1.0), 1.0);
  // Right kernel, at/after at_iteration: scaled, and the firing is counted.
  EXPECT_EQ(numeric::fault::filter_residual("numeric/cg", 3, 1.0), 10.0);
  EXPECT_EQ(numeric::fault::filter_residual("numeric/cg", 4, 2.0), 20.0);
  EXPECT_EQ(numeric::fault::injection_count(), 2);
}

TEST(FaultInjection, NanAndExhaustionHooks) {
  {
    ScopedFault fault({FaultKind::kNanResidual, "", 1, 0.0});
    EXPECT_TRUE(std::isnan(numeric::fault::filter_residual("any", 1, 0.5)));
  }
  {
    ScopedFault fault({FaultKind::kExhaustIterations, "numeric/brent", 2, 0.0});
    EXPECT_EQ(numeric::fault::clamp_iterations("numeric/brent", 200), 2);
    EXPECT_EQ(numeric::fault::clamp_iterations("numeric/bisect", 200), 200);
  }
  EXPECT_FALSE(numeric::fault::armed());
}

TEST(FaultInjection, BrentRobustFallsBackToBisectionOnExhaustion) {
  // Starve Brent (only Brent) of iterations: the robust wrapper must save
  // the solve through its bisection stage and record both attempts.
  ScopedFault fault({FaultKind::kExhaustIterations, "numeric/brent", 1, 0.0});
  core::SolverDiag diag;
  const auto r = numeric::brent_robust(quadratic, 0.0, 2.0, {}, diag);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.root, std::sqrt(2.0), 1e-9);
  EXPECT_TRUE(diag.recovered);
  ASSERT_GE(diag.chain.size(), 2u);
  EXPECT_EQ(diag.chain.front().status, core::StatusCode::kMaxIterations);
  EXPECT_TRUE(chain_has_note(diag, "bisection fallback"));
  EXPECT_GT(numeric::fault::injection_count(), 0);
}

TEST(FaultInjection, BrentRobustFallsBackToBisectionOnNanResidual) {
  ScopedFault fault({FaultKind::kNanResidual, "numeric/brent", 1, 0.0});
  core::SolverDiag diag;
  const auto r = numeric::brent_robust(quadratic, 0.0, 2.0, {}, diag);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.root, std::sqrt(2.0), 1e-9);
  EXPECT_TRUE(diag.recovered);
  EXPECT_EQ(diag.chain.front().status, core::StatusCode::kNonFinite);
}

TEST(FaultInjection, BrentRobustReportsWhenEveryStageFails) {
  // Starve Brent and bisection alike: no stage can succeed, and the chain
  // must show every attempt that was made.
  ScopedFault fault({FaultKind::kExhaustIterations, "numeric/b", 1, 0.0});
  core::SolverDiag diag;
  const auto r = numeric::brent_robust(quadratic, 0.0, 2.0, {}, diag);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status, core::StatusCode::kMaxIterations);
  EXPECT_FALSE(diag.ok());
  EXPECT_FALSE(diag.recovered);
  EXPECT_GE(diag.chain.size(), 2u);
}

TEST(FaultInjection, CgRobustRecordsWarmRetryOnExhaustion) {
  const auto a = laplacian_1d(64);
  const std::vector<double> b(64, 1.0);
  std::vector<double> x(64, 0.0);
  ScopedFault fault({FaultKind::kExhaustIterations, "numeric/cg", 2, 0.0});
  core::SolverDiag diag;
  const auto r = numeric::conjugate_gradient_robust(a, b, x, {}, diag);
  // The retry is clamped by the same fault, so the solve stays exhausted —
  // but both attempts must be on the record.
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status, core::StatusCode::kMaxIterations);
  ASSERT_EQ(diag.chain.size(), 2u);
  EXPECT_TRUE(chain_has_note(diag, "warm-started Jacobi retry"));
}

TEST(FaultInjection, CgRobustRecordsColdRestartOnNanResidual) {
  const auto a = laplacian_1d(64);
  const std::vector<double> b(64, 1.0);
  std::vector<double> x(64, 0.0);
  ScopedFault fault({FaultKind::kNanResidual, "numeric/cg", 1, 0.0});
  core::SolverDiag diag;
  const auto r = numeric::conjugate_gradient_robust(a, b, x, {}, diag);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status, core::StatusCode::kNonFinite);
  ASSERT_EQ(diag.chain.size(), 2u);
  EXPECT_TRUE(chain_has_note(diag, "cold restart"));
}

TEST(FaultInjection, Fd2dSolutionCarriesDiagUnderCgFault) {
  // Library-level field solve: a failed linear solve must come back with
  // converged = false AND a populated diagnostic chain, never bare garbage.
  thermal::CrossSection2D cs(um(10), um(4), 1.15);
  cs.add_wire({um(4.5), um(5.5), um(2), um(2.5)}, 400.0);
  thermal::MeshOptions mesh;
  mesh.h_min = 0.05e-6;
  mesh.h_max = 0.5e-6;
  ScopedFault fault({FaultKind::kExhaustIterations, "numeric/cg", 3, 0.0});
  const auto sol = cs.solve({1.0}, mesh);
  EXPECT_FALSE(sol.converged);
  EXPECT_FALSE(sol.diag.ok());
  EXPECT_GE(sol.diag.chain.size(), 2u);
}

TEST(FaultInjection, SelfconsistentSolveRecoversUnderBrentFault) {
  ScopedFault fault({FaultKind::kExhaustIterations, "numeric/brent", 1, 0.0});
  const auto sol = selfconsistent::solve(make_problem());
  EXPECT_TRUE(sol.converged);
  EXPECT_GT(sol.j_peak, 0.0);
  EXPECT_TRUE(sol.diag.recovered);
  EXPECT_GE(sol.diag.chain.size(), 2u);
  EXPECT_GT(numeric::fault::injection_count(), 0);
}

TEST(FaultInjection, SelfconsistentSolveThrowsWhenRecoveryExhausted) {
  ScopedFault fault({FaultKind::kExhaustIterations, "numeric/b", 1, 0.0});
  try {
    (void)selfconsistent::solve(make_problem());
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_FALSE(e.diag().ok());
    EXPECT_GE(e.diag().chain.size(), 2u);
    EXPECT_NE(std::string(e.what()).find("selfconsistent"), std::string::npos);
  }
}

TEST(FaultInjection, EngineThermalLimitRecoversUnderBrentFault) {
  core::DesignRuleEngine eng(tech::make_ntrs_250nm_cu(), MA_per_cm2(0.6),
                             fast_options());
  ScopedFault fault({FaultKind::kExhaustIterations, "numeric/brent", 1, 0.0});
  const auto sol = eng.thermal_limit(6, materials::make_oxide(), 0.1);
  EXPECT_TRUE(sol.converged);
  EXPECT_GT(sol.j_peak, 0.0);
  EXPECT_TRUE(sol.diag.recovered);
}

TEST(FaultInjection, EngineThermalLimitThrowsWithContextWhenExhausted) {
  core::DesignRuleEngine eng(tech::make_ntrs_250nm_cu(), MA_per_cm2(0.6),
                             fast_options());
  ScopedFault fault({FaultKind::kExhaustIterations, "numeric/b", 1, 0.0});
  try {
    (void)eng.thermal_limit(6, materials::make_oxide(), 0.1);
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_FALSE(e.diag().ok());
    EXPECT_NE(std::string(e.what()).find("core/engine.thermal_limit"),
              std::string::npos);
  }
}

TEST(FaultInjection, EngineDesignRuleTableThrowsNotSilent) {
  core::DesignRuleEngine eng(tech::make_ntrs_250nm_cu(), MA_per_cm2(0.6),
                             fast_options());
  ScopedFault fault({FaultKind::kExhaustIterations, "numeric/b", 1, 0.0});
  EXPECT_THROW((void)eng.design_rule_table({6}, {materials::make_oxide()}),
               SolveError);
}

TEST(FaultInjection, EngineCheckLayerThrowsWithContextWhenExhausted) {
  core::DesignRuleEngine eng(tech::make_ntrs_250nm_cu(), MA_per_cm2(0.6),
                             fast_options());
  ScopedFault fault({FaultKind::kExhaustIterations, "numeric/b", 1, 0.0});
  try {
    (void)eng.check_layer(6, 4.0, materials::make_oxide());
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_FALSE(e.diag().ok());
    EXPECT_NE(std::string(e.what()).find("core/engine.check_layer"),
              std::string::npos);
  }
}

TEST(FaultInjection, EsdScreenStaysValidOrThrowsUnderGlobalFault) {
  // The ESD screen's kernels are closed-form + adaptive ODE, so a global
  // fault may simply never fire — but whatever comes back must be a fully
  // valid assessment, never a poisoned one.
  core::DesignRuleEngine eng(tech::make_ntrs_250nm_cu(), MA_per_cm2(0.6),
                             fast_options());
  ScopedFault fault({FaultKind::kExhaustIterations, "", 1, 0.0});
  try {
    const auto a = eng.esd_screen(6, 2000.0, materials::make_oxide());
    EXPECT_TRUE(std::isfinite(a.peak_temperature));
    EXPECT_GT(a.peak_temperature, 0.0);
  } catch (const SolveError& e) {
    EXPECT_FALSE(e.diag().ok());
    EXPECT_FALSE(e.diag().chain.empty());
  }
}

TEST(FaultInjection, ElectrothermalFixedPointThrowsWhenStarved) {
  // Starve only the outer fixed point: the inner solves stay healthy, and
  // the engine must refuse to hand back the unconverged iterate.
  core::DesignRuleEngine eng(tech::make_ntrs_250nm_cu(), MA_per_cm2(0.6),
                             fast_options());
  ScopedFault fault(
      {FaultKind::kExhaustIterations, "core/engine.electrothermal", 1, 0.0});
  try {
    (void)eng.check_layer_electrothermal(6, 4.0, materials::make_oxide());
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.status(), core::StatusCode::kMaxIterations);
    EXPECT_NE(
        std::string(e.what()).find("core/engine.check_layer_electrothermal"),
        std::string::npos);
  }
}

TEST(FaultInjection, ScopedFaultDisarmsOnScopeExit) {
  {
    ScopedFault fault({FaultKind::kNanResidual, "", 1, 0.0});
    ASSERT_TRUE(numeric::fault::armed());
  }
  ASSERT_FALSE(numeric::fault::armed());
  // Everything behaves again after disarm.
  core::SolverDiag diag;
  const auto r = numeric::brent_robust(quadratic, 0.0, 2.0, {}, diag);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(diag.recovered);
  EXPECT_EQ(diag.chain.size(), 1u);
}

}  // namespace
}  // namespace dsmt
