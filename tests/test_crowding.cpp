// Current-crowding solver tests.
#include <gtest/gtest.h>

#include "em/crowding.h"
#include "numeric/constants.h"

namespace dsmt::em {
namespace {

CrowdingOptions coarse() {
  CrowdingOptions o;
  o.cell = 0.05e-6;
  return o;
}

TEST(Crowding, StraightStripIsUniform) {
  const auto res = solve_straight_strip(um(1.0), um(5.0), coarse());
  ASSERT_TRUE(res.converged);
  // Uniform flow: peak density within a few % of nominal (grid edges add
  // slight noise near the injection cells).
  EXPECT_NEAR(res.crowding_factor, 1.0, 0.15);
  // Resistance of a 5:1 strip = 5 squares.
  EXPECT_NEAR(res.resistance_squares, 5.0, 0.4);
}

TEST(Crowding, SquaresScaleWithAspectRatio) {
  const auto r2 = solve_straight_strip(um(1.0), um(2.0), coarse());
  const auto r8 = solve_straight_strip(um(1.0), um(8.0), coarse());
  EXPECT_NEAR(r8.resistance_squares - r2.resistance_squares, 6.0, 0.5);
}

TEST(Crowding, LBendConcentratesCurrentAtInnerCorner) {
  const auto res = solve_l_bend(um(1.0), um(4.0), coarse());
  ASSERT_TRUE(res.converged);
  // The classic result: sharp inner corner multiplies the local density.
  EXPECT_GT(res.crowding_factor, 1.4);
  EXPECT_LT(res.crowding_factor, 8.0);
  // The bend resistance is below the two legs stretched straight
  // (the corner square counts less than a full square).
  EXPECT_LT(res.resistance_squares, 2.0 * 4.0 / 1.0);
}

TEST(Crowding, FinerGridSharpensTheCornerSingularity) {
  // The corner density is (mildly) singular: refining the grid must not
  // *reduce* the measured peak.
  CrowdingOptions fine = coarse();
  fine.cell = 0.025e-6;
  const auto c = solve_l_bend(um(1.0), um(3.0), coarse());
  const auto f = solve_l_bend(um(1.0), um(3.0), fine);
  EXPECT_GE(f.crowding_factor, c.crowding_factor * 0.95);
}

TEST(Crowding, Validation) {
  EXPECT_THROW(solve_straight_strip(0.0, um(1.0)), std::invalid_argument);
  EXPECT_THROW(solve_l_bend(um(1.0), um(0.5)), std::invalid_argument);
  EXPECT_THROW(solve_crowding({}, {}, {}), std::invalid_argument);
  CrowdingOptions huge;
  huge.cell = 1.0;  // cell larger than the shape
  EXPECT_THROW(solve_straight_strip(um(1.0), um(5.0), huge),
               std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::em
