// Large parameterized sweeps asserting the solver invariants across the
// full (technology x level x dielectric x duty) space — the structural
// guarantees behind every table in EXPERIMENTS.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "numeric/constants.h"
#include "parallel/parallel_for.h"
#include "selfconsistent/batch.h"
#include "selfconsistent/sweep.h"
#include "tech/ntrs.h"
#include "thermal/impedance.h"

namespace dsmt::selfconsistent {
namespace {

tech::Technology node_by_index(int node) {
  switch (node) {
    case 0: return tech::make_ntrs_250nm_cu();
    case 1: return tech::make_ntrs_180nm_cu();
    case 2: return tech::make_ntrs_130nm_cu();
    default: return tech::make_ntrs_100nm_cu();
  }
}

materials::Dielectric dielectric_by_index(int d) {
  switch (d) {
    case 0: return materials::make_oxide();
    case 1: return materials::make_hsq();
    default: return materials::make_polyimide();
  }
}

// (node, level, dielectric, duty-index) — levels beyond a node's stack are
// clamped to its top.
using Case = std::tuple<int, int, int, int>;

class SolverInvariants : public ::testing::TestWithParam<Case> {
 protected:
  static constexpr double kDuties[3] = {0.05, 0.1, 1.0};

  Problem problem() const {
    const auto [node, level_raw, d, duty_idx] = GetParam();
    const auto technology = node_by_index(node);
    const int level = std::min(level_raw, technology.top_level());
    return make_level_problem(technology, level, dielectric_by_index(d),
                              thermal::kPhiQuasi2D, kDuties[duty_idx],
                              MA_per_cm2(1.8));
  }
};

TEST_P(SolverInvariants, SolutionIsPhysicalAndSelfConsistent) {
  const Problem p = problem();
  const Solution s = solve(p);
  ASSERT_TRUE(s.converged);

  // Physicality.
  EXPECT_GT(s.t_metal, p.t_ref);
  EXPECT_LT(s.t_metal, p.metal.t_melt);
  EXPECT_GT(s.j_peak, 0.0);

  // Waveform identities (Eqs. 4-5).
  EXPECT_NEAR(s.j_avg, p.duty_cycle * s.j_peak, 1e-6 * s.j_avg);
  EXPECT_NEAR(s.j_rms, std::sqrt(p.duty_cycle) * s.j_peak, 1e-6 * s.j_rms);

  // Residual vanishes at the root.
  EXPECT_NEAR(residual(p, s.t_metal), 0.0,
              1e-6 * p.j0 * p.j0 + std::abs(residual(p, s.t_metal)) * 1e-3);

  // Thermal side reproduces delta_t exactly.
  const double dt = s.j_rms * s.j_rms * p.metal.resistivity(s.t_metal) *
                    p.heating_coefficient;
  EXPECT_NEAR(dt, s.delta_t, 1e-6 * std::max(1e-9, s.delta_t.value()));

  // Never exceeds the EM-only bound.
  EXPECT_LE(s.j_peak, jpeak_em_only(p) * (1.0 + 1e-9));
}

TEST_P(SolverInvariants, PerturbationsMoveTheAnswerTheRightWay) {
  const Problem base = problem();
  const Solution s0 = solve(base);

  Problem hotter = base;
  hotter.heating_coefficient *= 1.3;
  EXPECT_LT(solve(hotter).j_peak, s0.j_peak * (1.0 + 1e-12));

  Problem stronger_em = base;
  stronger_em.j0 *= 1.3;
  EXPECT_GT(solve(stronger_em).j_peak, s0.j_peak * (1.0 - 1e-12));

  if (base.duty_cycle < 0.9) {
    Problem denser = base;
    denser.duty_cycle = std::min(1.0, base.duty_cycle * 1.5);
    EXPECT_LT(solve(denser).j_peak, s0.j_peak);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FullSpace, SolverInvariants,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),     // node
                       ::testing::Values(1, 4, 6, 8),     // level (clamped)
                       ::testing::Values(0, 1, 2),        // dielectric
                       ::testing::Values(0, 1, 2)));      // duty

// Level monotonicity within each node/dielectric/duty combination.
using LevelCase = std::tuple<int, int, int>;
class LevelMonotonicity : public ::testing::TestWithParam<LevelCase> {};

TEST_P(LevelMonotonicity, JpeakNeverIncreasesGoingUpTheStack) {
  const auto [node, d, duty_idx] = GetParam();
  const double duties[2] = {0.1, 1.0};
  const auto technology = node_by_index(node);
  const auto gf = dielectric_by_index(d);
  double prev = 1e300;
  for (int level = 1; level <= technology.top_level(); ++level) {
    const auto s = solve(make_level_problem(technology, level, gf,
                                            thermal::kPhiQuasi2D,
                                            duties[duty_idx],
                                            MA_per_cm2(1.8)));
    EXPECT_LE(s.j_peak, prev * (1.0 + 1e-9))
        << technology.name << " level " << level;
    prev = s.j_peak;
  }
}

INSTANTIATE_TEST_SUITE_P(AllNodes, LevelMonotonicity,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(0, 1, 2),
                                            ::testing::Values(0, 1)));

// Structural properties of the parallel sweep drivers. These run at an
// elevated thread count on purpose: the invariants must hold on the pooled
// path, not just on the serial fallback this machine would otherwise take.
class ParallelSweepProperties : public ::testing::Test {
 protected:
  void SetUp() override { parallel::set_thread_count(4); }
  void TearDown() override { parallel::set_thread_count(0); }

  static Problem fig_problem() {
    Problem p;
    p.metal = materials::make_copper();
    p.metal.em.activation_energy_ev = 0.7;
    p.j0 = MA_per_cm2(0.6);
    const auto weff =
        thermal::effective_width(um(3.0), um(3.0), thermal::kPhiQuasi1D);
    const auto rth =
        thermal::rth_per_length_uniform(um(3.0), W_per_mK(1.15), weff);
    p.heating_coefficient = heating_coefficient(um(3.0), um(0.5), rth);
    return p;
  }
};

TEST_F(ParallelSweepProperties, SweepJ0MonotoneInJ0) {
  // A stronger EM design rule can only admit more current: at every duty
  // cycle the j_peak family must be strictly increasing in j_o.
  const std::vector<double> j0s = {MA_per_cm2(0.3), MA_per_cm2(0.6),
                                   MA_per_cm2(1.2), MA_per_cm2(1.8),
                                   MA_per_cm2(2.4)};
  const auto duties = log_spaced(1e-4, 1.0, 13);
  const auto family = sweep_j0(fig_problem(), j0s, duties);
  ASSERT_EQ(family.size(), j0s.size());
  for (std::size_t k = 0; k < duties.size(); ++k)
    for (std::size_t i = 1; i < j0s.size(); ++i)
      EXPECT_GT(family[i][k].sc.j_peak, family[i - 1][k].sc.j_peak)
          << "duty " << duties[k] << ", j0 step " << i;
}

TEST_F(ParallelSweepProperties, DutyCyclePermutationInvariance) {
  // Reordering the requested duty cycles must reorder the outputs
  // identically — bit-for-bit, not approximately: each point's solve is
  // independent of its position in the sweep vector.
  const Problem p = fig_problem();
  const auto duties = log_spaced(1e-4, 1.0, 17);
  std::vector<double> reversed(duties.rbegin(), duties.rend());
  std::vector<double> rotated(duties.begin() + 5, duties.end());
  rotated.insert(rotated.end(), duties.begin(), duties.begin() + 5);

  const auto fwd = sweep_duty_cycle(p, duties);
  const auto rev = sweep_duty_cycle(p, reversed);
  const auto rot = sweep_duty_cycle(p, rotated);
  ASSERT_EQ(fwd.size(), rev.size());
  for (std::size_t k = 0; k < fwd.size(); ++k) {
    const auto& mirror = rev[fwd.size() - 1 - k];
    EXPECT_EQ(fwd[k].duty_cycle, mirror.duty_cycle);
    EXPECT_EQ(fwd[k].sc.j_peak.value(), mirror.sc.j_peak.value());
    EXPECT_EQ(fwd[k].sc.t_metal.value(), mirror.sc.t_metal.value());
    EXPECT_EQ(fwd[k].jpeak_thermal_only.value(),
              mirror.jpeak_thermal_only.value());
    const auto& spun = rot[(k + fwd.size() - 5) % fwd.size()];
    EXPECT_EQ(fwd[k].sc.j_peak.value(), spun.sc.j_peak.value());
  }
}

TEST_F(ParallelSweepProperties, TableCellsIndependentOfGridShape) {
  // Solving a cell alone must give the bit-identical answer to solving it
  // as part of the full grid — cells share nothing.
  TableSpec spec;
  spec.technology = tech::make_ntrs_100nm_cu();
  spec.gap_fills = materials::paper_dielectrics();
  spec.levels = {6, 7, 8};
  spec.duty_cycles = {0.1, 1.0};
  spec.j0 = MA_per_cm2(0.6);
  const auto grid = generate_design_rule_table(spec);

  TableSpec one = spec;
  one.levels = {7};
  one.gap_fills = {materials::make_hsq()};
  one.duty_cycles = {1.0};
  const auto solo = generate_design_rule_table(one);
  ASSERT_EQ(solo.size(), 1u);
  const auto it = std::find_if(grid.begin(), grid.end(), [](const auto& c) {
    return c.level == 7 && c.dielectric == "HSQ" && c.duty_cycle == 1.0;
  });
  ASSERT_NE(it, grid.end());
  EXPECT_EQ(it->sol.j_peak.value(), solo[0].sol.j_peak.value());
  EXPECT_EQ(it->sol.t_metal.value(), solo[0].sol.t_metal.value());
}

TEST_F(ParallelSweepProperties, SweepPointsMatchDirectBatchLanes) {
  // The sweep driver routes through solve_batch; assembling the same lanes
  // by hand through the public batch API must give bit-identical points —
  // there is no sweep-only arithmetic between the lanes and the results.
  const Problem base = fig_problem();
  const auto duties = log_spaced(1e-4, 1.0, 17);
  const auto points = sweep_duty_cycle(base, duties);

  BatchProblem bp;
  bp.reserve(duties.size());
  for (const double r : duties) {
    Problem p = base;
    p.duty_cycle = r;
    bp.push_back(p);
  }
  const BatchSolution bs = solve_batch(bp);
  bs.throw_first_failure();
  ASSERT_EQ(bs.size(), points.size());
  for (std::size_t k = 0; k < points.size(); ++k) {
    EXPECT_EQ(points[k].sc.t_metal.value(), bs.t_metal[k]) << "duty " << k;
    EXPECT_EQ(points[k].sc.j_peak.value(), bs.j_peak[k]) << "duty " << k;
    EXPECT_EQ(points[k].sc.j_rms.value(), bs.j_rms[k]) << "duty " << k;
    EXPECT_EQ(points[k].sc.iterations, bs.iterations[k]) << "duty " << k;
  }
}

TEST_F(ParallelSweepProperties, BatchJ0MonotoneAtEveryDuty) {
  // j0-monotonicity through the raw batch path: one flat (j0 x duty) batch,
  // strictly increasing j_peak in j0 at every duty cycle — the same
  // physical property SweepJ0MonotoneInJ0 checks through the sweep driver.
  const Problem base = fig_problem();
  const std::vector<double> j0s = {MA_per_cm2(0.3), MA_per_cm2(0.6),
                                   MA_per_cm2(1.2), MA_per_cm2(1.8),
                                   MA_per_cm2(2.4)};
  const auto duties = log_spaced(1e-4, 1.0, 13);
  BatchProblem bp;
  bp.reserve(j0s.size() * duties.size());
  for (const double j0 : j0s) {
    for (const double r : duties) {
      Problem p = base;
      p.j0 = A_per_m2(j0);
      p.duty_cycle = r;
      bp.push_back(p);
    }
  }
  const BatchSolution bs = solve_batch(bp);
  bs.throw_first_failure();
  for (std::size_t k = 0; k < duties.size(); ++k)
    for (std::size_t i = 1; i < j0s.size(); ++i)
      EXPECT_GT(bs.j_peak[i * duties.size() + k],
                bs.j_peak[(i - 1) * duties.size() + k])
          << "duty " << duties[k] << ", j0 step " << i;
}

TEST_F(ParallelSweepProperties, BatchDutyPermutationInvariance) {
  // Duty permutation invariance through the raw batch path: reversing the
  // lane order reverses the outputs bit-for-bit, mirroring
  // DutyCyclePermutationInvariance on the sweep driver.
  const Problem base = fig_problem();
  const auto duties = log_spaced(1e-4, 1.0, 17);
  BatchProblem fwd, rev;
  for (const double r : duties) {
    Problem p = base;
    p.duty_cycle = r;
    fwd.push_back(p);
  }
  for (auto it = duties.rbegin(); it != duties.rend(); ++it) {
    Problem p = base;
    p.duty_cycle = *it;
    rev.push_back(p);
  }
  const BatchSolution a = solve_batch(fwd);
  const BatchSolution b = solve_batch(rev);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    const std::size_t m = a.size() - 1 - k;
    EXPECT_EQ(a.t_metal[k], b.t_metal[m]) << k;
    EXPECT_EQ(a.j_peak[k], b.j_peak[m]) << k;
    EXPECT_EQ(a.iterations[k], b.iterations[m]) << k;
  }
}

}  // namespace
}  // namespace dsmt::selfconsistent
