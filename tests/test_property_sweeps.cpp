// Large parameterized sweeps asserting the solver invariants across the
// full (technology x level x dielectric x duty) space — the structural
// guarantees behind every table in EXPERIMENTS.md.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "numeric/constants.h"
#include "selfconsistent/sweep.h"
#include "tech/ntrs.h"
#include "thermal/impedance.h"

namespace dsmt::selfconsistent {
namespace {

tech::Technology node_by_index(int node) {
  switch (node) {
    case 0: return tech::make_ntrs_250nm_cu();
    case 1: return tech::make_ntrs_180nm_cu();
    case 2: return tech::make_ntrs_130nm_cu();
    default: return tech::make_ntrs_100nm_cu();
  }
}

materials::Dielectric dielectric_by_index(int d) {
  switch (d) {
    case 0: return materials::make_oxide();
    case 1: return materials::make_hsq();
    default: return materials::make_polyimide();
  }
}

// (node, level, dielectric, duty-index) — levels beyond a node's stack are
// clamped to its top.
using Case = std::tuple<int, int, int, int>;

class SolverInvariants : public ::testing::TestWithParam<Case> {
 protected:
  static constexpr double kDuties[3] = {0.05, 0.1, 1.0};

  Problem problem() const {
    const auto [node, level_raw, d, duty_idx] = GetParam();
    const auto technology = node_by_index(node);
    const int level = std::min(level_raw, technology.top_level());
    return make_level_problem(technology, level, dielectric_by_index(d),
                              thermal::kPhiQuasi2D, kDuties[duty_idx],
                              MA_per_cm2(1.8));
  }
};

TEST_P(SolverInvariants, SolutionIsPhysicalAndSelfConsistent) {
  const Problem p = problem();
  const Solution s = solve(p);
  ASSERT_TRUE(s.converged);

  // Physicality.
  EXPECT_GT(s.t_metal, p.t_ref);
  EXPECT_LT(s.t_metal, p.metal.t_melt);
  EXPECT_GT(s.j_peak, 0.0);

  // Waveform identities (Eqs. 4-5).
  EXPECT_NEAR(s.j_avg, p.duty_cycle * s.j_peak, 1e-6 * s.j_avg);
  EXPECT_NEAR(s.j_rms, std::sqrt(p.duty_cycle) * s.j_peak, 1e-6 * s.j_rms);

  // Residual vanishes at the root.
  EXPECT_NEAR(residual(p, s.t_metal), 0.0,
              1e-6 * p.j0 * p.j0 + std::abs(residual(p, s.t_metal)) * 1e-3);

  // Thermal side reproduces delta_t exactly.
  const double dt = s.j_rms * s.j_rms * p.metal.resistivity(s.t_metal) *
                    p.heating_coefficient;
  EXPECT_NEAR(dt, s.delta_t, 1e-6 * std::max(1e-9, s.delta_t.value()));

  // Never exceeds the EM-only bound.
  EXPECT_LE(s.j_peak, jpeak_em_only(p) * (1.0 + 1e-9));
}

TEST_P(SolverInvariants, PerturbationsMoveTheAnswerTheRightWay) {
  const Problem base = problem();
  const Solution s0 = solve(base);

  Problem hotter = base;
  hotter.heating_coefficient *= 1.3;
  EXPECT_LT(solve(hotter).j_peak, s0.j_peak * (1.0 + 1e-12));

  Problem stronger_em = base;
  stronger_em.j0 *= 1.3;
  EXPECT_GT(solve(stronger_em).j_peak, s0.j_peak * (1.0 - 1e-12));

  if (base.duty_cycle < 0.9) {
    Problem denser = base;
    denser.duty_cycle = std::min(1.0, base.duty_cycle * 1.5);
    EXPECT_LT(solve(denser).j_peak, s0.j_peak);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FullSpace, SolverInvariants,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),     // node
                       ::testing::Values(1, 4, 6, 8),     // level (clamped)
                       ::testing::Values(0, 1, 2),        // dielectric
                       ::testing::Values(0, 1, 2)));      // duty

// Level monotonicity within each node/dielectric/duty combination.
using LevelCase = std::tuple<int, int, int>;
class LevelMonotonicity : public ::testing::TestWithParam<LevelCase> {};

TEST_P(LevelMonotonicity, JpeakNeverIncreasesGoingUpTheStack) {
  const auto [node, d, duty_idx] = GetParam();
  const double duties[2] = {0.1, 1.0};
  const auto technology = node_by_index(node);
  const auto gf = dielectric_by_index(d);
  double prev = 1e300;
  for (int level = 1; level <= technology.top_level(); ++level) {
    const auto s = solve(make_level_problem(technology, level, gf,
                                            thermal::kPhiQuasi2D,
                                            duties[duty_idx],
                                            MA_per_cm2(1.8)));
    EXPECT_LE(s.j_peak, prev * (1.0 + 1e-9))
        << technology.name << " level " << level;
    prev = s.j_peak;
  }
}

INSTANTIATE_TEST_SUITE_P(AllNodes, LevelMonotonicity,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(0, 1, 2),
                                            ::testing::Values(0, 1)));

}  // namespace
}  // namespace dsmt::selfconsistent
