// Self-consistent solver tests — the paper's Eq. 13 and its consequences
// (Figs. 2-3, Tables 2-4 structure).
#include <gtest/gtest.h>

#include <cmath>

#include "numeric/constants.h"
#include "selfconsistent/solver.h"
#include "selfconsistent/sweep.h"
#include "tech/ntrs.h"
#include "thermal/impedance.h"

namespace dsmt::selfconsistent {
namespace {

/// The Fig. 2 problem: Cu, j0 = 0.6 MA/cm^2, t_ox = 3 um, t_m = 0.5 um,
/// W_m = 3 um, quasi-1D W_eff.
Problem fig2_problem() {
  Problem p;
  p.metal = materials::make_copper();
  p.j0 = MA_per_cm2(0.6);
  const auto weff =
      thermal::effective_width(um(3.0), um(3.0), thermal::kPhiQuasi1D);
  const auto rth = thermal::rth_per_length_uniform(um(3.0), W_per_mK(1.15), weff);
  p.heating_coefficient = heating_coefficient(um(3.0), um(0.5), rth);
  return p;
}

TEST(Solver, ResidualSignStructure) {
  Problem p = fig2_problem();
  p.duty_cycle = 0.01;
  EXPECT_LT(residual(p, p.t_ref + kelvin_delta(1e-6)), 0.0);
  EXPECT_GT(residual(p, p.t_ref + kelvin_delta(2000.0)), 0.0);
}

TEST(Solver, SolutionSatisfiesBothConstraints) {
  Problem p = fig2_problem();
  p.duty_cycle = 0.01;
  const Solution s = solve(p);
  ASSERT_TRUE(s.converged);

  // Thermal side: dT equals the self-heating at (j_rms, T_m).
  const double dt = s.j_rms * s.j_rms * p.metal.resistivity(s.t_metal) *
                    p.heating_coefficient;
  EXPECT_NEAR(dt, s.delta_t, 1e-6 * std::max(1.0, s.delta_t.value()));

  // EM side: j_avg equals the maximum allowed at T_m.
  const double javg_max = p.j0 * std::exp(p.metal.em.activation_energy_ev /
                                          (2.0 * kBoltzmannEv) *
                                          (1.0 / s.t_metal - 1.0 / p.t_ref));
  EXPECT_NEAR(s.j_avg, javg_max, 1e-6 * javg_max);

  // Waveform identities (Eqs. 4-5).
  EXPECT_NEAR(s.j_avg, p.duty_cycle * s.j_peak, 1e-3);
  EXPECT_NEAR(s.j_rms, std::sqrt(p.duty_cycle) * s.j_peak, 1e-3);
}

TEST(Solver, UnityDutyCycleApproachesJ0) {
  Problem p = fig2_problem();
  p.duty_cycle = 1.0;
  const Solution s = solve(p);
  EXPECT_LT(s.j_peak, p.j0);
  EXPECT_GT(s.j_peak, 0.9 * p.j0);  // weak heating at DC for this geometry
  EXPECT_LT(s.delta_t, 2.0);
}

TEST(Solver, Figure2HeadlineRatioAtCentiDuty) {
  // "At r = 1e-2 the self-consistent j_peak is nearly 2x smaller than the
  // EM-only j_peak."
  Problem p = fig2_problem();
  p.duty_cycle = 1e-2;
  const Solution s = solve(p);
  const double ratio = s.j_peak / jpeak_em_only(p);
  EXPECT_LT(ratio, 0.75);
  EXPECT_GT(ratio, 0.4);
}

TEST(Solver, TemperatureRisesAsDutyCycleFalls) {
  Problem p = fig2_problem();
  double prev_t = 0.0, prev_jpeak_ratio = 1.1;
  for (double r : {1.0, 0.1, 0.01, 0.001, 0.0001}) {
    p.duty_cycle = r;
    const Solution s = solve(p);
    EXPECT_GT(s.t_metal, prev_t);
    prev_t = s.t_metal;
    // Monotone loss of EM-only headroom (Fig. 2's 1/r line divergence).
    const double ratio = s.j_peak / jpeak_em_only(p);
    EXPECT_LT(ratio, prev_jpeak_ratio);
    prev_jpeak_ratio = ratio;
  }
  // Fig. 2's hot end: T_m well above 150 degC by r = 1e-4.
  EXPECT_GT(prev_t, celsius_to_kelvin(150.0));
}

TEST(Solver, RaisingJ0RaisesTemperatureAndJpeak) {
  // Fig. 3: higher j_o moves both curves up.
  Problem p = fig2_problem();
  p.duty_cycle = 1e-3;
  const Solution s06 = solve(p);
  p.j0 = MA_per_cm2(1.8);
  const Solution s18 = solve(p);
  EXPECT_GT(s18.t_metal, s06.t_metal);
  EXPECT_GT(s18.j_peak, s06.j_peak);
  // Diminishing returns: 3x j0 gives less than 3x j_peak.
  EXPECT_LT(s18.j_peak / s06.j_peak, 3.0);
}

TEST(Solver, StrongerHeatingLowersJpeak) {
  Problem p = fig2_problem();
  p.duty_cycle = 0.1;
  const Solution s1 = solve(p);
  p.heating_coefficient *= 4.0;
  const Solution s2 = solve(p);
  EXPECT_LT(s2.j_peak, s1.j_peak);
  EXPECT_GT(s2.t_metal, s1.t_metal);
}

TEST(Solver, ValidatesInputs) {
  Problem p = fig2_problem();
  p.duty_cycle = 0.0;
  EXPECT_THROW(solve(p), std::invalid_argument);
  p = fig2_problem();
  p.j0 = A_per_m2(-1.0);
  EXPECT_THROW(solve(p), std::invalid_argument);
  p = fig2_problem();
  p.heating_coefficient = units::HeatingCoefficient{};
  EXPECT_THROW(solve(p), std::invalid_argument);
}

// Property: across a wide duty-cycle sweep, the solution is always between
// the two bounding dotted lines of Fig. 2 (thermal-only and EM-only).
class DutySweep : public ::testing::TestWithParam<double> {};

TEST_P(DutySweep, BoundedByReferenceLines) {
  Problem p = fig2_problem();
  p.duty_cycle = GetParam();
  const auto pts = sweep_duty_cycle(p, {GetParam()});
  ASSERT_EQ(pts.size(), 1u);
  const auto& pt = pts[0];
  EXPECT_LE(pt.sc.j_peak, pt.jpeak_em_only * (1.0 + 1e-9));
  // The thermal-only line uses the r=1 j_rms; self-consistent j_rms exceeds
  // it at smaller r only insofar as EM permits — it must stay within ~3x.
  EXPECT_LT(pt.sc.j_peak, 3.0 * pt.jpeak_thermal_only + pt.jpeak_em_only);
}

INSTANTIATE_TEST_SUITE_P(WideRange, DutySweep,
                         ::testing::Values(1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
                                           1e-1, 3e-1, 1.0));

TEST(Sweep, LogSpacedEndpoints) {
  const auto v = log_spaced(1e-4, 1.0, 9);
  ASSERT_EQ(v.size(), 9u);
  EXPECT_DOUBLE_EQ(v.front(), 1e-4);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  for (std::size_t i = 1; i < v.size(); ++i) EXPECT_GT(v[i], v[i - 1]);
  EXPECT_THROW(log_spaced(0.0, 1.0, 5), std::invalid_argument);
}

TEST(Sweep, J0FamilyIsOrdered) {
  Problem p = fig2_problem();
  const auto fam = sweep_j0(p, {MA_per_cm2(0.6), MA_per_cm2(1.8)},
                            {1e-3, 1e-2, 1e-1});
  ASSERT_EQ(fam.size(), 2u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_GT(fam[1][k].sc.j_peak, fam[0][k].sc.j_peak);
    EXPECT_GT(fam[1][k].sc.t_metal, fam[0][k].sc.t_metal);
  }
}

TEST(Table, PaperOrderings) {
  // Tables 2-4 structure: within a technology, j_peak falls going up the
  // stack and falls with lower-conductivity gap-fill.
  TableSpec spec;
  spec.technology = tech::make_ntrs_100nm_cu();
  spec.gap_fills = materials::paper_dielectrics();
  spec.levels = {5, 6, 7, 8};
  spec.duty_cycles = {0.1, 1.0};
  spec.j0 = MA_per_cm2(1.8);
  const auto cells = generate_design_rule_table(spec);
  ASSERT_EQ(cells.size(), 2u * 3u * 4u);

  auto jpeak = [&](double r, const std::string& d, int level) {
    for (const auto& c : cells)
      if (c.duty_cycle == r && c.dielectric == d && c.level == level)
        return c.sol.j_peak.value();
    ADD_FAILURE() << "cell missing";
    return 0.0;
  };

  for (double r : {0.1, 1.0}) {
    for (const char* d : {"Oxide", "HSQ", "Polyimide"}) {
      EXPECT_GE(jpeak(r, d, 5), jpeak(r, d, 7));
      EXPECT_GE(jpeak(r, d, 7), jpeak(r, d, 8));
    }
    for (int level : {5, 6, 7, 8}) {
      EXPECT_GT(jpeak(r, "Oxide", level), jpeak(r, "HSQ", level));
      EXPECT_GT(jpeak(r, "HSQ", level), jpeak(r, "Polyimide", level));
    }
  }
  // Signal lines beat power lines by roughly 1/sqrt(r) when thermally
  // moderated; at minimum they must be strictly higher.
  for (int level : {5, 6, 7, 8})
    EXPECT_GT(jpeak(0.1, "Oxide", level), 2.0 * jpeak(1.0, "Oxide", level));
}

TEST(Table, CuBeatsAlCuAtSameJ0) {
  // Table 4 companion: with identical j0, AlCu (more resistive) heats more
  // and gets a lower allowed j_peak.
  for (double r : {0.1, 1.0}) {
    const auto cu = solve(make_level_problem(tech::make_ntrs_250nm_cu(), 6,
                                             materials::make_oxide(), 2.45, r,
                                             MA_per_cm2(0.6)));
    const auto alcu = solve(make_level_problem(tech::make_ntrs_250nm_alcu(), 6,
                                               materials::make_oxide(), 2.45,
                                               r, MA_per_cm2(0.6)));
    EXPECT_LT(alcu.j_peak, cu.j_peak);
  }
}

TEST(HeatingCoefficient, Validation) {
  EXPECT_THROW(heating_coefficient(metres(0.0), metres(1e-6), K_m_per_W(0.3)),
               std::invalid_argument);
  EXPECT_GT(heating_coefficient(metres(1e-6), metres(1e-6), K_m_per_W(0.3)),
            0.0);
}

}  // namespace
}  // namespace dsmt::selfconsistent
