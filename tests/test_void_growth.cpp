// Two-phase EM void-growth model tests.
#include <gtest/gtest.h>

#include <cmath>

#include "em/void_growth.h"
#include "numeric/constants.h"

namespace dsmt::em {
namespace {

materials::Metal alcu() { return materials::make_alcu(); }

TEST(VoidGrowth, DriftVelocityScalesWithJ) {
  VoidModelParams p;
  const double v1 = drift_velocity(alcu(), p, MA_per_cm2(1.0), kTrefK);
  const double v2 = drift_velocity(alcu(), p, MA_per_cm2(2.0), kTrefK);
  EXPECT_NEAR(v2 / v1, 2.0, 1e-9);
  EXPECT_GT(v1, 0.0);
}

TEST(VoidGrowth, DriftVelocityArrhenius) {
  VoidModelParams p;
  const double j = MA_per_cm2(1.0);
  const double v_cool = drift_velocity(alcu(), p, j, kTrefK);
  const double v_hot = drift_velocity(alcu(), p, j, kTrefK + 50.0);
  // exp(-Q/kT) dominates; roughly e^(Q dT / (k T^2)).
  EXPECT_GT(v_hot / v_cool, 5.0);
}

TEST(VoidGrowth, NucleationIsBlackLike) {
  VoidModelParams p;
  const double t1 = nucleation_time(alcu(), p, MA_per_cm2(1.0), kTrefK);
  const double t2 = nucleation_time(alcu(), p, MA_per_cm2(2.0), kTrefK);
  EXPECT_NEAR(t1 / t2, 4.0, 1e-9);  // n = 2
}

TEST(VoidGrowth, UseConditionLifetimeIsYears) {
  // At design-rule stress the model should give a multi-year TTF.
  VoidModelParams p;
  const double ttf = time_to_failure_void(alcu(), p, um(0.5), um(0.5),
                                          um(100), MA_per_cm2(0.6), kTrefK);
  const double years = ttf / (365.25 * 86400.0);
  EXPECT_GT(years, 1.0);
  EXPECT_LT(years, 1000.0);
}

TEST(VoidGrowth, AcceleratedTestIsHoursToDays) {
  VoidModelParams p;
  const double ttf =
      time_to_failure_void(alcu(), p, um(0.5), um(0.5), um(100),
                           MA_per_cm2(2.5), celsius_to_kelvin(250.0));
  EXPECT_GT(ttf, 60.0);              // more than a minute
  EXPECT_LT(ttf, 40.0 * 86400.0);    // less than ~a month
}

TEST(VoidGrowth, CurrentExponentCrossover) {
  // n ~ 2 (nucleation-limited) at use currents, drifting toward 1
  // (growth-limited) under strong acceleration — the classic signature.
  VoidModelParams p;
  const double n_use = apparent_current_exponent(
      alcu(), p, um(0.5), um(0.5), um(100), MA_per_cm2(0.3), kTrefK);
  const double n_acc = apparent_current_exponent(
      alcu(), p, um(0.5), um(0.5), um(100), MA_per_cm2(50.0), kTrefK);
  EXPECT_GT(n_use, 1.6);
  EXPECT_LT(n_use, 2.05);
  EXPECT_LT(n_acc, n_use);
  EXPECT_GE(n_acc, 0.95);
}

TEST(VoidGrowth, TraceShapeAndFailure) {
  VoidModelParams p;
  const double j = MA_per_cm2(3.0);
  const double t_pred =
      time_to_failure_void(alcu(), p, um(0.5), um(0.5), um(100), j,
                           celsius_to_kelvin(220.0));
  const auto trace =
      simulate_void_growth(alcu(), p, um(0.5), um(0.5), um(100), j,
                           celsius_to_kelvin(220.0), 2.0 * t_pred);
  ASSERT_TRUE(trace.failed);
  EXPECT_NEAR(trace.ttf, t_pred, 0.02 * t_pred);
  // Resistance is monotone non-decreasing and flat during nucleation.
  EXPECT_DOUBLE_EQ(trace.resistance.front(), trace.r_initial);
  for (std::size_t i = 1; i < trace.resistance.size(); ++i)
    EXPECT_GE(trace.resistance[i], trace.resistance[i - 1] - 1e-12);
  // Failure happens at ~10% resistance growth.
  const double r_at_fail =
      trace.r_initial * (1.0 + p.critical_delta_r);
  bool crossed = false;
  for (std::size_t i = 0; i < trace.time.size(); ++i)
    if (trace.time[i] >= trace.ttf && !crossed) {
      EXPECT_NEAR(trace.resistance[i], r_at_fail, 0.05 * trace.r_initial);
      crossed = true;
    }
  EXPECT_TRUE(crossed);
}

TEST(VoidGrowth, Validation) {
  VoidModelParams p;
  EXPECT_THROW(time_to_failure_void(alcu(), p, 0.0, um(0.5), um(100),
                                    MA_per_cm2(1.0), kTrefK),
               std::invalid_argument);
  EXPECT_THROW(nucleation_time(alcu(), p, 0.0, kTrefK),
               std::invalid_argument);
  p.liner_resistance_factor = 0.5;
  EXPECT_THROW(time_to_failure_void(alcu(), p, um(0.5), um(0.5), um(100),
                                    MA_per_cm2(1.0), kTrefK),
               std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::em
