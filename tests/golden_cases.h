// Shared definition of the golden-regression scenarios: the exact paper
// artifacts (Tables 2-4 design-rule grids, Fig. 2/3 sweep series, the
// Monte-Carlo variation summary) flattened to ordered (key, value) rows.
//
// Both tests/test_golden_regression.cpp (compare against tests/golden/*.csv)
// and tests/golden_gen_main.cpp (regenerate the snapshots, driven by
// tools/update_golden.py) include this header, so the checked values and the
// written values can never drift apart.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/variation.h"
#include "numeric/constants.h"
#include "selfconsistent/batch.h"
#include "selfconsistent/sweep.h"
#include "tech/ntrs.h"
#include "thermal/impedance.h"

namespace dsmt::golden {

using Rows = std::vector<std::pair<std::string, double>>;

inline std::string fmt_idx(std::size_t i) {
  return (i < 10 ? "0" : "") + std::to_string(i);
}

/// The Fig. 2/3 base problem (figure captions: Cu, AlCu-era Q = 0.7 eV,
/// t_ox = 3 um, t_m = 0.5 um, W_m = 3 um, quasi-1D spreading).
inline selfconsistent::Problem fig_base_problem() {
  selfconsistent::Problem p;
  p.metal = materials::make_copper();
  p.metal.em.activation_energy_ev = 0.7;
  p.j0 = MA_per_cm2(0.6);
  const auto weff =
      thermal::effective_width(um(3.0), um(3.0), thermal::kPhiQuasi1D);
  const auto rth =
      thermal::rth_per_length_uniform(um(3.0), W_per_mK(1.15), weff);
  p.heating_coefficient =
      selfconsistent::heating_coefficient(um(3.0), um(0.5), rth);
  return p;
}

/// One design-rule table (the bench/design_rule_common.h row selection):
/// signal and power duty cycles, the three paper dielectrics, and the
/// paper's top-of-stack level rows for each technology node.
inline Rows design_rule_rows(const std::vector<tech::Technology>& techs,
                             double j0_ma_per_cm2) {
  Rows rows;
  for (double r : {0.1, 1.0}) {
    for (const auto& technology : techs) {
      selfconsistent::TableSpec spec;
      spec.technology = technology;
      spec.gap_fills = materials::paper_dielectrics();
      const int top = technology.top_level();
      const int n_rows = technology.num_levels() >= 8 ? 4 : 2;
      for (int l = top - n_rows + 1; l <= top; ++l) spec.levels.push_back(l);
      spec.duty_cycles = {r};
      spec.j0 = MA_per_cm2(j0_ma_per_cm2);
      for (const auto& cell : selfconsistent::generate_design_rule_table(spec)) {
        const std::string key = technology.name + "/r=" +
                                (r < 0.5 ? "0.1" : "1.0") + "/M" +
                                std::to_string(cell.level) + "/" +
                                cell.dielectric;
        rows.emplace_back(key + "/jpeak_MA_cm2", to_MA_per_cm2(cell.sol.j_peak));
        rows.emplace_back(key + "/tm_C", kelvin_to_celsius(cell.sol.t_metal));
      }
    }
  }
  return rows;
}

inline Rows table2_rows() {
  return design_rule_rows(
      {tech::make_ntrs_250nm_cu(), tech::make_ntrs_100nm_cu()}, 0.6);
}

inline Rows table3_rows() {
  return design_rule_rows(
      {tech::make_ntrs_250nm_cu(), tech::make_ntrs_100nm_cu()}, 1.8);
}

inline Rows table4_rows() {
  return design_rule_rows(
      {tech::make_ntrs_250nm_alcu(), tech::make_ntrs_100nm_alcu()}, 0.6);
}

/// Fig. 2 series: the bench's 17-point log-spaced duty sweep.
inline Rows fig2_rows() {
  Rows rows;
  const auto duties = selfconsistent::log_spaced(1e-4, 1.0, 17);
  const auto points =
      selfconsistent::sweep_duty_cycle(fig_base_problem(), duties);
  for (std::size_t k = 0; k < points.size(); ++k) {
    const std::string key = "fig2/k=" + fmt_idx(k);
    rows.emplace_back(key + "/duty", points[k].duty_cycle);
    rows.emplace_back(key + "/tm_C", kelvin_to_celsius(points[k].sc.t_metal));
    rows.emplace_back(key + "/jpeak_sc", to_MA_per_cm2(points[k].sc.j_peak));
    rows.emplace_back(key + "/jpeak_em_only",
                      to_MA_per_cm2(points[k].jpeak_em_only));
    rows.emplace_back(key + "/jpeak_thermal_only",
                      to_MA_per_cm2(points[k].jpeak_thermal_only));
  }
  return rows;
}

/// Fig. 3 family: j_o in {0.6, 1.2, 1.8, 2.4} MA/cm^2 over 9 duty points.
inline Rows fig3_rows() {
  Rows rows;
  const std::vector<double> j0s = {MA_per_cm2(0.6), MA_per_cm2(1.2),
                                   MA_per_cm2(1.8), MA_per_cm2(2.4)};
  const auto duties = selfconsistent::log_spaced(1e-4, 1.0, 9);
  const auto family = selfconsistent::sweep_j0(fig_base_problem(), j0s, duties);
  for (std::size_t i = 0; i < family.size(); ++i) {
    for (std::size_t k = 0; k < family[i].size(); ++k) {
      const std::string key =
          "fig3/j0=" + fmt_idx(i) + "/k=" + fmt_idx(k);
      rows.emplace_back(key + "/tm_C",
                        kelvin_to_celsius(family[i][k].sc.t_metal));
      rows.emplace_back(key + "/jpeak_sc",
                        to_MA_per_cm2(family[i][k].sc.j_peak));
    }
  }
  return rows;
}

/// Monte-Carlo variation distribution summary (counter-seeded sampling):
/// 100 nm Cu node, top level, HSQ gap fill, signal duty, paper j0.
inline Rows variation_rows() {
  core::VariationSpec spec;
  const auto res =
      core::monte_carlo_jpeak(tech::make_ntrs_100nm_cu(), 8,
                              materials::make_hsq(), 2.45, 0.1,
                              MA_per_cm2(1.8), spec, 200);
  Rows rows;
  rows.emplace_back("variation/nominal", res.nominal);
  rows.emplace_back("variation/mean", res.mean);
  rows.emplace_back("variation/stddev", res.stddev);
  rows.emplace_back("variation/p01", res.p01);
  rows.emplace_back("variation/p50", res.p50);
  rows.emplace_back("variation/p99", res.p99);
  // Pin a few individual samples too: they prove the per-sample seeding
  // (not just the aggregate) is stable.
  for (std::size_t s : {std::size_t{0}, std::size_t{99}, std::size_t{199}})
    rows.emplace_back("variation/sample" + fmt_idx(s), res.samples[s]);
  return rows;
}

/// Batched design-rule table, pinned against the solve_batch public API
/// directly (the Tables 2-4 rows above cover the batched sweep drivers):
/// a (duty x dielectric x level) grid for the 100 nm Cu node assembled as
/// one BatchProblem and solved in a single call. Failed lanes would show up
/// as missing rows, retired-lane leakage as value drift.
inline Rows batch_table_rows() {
  const auto technology = tech::make_ntrs_100nm_cu();
  const auto gap_fills = materials::paper_dielectrics();
  const std::vector<int> levels = {5, 6, 7, 8};
  const std::vector<double> duties = {0.01, 0.1, 0.5, 1.0};

  selfconsistent::BatchProblem bp;
  std::vector<std::string> keys;
  for (const double r : duties) {
    for (const auto& gf : gap_fills) {
      for (const int level : levels) {
        bp.push_back(selfconsistent::make_level_problem(
            technology, level, gf, 2.45, r, MA_per_cm2(0.6)));
        keys.push_back("batch_table/r=" + std::to_string(r) + "/" + gf.name +
                       "/M" + std::to_string(level));
      }
    }
  }
  const selfconsistent::BatchSolution bs = selfconsistent::solve_batch(bp);
  bs.throw_first_failure();
  Rows rows;
  for (std::size_t i = 0; i < bs.size(); ++i) {
    rows.emplace_back(keys[i] + "/tm_C",
                      kelvin_to_celsius(units::Kelvin{bs.t_metal[i]}));
    rows.emplace_back(keys[i] + "/jpeak_MA_cm2",
                      to_MA_per_cm2(A_per_m2(bs.j_peak[i])));
    rows.emplace_back(keys[i] + "/iterations",
                      static_cast<double>(bs.iterations[i]));
  }
  return rows;
}

/// Batched Monte-Carlo variation summary on a second configuration (250 nm
/// Cu node, polyimide gap fill, power duty): the sampling now routes through
/// solve_batch, so this pins the batched MC end to end — per-sample seeding,
/// lane ordering, and the ordered reduction.
inline Rows batch_variation_rows() {
  core::VariationSpec spec;
  const auto technology = tech::make_ntrs_250nm_cu();
  const auto res = core::monte_carlo_jpeak(technology,
                                           technology.top_level(),
                                           materials::make_polyimide(), 2.45,
                                           1.0, MA_per_cm2(0.6), spec, 150);
  Rows rows;
  rows.emplace_back("batch_variation/nominal", res.nominal);
  rows.emplace_back("batch_variation/mean", res.mean);
  rows.emplace_back("batch_variation/stddev", res.stddev);
  rows.emplace_back("batch_variation/p01", res.p01);
  rows.emplace_back("batch_variation/p50", res.p50);
  rows.emplace_back("batch_variation/p99", res.p99);
  for (std::size_t s : {std::size_t{0}, std::size_t{74}, std::size_t{149}})
    rows.emplace_back("batch_variation/sample" + fmt_idx(s), res.samples[s]);
  return rows;
}

/// Every golden file: name (under tests/golden/) plus its row generator.
struct GoldenCase {
  const char* file;
  Rows (*rows)();
};

inline std::vector<GoldenCase> all_cases() {
  return {
      {"table2_cu_jo06.csv", &table2_rows},
      {"table3_cu_jo18.csv", &table3_rows},
      {"table4_alcu_jo06.csv", &table4_rows},
      {"fig2_series.csv", &fig2_rows},
      {"fig3_family.csv", &fig3_rows},
      {"variation_summary.csv", &variation_rows},
      {"batch_table.csv", &batch_table_rows},
      {"batch_variation.csv", &batch_variation_rows},
  };
}

}  // namespace dsmt::golden
