// JSON writer and sign-off serialization tests.
#include <gtest/gtest.h>

#include <cmath>
#include "core/signoff.h"
#include "numeric/constants.h"
#include "report/json.h"
#include "tech/ntrs.h"

namespace dsmt::report {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json::string("hi").dump(-1), "\"hi\"");
  EXPECT_EQ(Json::integer(42).dump(-1), "42");
  EXPECT_EQ(Json::boolean(true).dump(-1), "true");
  EXPECT_EQ(Json::number(1.5).dump(-1), "1.5");
  EXPECT_EQ(Json::number(std::nan("")).dump(-1), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json::string("a\"b\\c\nd").dump(-1), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(Json::string(std::string(1, '\x01')).dump(-1), "\"\\u0001\"");
}

TEST(Json, NestedStructure) {
  Json root = Json::object();
  root.set("name", Json::string("dsmt"));
  Json arr = Json::array();
  arr.push(Json::integer(1)).push(Json::integer(2));
  root.set("values", std::move(arr));
  root.set("nested", Json::object().set("ok", Json::boolean(false)));
  EXPECT_EQ(root.dump(-1),
            "{\"name\":\"dsmt\",\"values\":[1,2],\"nested\":{\"ok\":false}}");
  // Indented output contains newlines and preserves order.
  const std::string pretty = root.dump(2);
  EXPECT_NE(pretty.find("\n  \"name\""), std::string::npos);
  EXPECT_LT(pretty.find("name"), pretty.find("values"));
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::object().dump(-1), "{}");
  EXPECT_EQ(Json::array().dump(-1), "[]");
}

TEST(Json, KindMisuseThrows) {
  Json arr = Json::array();
  EXPECT_THROW(arr.set("x", Json::integer(1)), std::logic_error);
  Json obj = Json::object();
  EXPECT_THROW(obj.push(Json::integer(1)), std::logic_error);
}

TEST(Json, SignoffReportSerializes) {
  core::SignoffOptions opts;
  opts.j0 = MA_per_cm2(0.6);
  opts.engine.sim.steps_per_period = 1200;
  opts.engine.sim.line_segments = 12;
  const auto report = core::run_signoff(tech::make_ntrs_250nm_cu(), opts);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"technology\": \"NTRS-250nm-Cu\""), std::string::npos);
  EXPECT_NE(json.find("\"design_rules\""), std::string::npos);
  EXPECT_NE(json.find("\"global_checks\""), std::string::npos);
  EXPECT_NE(json.find("\"esd\""), std::string::npos);
  EXPECT_NE(json.find("\"all_global_layers_pass\": true"), std::string::npos);
  // Rough structural sanity: one design-rule object per table cell.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"jpeak_MA_cm2\"", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, report.design_rules.size());
}

}  // namespace
}  // namespace dsmt::report
