// JSON writer/parser and sign-off serialization tests.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/signoff.h"
#include "numeric/constants.h"
#include "report/json.h"
#include "tech/ntrs.h"

namespace dsmt::report {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json::string("hi").dump(-1), "\"hi\"");
  EXPECT_EQ(Json::integer(42).dump(-1), "42");
  EXPECT_EQ(Json::boolean(true).dump(-1), "true");
  EXPECT_EQ(Json::number(1.5).dump(-1), "1.5");
  EXPECT_EQ(Json::null().dump(-1), "null");
}

TEST(Json, NonFinitePolicy) {
  // number() rejects at construction: a bare `nan`/`inf` must never reach a
  // payload. number_or_null() is the opt-in lossy mapping for diagnostics.
  EXPECT_THROW(Json::number(std::nan("")), SolveError);
  EXPECT_THROW(Json::number(std::numeric_limits<double>::infinity()),
               SolveError);
  EXPECT_THROW(Json::number(-std::numeric_limits<double>::infinity()),
               SolveError);
  EXPECT_EQ(Json::number_or_null(std::nan("")).dump(-1), "null");
  EXPECT_EQ(Json::number_or_null(std::numeric_limits<double>::infinity())
                .dump(-1),
            "null");
  EXPECT_EQ(Json::number_or_null(2.5).dump(-1), "2.5");
  try {
    Json::number(std::nan(""));
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.status(), core::StatusCode::kNonFinite);
  }
}

TEST(JsonParse, ScalarsAndStructure) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("-12").as_integer(), -12);
  EXPECT_DOUBLE_EQ(Json::parse("2.5e-1").as_number(), 0.25);
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_EQ(Json::parse("\"a\\nb\"").as_string(), "a\nb");
  const Json doc = Json::parse(R"({"xs": [1, 2.5, "three"], "ok": false})");
  ASSERT_TRUE(doc.is_object());
  const Json* xs = doc.find("xs");
  ASSERT_NE(xs, nullptr);
  ASSERT_EQ(xs->size(), 3u);
  EXPECT_EQ(xs->at(0).as_integer(), 1);
  EXPECT_DOUBLE_EQ(xs->at(1).as_number(), 2.5);
  EXPECT_EQ(xs->at(2).as_string(), "three");
  EXPECT_FALSE(doc.find("ok")->as_bool());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParse, MalformedInputThrows) {
  const std::vector<std::string> bad = {
      "",           "{",           "[1,]",       "{\"a\":}",
      "nul",        "1 2",         "\"unterminated",
      "{\"a\" 1}",  "[1 2]",       "+5",
      "\"bad\\q\"", "\"\\u12\"",   "nan",        "inf",
      std::string("\"ctrl\x01\""),
      // RFC 8259 number grammar violations a lax strtod would accept.
      "01",         "-01",         "00",         "1.",
      ".5",         "1e",          "1e+",        "1.e3",
      "0x10",       "1e5e5",       "--1",        "1.2.3",
  };
  for (const std::string& text : bad)
    EXPECT_THROW(Json::parse(text), SolveError) << "input: " << text;
  // Depth bound: 70 nested arrays exceed the 64-level parser limit.
  std::string deep;
  for (int i = 0; i < 70; ++i) deep += '[';
  EXPECT_THROW(Json::parse(deep), SolveError);
}

TEST(JsonParse, IntegerOverflowFallsThroughToDouble) {
  // In-range literals stay exact integers...
  EXPECT_EQ(Json::parse("9223372036854775807").as_integer(),
            9223372036854775807LL);
  EXPECT_EQ(Json::parse("-9223372036854775808").as_integer(),
            std::numeric_limits<long long>::min());
  // ...while out-of-range ones must NOT silently clamp to LLONG_MAX/MIN
  // (strtoll consumes the whole token and sets errno=ERANGE): they fall
  // through to the double path.
  const Json big = Json::parse("18446744073709551616");  // 2^64
  EXPECT_DOUBLE_EQ(big.as_number(), 18446744073709551616.0);
  EXPECT_THROW(big.as_integer(), SolveError);  // not representable
  EXPECT_DOUBLE_EQ(Json::parse("-92233720368547758080").as_number(),
                   -92233720368547758080.0);
  // Still finite-guarded: a double-overflowing literal is rejected.
  EXPECT_THROW(Json::parse("1e999"), SolveError);
}

TEST(JsonParse, DuplicateObjectKeysRejected) {
  EXPECT_THROW(Json::parse(R"({"a": 1, "a": 2})"), SolveError);
  EXPECT_THROW(Json::parse(R"({"a": 1, "b": {"c": 1, "c": 2}})"),
               SolveError);
  // Same key in sibling objects is fine.
  const Json doc = Json::parse(R"([{"a": 1}, {"a": 2}])");
  EXPECT_EQ(doc.at(1).find("a")->as_integer(), 2);
  // The builder can't create duplicates either: set() replaces in place.
  Json obj = Json::object();
  obj.set("k", Json::integer(1)).set("other", Json::integer(5));
  obj.set("k", Json::integer(7));
  EXPECT_EQ(obj.size(), 2u);
  EXPECT_EQ(obj.find("k")->as_integer(), 7);
  EXPECT_EQ(obj.dump(-1), R"({"k":7,"other":5})");
}

TEST(JsonParse, AdversarialStringRoundTrip) {
  // Escaping round-trip for the strings a hostile request could carry in
  // its id field: parse(dump(x)) must reproduce x byte-for-byte.
  std::string all_controls;
  for (char c = 1; c < 0x20; ++c) all_controls.push_back(c);
  const std::vector<std::string> nasty = {
      "",
      "plain",
      "quote\" backslash\\ slash/",
      "newline\n tab\t return\r backspace\b formfeed\f",
      all_controls,
      std::string("embedded\0nul", 12),
      "unicode \xc3\xa9 \xe2\x82\xac \xf0\x9f\x92\xa1",  // é € U+1F4A1
      "\\u0041 literal, not an escape",
      "{\"looks\": [\"like\", \"json\"]}",
  };
  for (const std::string& s : nasty) {
    const std::string dumped = Json::string(s).dump(-1);
    const Json back = Json::parse(dumped);
    EXPECT_EQ(back.as_string(), s);
    // And once more through an object member, as requests do.
    Json obj = Json::object();
    obj.set("id", Json::string(s));
    const Json reparsed = Json::parse(obj.dump(2));
    const Json* id = reparsed.find("id");
    ASSERT_NE(id, nullptr);
    EXPECT_EQ(id->as_string(), s);
  }
  // \uXXXX escapes decode, including surrogate pairs.
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
  EXPECT_EQ(Json::parse("\"\\ud83d\\udca1\"").as_string(),
            "\xf0\x9f\x92\xa1");
  EXPECT_THROW(Json::parse("\"\\ud83d\""), SolveError);  // lone surrogate
}

TEST(JsonParse, DumpParseRoundTripTree) {
  Json root = Json::object();
  root.set("name", Json::string("dsmt"))
      .set("count", Json::integer(-7))
      .set("x", Json::number(0.1))
      .set("flag", Json::boolean(false))
      .set("none", Json::null());
  Json arr = Json::array();
  arr.push(Json::number(1e-300)).push(Json::string("s")).push(Json::null());
  root.set("xs", std::move(arr));
  for (const int indent : {-1, 0, 2, 4}) {
    const Json back = Json::parse(root.dump(indent));
    EXPECT_EQ(back.dump(-1), root.dump(-1)) << "indent " << indent;
  }
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json::string("a\"b\\c\nd").dump(-1), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(Json::string(std::string(1, '\x01')).dump(-1), "\"\\u0001\"");
}

TEST(Json, NestedStructure) {
  Json root = Json::object();
  root.set("name", Json::string("dsmt"));
  Json arr = Json::array();
  arr.push(Json::integer(1)).push(Json::integer(2));
  root.set("values", std::move(arr));
  root.set("nested", Json::object().set("ok", Json::boolean(false)));
  EXPECT_EQ(root.dump(-1),
            "{\"name\":\"dsmt\",\"values\":[1,2],\"nested\":{\"ok\":false}}");
  // Indented output contains newlines and preserves order.
  const std::string pretty = root.dump(2);
  EXPECT_NE(pretty.find("\n  \"name\""), std::string::npos);
  EXPECT_LT(pretty.find("name"), pretty.find("values"));
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::object().dump(-1), "{}");
  EXPECT_EQ(Json::array().dump(-1), "[]");
}

TEST(Json, KindMisuseThrows) {
  Json arr = Json::array();
  EXPECT_THROW(arr.set("x", Json::integer(1)), std::logic_error);
  Json obj = Json::object();
  EXPECT_THROW(obj.push(Json::integer(1)), std::logic_error);
}

TEST(Json, SignoffReportSerializes) {
  core::SignoffOptions opts;
  opts.j0 = MA_per_cm2(0.6);
  opts.engine.sim.steps_per_period = 1200;
  opts.engine.sim.line_segments = 12;
  const auto report = core::run_signoff(tech::make_ntrs_250nm_cu(), opts);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"technology\": \"NTRS-250nm-Cu\""), std::string::npos);
  EXPECT_NE(json.find("\"design_rules\""), std::string::npos);
  EXPECT_NE(json.find("\"global_checks\""), std::string::npos);
  EXPECT_NE(json.find("\"esd\""), std::string::npos);
  EXPECT_NE(json.find("\"all_global_layers_pass\": true"), std::string::npos);
  // Rough structural sanity: one design-rule object per table cell.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"jpeak_MA_cm2\"", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, report.design_rules.size());
}

}  // namespace
}  // namespace dsmt::report
