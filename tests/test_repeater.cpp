// Repeater optimization and stage simulation tests (paper Eqs. 16-17,
// Tables 5-6, Fig. 7).
#include <gtest/gtest.h>

#include <cmath>

#include "numeric/constants.h"
#include "repeater/optimizer.h"
#include "repeater/simulate.h"
#include "tech/ntrs.h"

namespace dsmt::repeater {
namespace {

TEST(Optimizer, ClosedFormsMatchPaperEquations) {
  tech::DeviceParameters dev;
  dev.r0 = 5e3;
  dev.cg = 3e-15;
  dev.cp = 3e-15;
  const double r = 4e3, c = 2e-10;
  const auto opt = optimize(dev, r, c);
  EXPECT_NEAR(opt.l_opt, std::sqrt(2.0 * dev.r0 * (dev.cg + dev.cp) / (r * c)),
              1e-12);
  EXPECT_NEAR(opt.s_opt, std::sqrt(dev.r0 * c / (r * dev.cg)), 1e-9);
}

TEST(Optimizer, OptimumActuallyMinimizesElmoreDelay) {
  tech::DeviceParameters dev;
  dev.r0 = 5e3;
  dev.cg = 3e-15;
  dev.cp = 3e-15;
  const double r = 4e3, c = 2e-10;
  const auto opt = optimize(dev, r, c);
  // Per-unit-length delay l -> delay(l)/l is minimized at l_opt; size is
  // minimized at s_opt for fixed l.
  auto delay_per_len = [&](double size, double length) {
    return stage_delay_elmore(dev, size, length, r, c) / length;
  };
  const double base = delay_per_len(opt.s_opt, opt.l_opt);
  for (double f : {0.7, 0.9, 1.1, 1.4}) {
    EXPECT_GE(delay_per_len(opt.s_opt * f, opt.l_opt), base * 0.9999);
    EXPECT_GE(delay_per_len(opt.s_opt, opt.l_opt * f), base * 0.9999);
  }
}

TEST(Optimizer, LowKLengthensSegmentsAndShrinksDrivers) {
  // Paper Section 4.1: with low-k (smaller c), l_opt increases and s_opt
  // decreases by the same factor, leaving j_rms nearly unchanged.
  const auto tech = tech::make_ntrs_100nm_cu();
  const auto opt_ox = optimize_layer(tech, 8, 4.0, kTrefK);
  const auto opt_lk = optimize_layer(tech, 8, 2.0, kTrefK);
  EXPECT_GT(opt_lk.l_opt, opt_ox.l_opt);
  EXPECT_LT(opt_lk.s_opt, opt_ox.s_opt);
  const double lf = opt_lk.l_opt / opt_ox.l_opt;
  const double sf = opt_ox.s_opt / opt_lk.s_opt;
  EXPECT_NEAR(lf, sf, 0.02 * sf);  // same factor
}

TEST(Optimizer, StageDelayLayerInvariant) {
  // "The delay between any two optimally spaced and sized repeaters is
  // independent of the layer."
  const auto tech = tech::make_ntrs_250nm_cu();
  const double d5 = optimize_layer(tech, 5, 4.0, kTrefK).stage_delay;
  const double d6 = optimize_layer(tech, 6, 4.0, kTrefK).stage_delay;
  EXPECT_NEAR(d5, d6, 0.01 * d5);
}

TEST(Optimizer, DownsizedDriverRule) {
  const auto tech = tech::make_ntrs_250nm_cu();
  const auto opt = optimize_layer(tech, 6, 4.0, kTrefK);
  EXPECT_NEAR(downsized_driver(opt, 0.5 * opt.l_opt), 0.5 * opt.s_opt,
              1e-9 * opt.s_opt);
  EXPECT_NEAR(downsized_driver(opt, 2.0 * opt.l_opt), opt.s_opt,
              1e-9 * opt.s_opt);  // capped at s_opt
  EXPECT_GE(downsized_driver(opt, opt.l_opt * 1e-6), 1.0);  // floor
}

TEST(Optimizer, Validation) {
  tech::DeviceParameters dev;
  EXPECT_THROW(optimize(dev, 0.0, 1e-10), std::invalid_argument);
  EXPECT_THROW(optimize(dev, 1e3, -1.0), std::invalid_argument);
}

class StageSim : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(StageSim, PaperObservables) {
  const auto [node, level] = GetParam();
  const tech::Technology tech =
      node == 0 ? tech::make_ntrs_250nm_cu() : tech::make_ntrs_100nm_cu();
  const double k_rel = node == 0 ? 4.0 : 2.0;
  const auto opt = optimize_layer(tech, level, k_rel, kTrefK);
  SimulationOptions so;
  so.steps_per_period = 2000;  // keep the suite fast
  const auto sim = simulate_stage(tech, level, k_rel, opt, so);

  // Basic waveform sanity.
  EXPECT_GT(sim.current_stats.peak, 0.0);
  EXPECT_GT(sim.j_peak, sim.j_rms);
  EXPECT_GT(sim.j_rms, 0.0);

  // Paper Fig. 7 headline: effective duty cycle 0.12 +/- a small band for
  // optimally buffered lines, invariant across layers and technologies.
  EXPECT_GT(sim.duty_effective, 0.08);
  EXPECT_LT(sim.duty_effective, 0.17);

  // Good slew: 10-90% output rise a modest fraction of the clock period.
  EXPECT_GT(sim.out_rise_fraction, 0.0);
  EXPECT_LT(sim.out_rise_fraction, 0.4);

  // Delay through one optimal stage is positive and below a clock period.
  EXPECT_GT(sim.delay_50, 0.0);
  EXPECT_LT(sim.delay_50, tech.device.clock_period);
}

INSTANTIATE_TEST_SUITE_P(
    NodesAndLayers, StageSim,
    ::testing::Values(std::make_pair(0, 5), std::make_pair(0, 6),
                      std::make_pair(1, 7), std::make_pair(1, 8)));

TEST(StageSim, DownsizedDriverRaisesEffectiveDuty) {
  // Paper: reducing buffer size on non-critical lines increases the
  // effective duty cycle slightly.
  const auto tech = tech::make_ntrs_250nm_cu();
  const auto opt = optimize_layer(tech, 6, 4.0, kTrefK);
  SimulationOptions so;
  so.steps_per_period = 2000;
  const auto nominal = simulate_stage(tech, 6, 4.0, opt, so);
  so.size_scale = 0.5;
  const auto downsized = simulate_stage(tech, 6, 4.0, opt, so);
  EXPECT_GT(downsized.duty_effective, nominal.duty_effective);
  EXPECT_LT(downsized.j_peak, nominal.j_peak);
}

}  // namespace
}  // namespace dsmt::repeater
