// Foster-network extraction tests.
#include <gtest/gtest.h>

#include <cmath>

#include "numeric/constants.h"
#include "tech/ntrs.h"
#include "thermal/foster.h"
#include "thermal/impedance.h"

namespace dsmt::thermal {
namespace {

ZthCurve synthetic_single_pole(double r, double tau) {
  ZthCurve c;
  c.rth_dc = units::ThermalResistancePerLength{r};
  for (int k = 0; k < 30; ++k) {
    const double t = tau * std::pow(10.0, -2.0 + 4.0 * k / 29.0);
    c.time.push_back(t);
    c.zth.push_back(r * (1.0 - std::exp(-t / tau)));
  }
  return c;
}

ZthCurve fd_curve() {
  const auto tech = tech::make_ntrs_250nm_cu();
  const auto& layer = tech.layer(6);
  ZthSpec spec;
  spec.metal = tech.metal;
  spec.w_m = metres(layer.width);
  spec.t_m = metres(layer.thickness);
  spec.stack = tech.stack_below(6, materials::make_oxide());
  spec.w_eff =
      effective_width(metres(layer.width), metres(spec.stack.total_thickness()), 2.45);
  return zth_step_response(spec, seconds(1e-9), seconds(1e-2), 40);
}

TEST(Foster, RecoversSinglePoleNearlyExactly) {
  const auto curve = synthetic_single_pole(0.3, 2e-6);
  const auto net = fit_foster(curve, 4);
  EXPECT_LT(net.max_relative_error(curve), 0.02);
  EXPECT_NEAR(net.r_total(), 0.3, 0.01);
}

TEST(Foster, FitsFdCurveWithinFivePercent) {
  const auto curve = fd_curve();
  const auto net = fit_foster(curve, 6);
  EXPECT_LT(net.max_relative_error(curve), 0.05);
  EXPECT_NEAR(net.r_total(), curve.zth.back(), 0.05 * curve.zth.back());
}

TEST(Foster, MoreStagesNeverFitWorse) {
  const auto curve = fd_curve();
  const double e3 = fit_foster(curve, 3).max_relative_error(curve);
  const double e8 = fit_foster(curve, 8).max_relative_error(curve);
  EXPECT_LE(e8, e3 * 1.05);
}

TEST(Foster, AllResistancesNonNegative) {
  const auto net = fit_foster(fd_curve(), 8);
  for (const auto& s : net.stages) {
    EXPECT_GT(s.r, 0.0);
    EXPECT_GT(s.tau, 0.0);
  }
  EXPECT_GE(net.stages.size(), 2u);
}

TEST(Foster, Validation) {
  ZthCurve empty;
  EXPECT_THROW(fit_foster(empty, 3), std::invalid_argument);
  const auto curve = synthetic_single_pole(0.3, 1e-6);
  EXPECT_THROW(fit_foster(curve, 0), std::invalid_argument);
  EXPECT_THROW(fit_foster(curve, 100), std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::thermal
