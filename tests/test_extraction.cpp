// Capacitance extraction tests: compact models vs the 2-D Laplace solver.
#include <gtest/gtest.h>

#include "extraction/capmodel.h"
#include "extraction/laplace2d.h"
#include "extraction/wire_rc.h"
#include "numeric/constants.h"
#include "tech/ntrs.h"

namespace dsmt::extraction {
namespace {

TEST(CapModel, ExceedsParallelPlate) {
  // Fringing always adds to the plate term.
  const double w = um(1.0), t = um(0.5), h = um(0.8);
  EXPECT_GT(cap_ground_single(w, t, h, 4.0), cap_parallel_plate(w, h, 4.0));
}

TEST(CapModel, ScalesLinearlyWithPermittivity) {
  const double w = um(1.0), t = um(0.5), h = um(0.8), s = um(0.5);
  EXPECT_NEAR(cap_ground_single(w, t, h, 8.0) / cap_ground_single(w, t, h, 4.0),
              2.0, 1e-12);
  EXPECT_NEAR(cap_coupling(w, t, h, s, 8.0) / cap_coupling(w, t, h, s, 4.0),
              2.0, 1e-12);
}

TEST(CapModel, GroundCapGrowsWithWidth) {
  double prev = 0.0;
  for (double w_um : {0.3, 0.6, 1.2, 2.4}) {
    const double c = cap_ground_single(um(w_um), um(0.5), um(0.8), 4.0);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(CapModel, CouplingFallsWithSpacing) {
  double prev = 1e30;
  for (double s_um : {0.2, 0.4, 0.8, 1.6}) {
    const double c = cap_coupling(um(1.0), um(0.5), um(0.8), um(s_um), 4.0);
    EXPECT_LT(c, prev);
    prev = c;
  }
}

TEST(CapModel, TypicalMagnitude) {
  // DSM wires run ~0.1-0.3 fF/um total.
  const auto bus = cap_bus(um(0.5), um(0.9), um(0.9), um(0.5), 4.0);
  const double total_ff_per_um = bus.total(1.0) * 1e15 * 1e-6;
  EXPECT_GT(total_ff_per_um, 0.05);
  EXPECT_LT(total_ff_per_um, 1.0);
  // Miller factor 2 doubles only the coupling part.
  EXPECT_NEAR(bus.total(2.0) - bus.total(1.0), 2.0 * bus.c_coupling, 1e-20);
}

TEST(Laplace2D, ParallelPlateLimit) {
  // A conductor nearly spanning the domain width close to the ground plane
  // behaves like a parallel plate: C ~ eps W / h.
  const double w_domain = um(40), h_cond = um(0.5);
  CapExtractor ex(w_domain, um(6), 1.0);
  const double wc = um(36), x0 = um(2), y0 = um(1);
  ex.add_conductor({x0, x0 + wc, y0, y0 + h_cond});
  thermal::MeshOptions mesh;
  mesh.h_min = 0.05e-6;
  mesh.h_max = 0.4e-6;
  const double c = ex.total_capacitance(0, mesh);
  const double plate = cap_parallel_plate(wc, y0, 1.0);
  EXPECT_GT(c, plate);             // fringe adds
  EXPECT_LT(c, 1.35 * plate);      // but not too much for a wide plate
}

TEST(Laplace2D, MaxwellMatrixStructure) {
  CapExtractor ex(um(12), um(6), 4.0);
  ex.add_conductor({um(5.0), um(5.5), um(1.0), um(1.5)});
  ex.add_conductor({um(6.0), um(6.5), um(1.0), um(1.5)});
  thermal::MeshOptions mesh;
  mesh.h_min = 0.04e-6;
  mesh.h_max = 0.3e-6;
  const auto c = ex.capacitance_matrix(mesh);
  // Diagonal positive, off-diagonal negative, symmetric.
  EXPECT_GT(c(0, 0), 0.0);
  EXPECT_GT(c(1, 1), 0.0);
  EXPECT_LT(c(0, 1), 0.0);
  EXPECT_NEAR(c(0, 1), c(1, 0), 0.03 * std::abs(c(0, 1)));
  // Coupling smaller than the total.
  EXPECT_LT(std::abs(c(0, 1)), c(0, 0));
}

TEST(Laplace2D, AgreesWithSakuraiWithinEngineeringTolerance) {
  // 3-line bus at typical global-layer geometry: field solver and compact
  // model should agree to a few tens of percent.
  const double w = um(1.0), t = um(1.0), h = um(1.0), s = um(1.0);
  CapExtractor ex(um(30), um(8), 4.0);
  const double xc = um(15);
  ex.add_conductor({xc - w / 2, xc + w / 2, h, h + t});                 // victim
  ex.add_conductor({xc - w / 2 - s - w, xc - w / 2 - s, h, h + t});     // left
  ex.add_conductor({xc + w / 2 + s, xc + w / 2 + s + w, h, h + t});     // right
  thermal::MeshOptions mesh;
  mesh.h_min = 0.05e-6;
  mesh.h_max = 0.4e-6;
  const auto cm = ex.capacitance_matrix(mesh);
  const auto bus = cap_bus(w, t, h, s, 4.0);
  EXPECT_NEAR(cm(0, 0), bus.total(1.0), 0.4 * bus.total(1.0));
  // The compact model underestimates coupling at s/h = 1 (edge of its fit
  // range); require factor-2 agreement.
  EXPECT_GT(-cm(0, 1), 0.5 * bus.c_coupling);
  EXPECT_LT(-cm(0, 1), 2.0 * bus.c_coupling);
}

TEST(WireRc, ExtractionSanity) {
  const auto tech = tech::make_ntrs_250nm_cu();
  const auto rc = extract_wire_rc(tech, 6, 4.0, kTrefK);
  EXPECT_GT(rc.r_per_m, 1e2);
  EXPECT_LT(rc.r_per_m, 1e6);
  EXPECT_NEAR(rc.c_per_m, rc.c_ground_per_m + 2.0 * rc.c_coupling_per_m,
              1e-18);
  // Lower permittivity lowers c proportionally.
  const auto rc2 = extract_wire_rc(tech, 6, 2.0, kTrefK);
  EXPECT_NEAR(rc2.c_per_m / rc.c_per_m, 0.5, 1e-9);
  // Hotter wire is more resistive.
  const auto rc_hot = extract_wire_rc(tech, 6, 4.0, kTrefK + 100.0);
  EXPECT_GT(rc_hot.r_per_m, rc.r_per_m);
}

TEST(CapModel, RejectsBadInputs) {
  EXPECT_THROW(cap_ground_single(0.0, 1e-6, 1e-6, 4.0), std::invalid_argument);
  EXPECT_THROW(cap_coupling(1e-6, 1e-6, 1e-6, 0.0, 4.0),
               std::invalid_argument);
  EXPECT_THROW(cap_parallel_plate(1e-6, 1e-6, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::extraction
