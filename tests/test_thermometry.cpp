// Electrical-thermometry tests: the simulated Fig. 5 measurement procedure
// must recover the true thermal impedance, with and without noise.
#include <gtest/gtest.h>

#include "numeric/constants.h"
#include "thermal/impedance.h"
#include "thermal/thermometry.h"

namespace dsmt::thermal {
namespace {

ThermometrySetup fig5_line() {
  ThermometrySetup s;
  s.metal = materials::make_alcu();
  s.w_m = um(0.35);
  s.t_m = um(0.6);
  s.length = um(1000);
  const auto weff = effective_width(metres(s.w_m), um(1.2), kPhiQuasi2D);
  s.rth_per_len = rth_per_length_uniform(um(1.2), W_per_mK(1.15), weff);
  return s;
}

TEST(Thermometry, SweepIsPhysical) {
  const auto setup = fig5_line();
  const auto sweep = simulate_sweep(setup, 6e-3, 12);
  ASSERT_EQ(sweep.size(), 12u);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i].current, sweep[i - 1].current);
    EXPECT_GT(sweep[i].power, sweep[i - 1].power);
    EXPECT_GT(sweep[i].temperature, sweep[i - 1].temperature);
    EXPECT_GT(sweep[i].resistance, sweep[i - 1].resistance);
  }
  EXPECT_GT(sweep.back().temperature, setup.t_chuck + 0.5);
}

TEST(Thermometry, CleanExtractionRecoversTruth) {
  const auto setup = fig5_line();
  const auto sweep = simulate_sweep(setup, 3e-3, 15);
  const auto ext = extract_theta(setup, sweep);
  EXPECT_GT(ext.fit_r_squared, 0.999);
  // theta_true = R'_th / L.
  const double theta_true = setup.rth_per_len / setup.length;
  EXPECT_NEAR(ext.theta, theta_true, 0.03 * theta_true);
  EXPECT_NEAR(ext.rth_per_len, setup.rth_per_len, 0.03 * setup.rth_per_len);
  // R0 matches rho(T_chuck) L / A.
  const double r0_true = setup.metal.resistivity(setup.t_chuck) *
                         setup.length / (setup.w_m * setup.t_m);
  EXPECT_NEAR(ext.r0, r0_true, 0.01 * r0_true);
}

TEST(Thermometry, NoiseInjectionDegradesButDoesNotBreakExtraction) {
  const auto setup = fig5_line();
  const auto sweep = simulate_sweep(setup, 8e-3, 60, /*noise=*/0.001);
  const auto ext = extract_theta(setup, sweep);
  const double theta_true = setup.rth_per_len / setup.length;
  EXPECT_NEAR(ext.theta, theta_true, 0.5 * theta_true);
  EXPECT_LT(ext.fit_r_squared, 1.0);
}

TEST(Thermometry, ExtractionSeesGapFillDifference) {
  // HSQ gap-fill raises the true R'_th; the virtual measurement must see it.
  auto ox = fig5_line();
  auto hsq = fig5_line();
  hsq.rth_per_len *= 1.2;  // the paper's ~20% penalty
  const auto e_ox = extract_theta(ox, simulate_sweep(ox, 3e-3, 15));
  const auto e_hsq = extract_theta(hsq, simulate_sweep(hsq, 3e-3, 15));
  EXPECT_NEAR(e_hsq.theta / e_ox.theta, 1.2, 0.03);
}

TEST(Thermometry, Validation) {
  auto setup = fig5_line();
  EXPECT_THROW(simulate_sweep(setup, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(simulate_sweep(setup, 1e-3, 1), std::invalid_argument);
  EXPECT_THROW(extract_theta(setup, {}), std::invalid_argument);
  setup.w_m = 0.0;
  EXPECT_THROW(simulate_sweep(setup, 1e-3, 10), std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::thermal
