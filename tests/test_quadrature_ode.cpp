// Quadrature and ODE integrator tests.
#include <gtest/gtest.h>

#include <cmath>

#include "numeric/ode.h"
#include "numeric/quadrature.h"

namespace dsmt::numeric {
namespace {

TEST(Trapezoid, ExactForLinear) {
  auto f = [](double x) { return 3.0 * x + 1.0; };
  EXPECT_NEAR(trapezoid(f, 0.0, 2.0, 1), 8.0, 1e-12);
}

TEST(Simpson, ExactForCubic) {
  auto f = [](double x) { return x * x * x - 2.0 * x; };
  // integral over [0,2] = 4 - 4 = 0.
  EXPECT_NEAR(simpson(f, 0.0, 2.0, 2), 0.0, 1e-12);
}

TEST(AdaptiveSimpson, PeakedIntegrand) {
  // integral of 1/(1e-4 + x^2) over [-1,1] = 2 atan(1e2)/1e-2.
  auto f = [](double x) { return 1.0 / (1e-4 + x * x); };
  const double exact = 2.0 * std::atan(100.0) / 1e-2;
  EXPECT_NEAR(adaptive_simpson(f, -1.0, 1.0, 1e-10), exact, 1e-5 * exact);
}

TEST(TrapezoidSampled, NonUniformGrid) {
  std::vector<double> t{0.0, 0.1, 0.5, 1.0};
  std::vector<double> y{0.0, 0.2, 1.0, 2.0};  // y = 2t
  EXPECT_NEAR(trapezoid_sampled(t, y), 1.0, 1e-12);
}

TEST(TrapezoidSampledSquared, MatchesAnalytic) {
  // y = t on [0,1]: integral of t^2 = 1/3 (trapezoid overestimates slightly).
  std::vector<double> t, y;
  for (int i = 0; i <= 1000; ++i) {
    t.push_back(i / 1000.0);
    y.push_back(i / 1000.0);
  }
  EXPECT_NEAR(trapezoid_sampled_squared(t, y), 1.0 / 3.0, 1e-6);
}

TEST(Rk4, ExponentialDecay) {
  auto tr = rk4([](double, double y) { return -2.0 * y; }, 0.0, 1.0, 1.0, 200);
  EXPECT_NEAR(tr.y.back(), std::exp(-2.0), 1e-8);
  EXPECT_EQ(tr.t.size(), 201u);
}

TEST(Rk4, FourthOrderConvergence) {
  auto rhs = [](double t, double y) { return y - t * t + 1.0; };
  // y' = y - t^2 + 1, y(0)=0.5 has exact y(t) = (t+1)^2 - 0.5 e^t.
  auto exact = [](double t) { return (t + 1.0) * (t + 1.0) - 0.5 * std::exp(t); };
  const double e1 = std::abs(rk4(rhs, 0.0, 0.5, 2.0, 20).y.back() - exact(2.0));
  const double e2 = std::abs(rk4(rhs, 0.0, 0.5, 2.0, 40).y.back() - exact(2.0));
  EXPECT_GT(e1 / e2, 12.0);  // ~16x for 4th order
}

TEST(Rkf45, MatchesClosedForm) {
  auto tr = rkf45([](double t, double) { return std::cos(t); }, 0.0, 0.0,
                  3.0, 1e-10, 1e-10);
  EXPECT_NEAR(tr.y.back(), std::sin(3.0), 1e-7);
}

TEST(Rkf45, EventStopsIntegration) {
  auto tr = rkf45([](double, double) { return 1.0; }, 0.0, 0.0, 10.0, 1e-9,
                  1e-9, [](double, double y) { return y >= 2.0; });
  EXPECT_LT(tr.t.back(), 3.0);
  EXPECT_GE(tr.y.back(), 2.0);
}

TEST(ImplicitEuler, StableOnStiffProblem) {
  // y' = -1e6 (y - cos(t)); explicit methods at this step size explode.
  auto rhs = [](double t, double y) { return -1e6 * (y - std::cos(t)); };
  auto tr = implicit_euler(rhs, 0.0, 0.0, 1.0, 100);
  EXPECT_NEAR(tr.y.back(), std::cos(1.0), 1e-2);
  for (double y : tr.y) EXPECT_LT(std::abs(y), 2.0);
}

TEST(ImplicitEuler, LinearDecayFirstOrderAccuracy) {
  auto rhs = [](double, double y) { return -y; };
  const double e1 =
      std::abs(implicit_euler(rhs, 0.0, 1.0, 1.0, 100).y.back() - std::exp(-1.0));
  const double e2 =
      std::abs(implicit_euler(rhs, 0.0, 1.0, 1.0, 200).y.back() - std::exp(-1.0));
  EXPECT_GT(e1 / e2, 1.7);  // ~2x for 1st order
}

}  // namespace
}  // namespace dsmt::numeric
