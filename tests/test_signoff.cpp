// Chip-level sign-off integration tests.
#include <gtest/gtest.h>

#include "core/signoff.h"
#include "numeric/constants.h"
#include "tech/ntrs.h"

namespace dsmt::core {
namespace {

SignoffOptions fast() {
  SignoffOptions o;
  o.j0 = MA_per_cm2(0.6);
  o.engine.sim.steps_per_period = 1200;
  o.engine.sim.line_segments = 12;
  return o;
}

TEST(Signoff, FullReportStructure) {
  const auto report = run_signoff(tech::make_ntrs_250nm_cu(), fast());
  EXPECT_EQ(report.technology, "NTRS-250nm-Cu");
  // 6 levels x 3 dielectrics x 2 duty cycles.
  EXPECT_EQ(report.design_rules.size(), 6u * 3u * 2u);
  EXPECT_EQ(report.global_checks.size(), 2u);  // M5, M6
  EXPECT_GT(report.j0_chip_budgeted, 0.0);
  EXPECT_LT(report.j0_chip_budgeted, fast().j0);
  EXPECT_TRUE(report.all_global_layers_pass);
}

TEST(Signoff, EightLevelStackChecksFourGlobals) {
  auto opts = fast();
  const auto report = run_signoff(tech::make_ntrs_100nm_cu(), opts);
  EXPECT_EQ(report.global_checks.size(), 4u);  // M5..M8
  EXPECT_EQ(report.design_rules.size(), 8u * 3u * 2u);
}

TEST(Signoff, TextRenderingContainsEverySection) {
  const auto report = run_signoff(tech::make_ntrs_250nm_cu(), fast());
  const std::string text = report.to_text();
  EXPECT_NE(text.find("[1] Self-consistent design rules"), std::string::npos);
  EXPECT_NE(text.find("[2] Global-layer delay-vs-thermal"), std::string::npos);
  EXPECT_NE(text.find("[3] ESD screen"), std::string::npos);
  EXPECT_NE(text.find("[4] Chip-level EM budget"), std::string::npos);
  EXPECT_NE(text.find("Overall: global layers PASS"), std::string::npos);
  EXPECT_NE(text.find("M6"), std::string::npos);
  EXPECT_NE(text.find("Polyimide"), std::string::npos);
}

TEST(Signoff, HarshEsdTargetFlagsUnsafe) {
  auto opts = fast();
  opts.esd_hbm_volts = 25000.0;  // absurd zap through a signal line
  const auto report = run_signoff(tech::make_ntrs_250nm_alcu(), opts);
  EXPECT_FALSE(report.esd_safe);
  EXPECT_NE(report.to_text().find("NEEDS DEDICATED SIZING"),
            std::string::npos);
}

}  // namespace
}  // namespace dsmt::core
