// Thread-stress suite for the annotated concurrent subsystems (label
// `tsan-stress`). These tests are written for the TSan build: they create
// real contention — many threads, tight loops, deliberately small queue
// bounds — so that ThreadSanitizer (and, at compile time, Clang's
// -Wthread-safety over the dsmt::Mutex vocabulary) can observe every lock
// path under fire. They also run in the plain release suite, where the
// invariant checks still bite; only the race *detection* needs TSan.
//
// Raw std::thread is deliberate here: the point is to attack the library
// from outside the deterministic parallel_for layer, the way a hostile
// caller would. Tests are exempt from lint R6.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/run_context.h"
#include "core/signoff.h"
#include "numeric/fault_injection.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "report/json.h"
#include "service/breaker.h"

namespace {

constexpr std::size_t kAttackers = 8;

// ---------------------------------------------------------------------------
// ThreadPool: concurrent producers against a deliberately tiny queue bound.

TEST(ThreadStress, PoolSubmitDrainFromManyProducers) {
  dsmt::parallel::set_thread_count(4);
  dsmt::parallel::set_queue_high_water(2);  // force producers to block
  const std::uint64_t drained_before = dsmt::parallel::tasks_drained();

  constexpr std::size_t kTasksPerProducer = 200;
  std::atomic<std::uint64_t> ran{0};
  std::vector<std::thread> producers;
  producers.reserve(kAttackers);
  for (std::size_t p = 0; p < kAttackers; ++p) {
    producers.emplace_back([&ran] {
      for (std::size_t i = 0; i < kTasksPerProducer; ++i) {
        dsmt::parallel::pool_submit(
            [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : producers) t.join();

  // Drain. A parallel_for join only proves earlier tasks were *dequeued*
  // (its blocks sit behind them in the FIFO queue) — a worker can still be
  // mid-task when the join releases — so spin until the counter settles.
  dsmt::parallel::parallel_for(kAttackers, [](std::size_t) {});
  for (int spin = 0;
       spin < 1000000 && ran.load() < kAttackers * kTasksPerProducer; ++spin)
    std::this_thread::yield();
  EXPECT_EQ(ran.load(), kAttackers * kTasksPerProducer);
  EXPECT_GE(dsmt::parallel::tasks_drained() - drained_before,
            kAttackers * kTasksPerProducer);
  // The bound held while the producers were blocked on it.
  EXPECT_GE(dsmt::parallel::queue_peak_depth(), 1u);

  dsmt::parallel::set_queue_high_water(0);  // restore default (clamps to >=1)
  dsmt::parallel::set_queue_high_water(dsmt::parallel::kDefaultQueueHighWater);
  dsmt::parallel::set_thread_count(0);
}

TEST(ThreadStress, ConcurrentParallelForCallers) {
  dsmt::parallel::set_thread_count(4);
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kAttackers);
  for (std::size_t c = 0; c < kAttackers; ++c) {
    callers.emplace_back([&total] {
      for (int round = 0; round < 20; ++round) {
        dsmt::parallel::parallel_for(64, [&total](std::size_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), kAttackers * 20u * 64u);
  dsmt::parallel::set_thread_count(0);
}

// Regression for the nested-from-caller race TSan caught: block 0 of a
// parallel region runs on the calling thread, and a nested parallel_for
// from inside it used to fan out across the pool concurrently with the
// outer worker blocks — so the inner body's plain `sums[i] += 1` raced.
// With the RegionGuard the nested region runs inline, same as on a worker.
TEST(ThreadStress, NestedParallelFromCallerBlockRunsInline) {
  dsmt::parallel::set_thread_count(4);
  std::vector<int> sums(16, 0);  // deliberately NOT atomic
  dsmt::parallel::parallel_for(sums.size(), [&sums](std::size_t i) {
    EXPECT_TRUE(dsmt::parallel::in_parallel_region() ||
                dsmt::parallel::on_worker_thread());
    dsmt::parallel::parallel_for(64, [&sums, i](std::size_t) {
      sums[i] += 1;
    });
  });
  for (int s : sums) EXPECT_EQ(s, 64);
  EXPECT_FALSE(dsmt::parallel::in_parallel_region());
  dsmt::parallel::set_thread_count(0);
}

// ---------------------------------------------------------------------------
// CircuitBreaker: 8 threads hammer the allow/answer protocol while an armed
// ScopedFault makes every attempted "kernel" fail, driving the breaker
// around its full Closed -> Open -> HalfOpen cycle under contention.

TEST(ThreadStress, BreakerTransitionsUnderArmedFault) {
  dsmt::numeric::fault::FaultPlan plan;
  plan.kind = dsmt::numeric::fault::FaultKind::kNanResidual;
  plan.kernel_substr = "stress/kernel";
  dsmt::numeric::fault::ScopedFault fault(plan);

  dsmt::service::BreakerConfig config;
  config.failure_threshold = 3;
  config.open_ticks = 5;
  dsmt::service::CircuitBreaker breaker("stress/kernel", config);

  std::atomic<std::uint64_t> attempts{0};
  std::atomic<std::uint64_t> shed{0};
  std::vector<std::thread> attackers;
  attackers.reserve(kAttackers);
  for (std::size_t a = 0; a < kAttackers; ++a) {
    attackers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        if (breaker.allow()) {
          attempts.fetch_add(1, std::memory_order_relaxed);
          // The armed fault poisons the residual for our kernel name: the
          // attempt deterministically fails, and the failure is charged to
          // the breaker like a real kernel failure would be.
          const double r = dsmt::numeric::fault::filter_residual(
              "stress/kernel", /*iteration=*/1, /*residual=*/1e-9);
          ASSERT_TRUE(r != r) << "armed kNanResidual must poison residuals";
          breaker.on_failure(dsmt::core::StatusCode::kNonFinite);
        } else {
          shed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : attackers) t.join();

  // Every poll either attempted or was shed; ticks count the polls.
  EXPECT_EQ(attempts.load() + shed.load(), kAttackers * 500u);
  EXPECT_EQ(breaker.ticks(), kAttackers * 500u);
  EXPECT_EQ(breaker.short_circuits(), shed.load());
  // All attempts failed, so the breaker must have opened, and more than once
  // (half-open probes keep failing).
  EXPECT_GE(breaker.opens(), 2u);

  // The recorded transition chain is legal: each edge starts where the
  // previous one ended, and every edge is one of the machine's real edges.
  const auto transitions = breaker.transitions();
  ASSERT_FALSE(transitions.empty());
  dsmt::service::BreakerState at = dsmt::service::BreakerState::kClosed;
  std::uint64_t last_tick = 0;
  for (const auto& tr : transitions) {
    EXPECT_EQ(tr.from, at);
    EXPECT_GE(tr.tick, last_tick);
    const bool legal_edge =
        (tr.from == dsmt::service::BreakerState::kClosed &&
         tr.to == dsmt::service::BreakerState::kOpen) ||
        (tr.from == dsmt::service::BreakerState::kOpen &&
         tr.to == dsmt::service::BreakerState::kHalfOpen) ||
        (tr.from == dsmt::service::BreakerState::kHalfOpen &&
         tr.to == dsmt::service::BreakerState::kOpen) ||
        (tr.from == dsmt::service::BreakerState::kHalfOpen &&
         tr.to == dsmt::service::BreakerState::kClosed);
    EXPECT_TRUE(legal_edge) << "illegal transition at tick " << tr.tick;
    at = tr.to;
    last_tick = tr.tick;
  }
}

// ---------------------------------------------------------------------------
// Fault-injection hooks: readers in a tight loop while arm/disarm cycles
// swap plans whose kernel_substr strings differ in length (forcing the
// std::string heap buffer to move). Regression test for the plan read that
// used to happen lock-free: TSan flags the old code here.

TEST(ThreadStress, FaultArmDisarmRacesHookReaders) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  readers.reserve(kAttackers);
  for (std::size_t r = 0; r < kAttackers; ++r) {
    readers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_acquire)) {
        const double v = dsmt::numeric::fault::filter_residual(
            "numeric/cg", 3, 0.25);
        // Armed kPerturbResidual scales, disarmed passes through; either
        // way the result is finite and positive.
        ASSERT_GT(v, 0.0);
        const int budget = dsmt::numeric::fault::clamp_iterations(
            "numeric/cg", 100);
        ASSERT_GE(budget, 1);
        ASSERT_LE(budget, 100);
      }
    });
  }

  for (int cycle = 0; cycle < 200; ++cycle) {
    dsmt::numeric::fault::FaultPlan plan;
    plan.kind = dsmt::numeric::fault::FaultKind::kPerturbResidual;
    plan.scale = 2.0;
    // Alternate short and long kernel names so the guarded string's buffer
    // actually reallocates between arms.
    plan.kernel_substr =
        (cycle % 2 == 0)
            ? "numeric/cg"
            : "numeric/cg-with-a-deliberately-long-kernel-name-suffix";
    dsmt::numeric::fault::arm(plan);
    dsmt::numeric::fault::disarm();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(dsmt::numeric::fault::armed());
}

// ---------------------------------------------------------------------------
// Sign-off service-source slot: 8 threads register and tear down their own
// ownership in a loop while the main thread snapshots the slot. The
// owner-checked clear means a stale owner can never evict a newer one, and
// after every thread has cleared, the slot must be empty.

TEST(ThreadStress, SignoffSourceRegistrationTeardown) {
  std::vector<std::thread> owners;
  owners.reserve(kAttackers);
  std::vector<int> tokens(kAttackers, 0);  // distinct stable owner addresses
  for (std::size_t o = 0; o < kAttackers; ++o) {
    owners.emplace_back([&tokens, o] {
      const void* self = &tokens[o];
      for (int i = 0; i < 300; ++i) {
        dsmt::core::set_signoff_service_source(self, [] {
          auto json = dsmt::report::Json::object();
          json.set("stress", dsmt::report::Json::boolean(true));
          return json;
        });
        dsmt::core::clear_signoff_service_source(self);
      }
    });
  }
  // Concurrent snapshots of the slot exercise the read path under churn.
  for (int i = 0; i < 300; ++i) {
    (void)dsmt::core::signoff_service_source();
  }
  for (auto& t : owners) t.join();
  // Every registrant cleared itself; the owner check guarantees nothing is
  // left behind regardless of interleaving.
  EXPECT_FALSE(static_cast<bool>(dsmt::core::signoff_service_source()));
}

// ---------------------------------------------------------------------------
// RunContext cancellation: workers poll an ambient context while another
// thread trips the cancel token mid-sweep.

TEST(ThreadStress, CancelMidParallelSweep) {
  dsmt::parallel::set_thread_count(4);
  dsmt::core::RunContext context;
  dsmt::core::CancelToken cancel = context.cancel();  // copies share state
  std::atomic<std::uint64_t> items{0};

  std::thread canceller([&cancel, &items] {
    // Let a few items through, then cancel.
    while (items.load(std::memory_order_acquire) == 0) std::this_thread::yield();
    cancel.request_cancel();
  });

  bool interrupted = false;
  try {
    dsmt::core::ScopedRunContext scope(context);
    dsmt::parallel::parallel_for(1u << 20, [&items](std::size_t) {
      items.fetch_add(1, std::memory_order_acq_rel);
    });
  } catch (const dsmt::SolveError& e) {
    interrupted = true;
    EXPECT_EQ(e.diag().status, dsmt::core::StatusCode::kCancelled);
  }
  canceller.join();
  EXPECT_TRUE(interrupted);
  // Cooperative cancellation stopped the sweep well short of 2^20 items.
  EXPECT_LT(items.load(), 1u << 20);
  dsmt::parallel::set_thread_count(0);
}

}  // namespace
