// Service-layer robustness suite (ctest label `service`): deterministic
// retry/backoff, breaker state machine under ScopedFault injection, bounded
// admission with explicit shedding, the conservative degradation ladder, and
// bit-identical batch responses across thread counts. Arms process-global
// fault plans and mutates the global thread count, so it lives in its own
// executable like the fault-injection and resilience suites.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/signoff.h"
#include "numeric/fault_injection.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "service/server.h"

namespace dsmt::service {
namespace {

using numeric::fault::FaultKind;
using numeric::fault::FaultPlan;
using numeric::fault::ScopedFault;

/// Kill the solver terminally: NaN residuals in Brent AND its bisection
/// fallback ("numeric/b" matches both), so no recovery stage can save it.
FaultPlan kill_solver() {
  return {FaultKind::kNanResidual, "numeric/b", 1, 0.0};
}

Request wire_request(const std::string& id, double duty = 0.1,
                     double width_um = 0.5) {
  Request r;
  r.id = id;
  r.kind = RequestKind::kSelfConsistent;
  r.duty_cycle = duty;
  r.wire.width_um = width_um;
  r.wire.thickness_um = 0.9;
  r.wire.dielectric_um = 0.8;
  return r;
}

ServerConfig quiet_config() {
  ServerConfig c;
  c.sleep_on_backoff = false;
  c.publish_signoff = false;
  return c;
}

struct ThreadCountGuard {
  ~ThreadCountGuard() { parallel::set_thread_count(0); }
};

// --- retry/backoff determinism ---------------------------------------------

TEST(Retry, RetryableStatuses) {
  EXPECT_TRUE(retryable(core::StatusCode::kNonFinite));
  EXPECT_TRUE(retryable(core::StatusCode::kMaxIterations));
  EXPECT_FALSE(retryable(core::StatusCode::kOk));
  EXPECT_FALSE(retryable(core::StatusCode::kInvalidInput));
  EXPECT_FALSE(retryable(core::StatusCode::kNoBracket));
  EXPECT_FALSE(retryable(core::StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(retryable(core::StatusCode::kCancelled));
}

TEST(Retry, BackoffIsPureAndBounded) {
  const RetryPolicy policy;
  const std::uint64_t key = request_key("req-7", 7);
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const std::uint64_t a = backoff_ns(policy, key, attempt);
    const std::uint64_t b = backoff_ns(policy, key, attempt);
    EXPECT_EQ(a, b) << "attempt " << attempt;
    // Within [ramp*(1-jitter), cap*(1+jitter)].
    EXPECT_GE(a, static_cast<std::uint64_t>(
                     static_cast<double>(policy.base_backoff_ns) *
                     (1.0 - policy.jitter)));
    EXPECT_LE(a, static_cast<std::uint64_t>(
                     static_cast<double>(policy.max_backoff_ns) *
                     (1.0 + policy.jitter) + 1.0));
  }
  // Distinct requests draw distinct jitter even at the same attempt.
  EXPECT_NE(backoff_ns(policy, request_key("a", 0), 1),
            backoff_ns(policy, request_key("b", 1), 1));
  // Same id, different batch index: still distinct keys.
  EXPECT_NE(request_key("dup", 3), request_key("dup", 4));
}

TEST(Retry, ScheduleBitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const RetryPolicy policy;
  constexpr std::size_t kN = 256;
  auto schedule_at = [&](std::size_t threads) {
    parallel::set_thread_count(threads);
    return parallel::parallel_map<std::uint64_t>(kN, [&](std::size_t i) {
      const std::uint64_t key =
          request_key("req-" + std::to_string(i), i);
      std::uint64_t folded = 0;
      for (int attempt = 1; attempt <= 4; ++attempt)
        folded = mix64(folded ^ backoff_ns(policy, key, attempt));
      return folded;
    });
  };
  const std::vector<std::uint64_t> serial = schedule_at(1);
  const std::vector<std::uint64_t> wide = schedule_at(8);
  EXPECT_EQ(serial, wide);
}

// --- breaker state machine ---------------------------------------------------

TEST(Breaker, ClosedOpenHalfOpenClosed) {
  BreakerConfig cfg;
  cfg.failure_threshold = 2;
  cfg.open_ticks = 2;
  cfg.half_open_successes = 1;
  CircuitBreaker breaker("kernel-under-test", cfg);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);

  ASSERT_TRUE(breaker.allow());  // tick 1
  breaker.on_failure(core::StatusCode::kNonFinite);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  ASSERT_TRUE(breaker.allow());  // tick 2
  breaker.on_failure(core::StatusCode::kNonFinite);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);

  EXPECT_FALSE(breaker.allow());  // tick 3: cooling
  EXPECT_FALSE(breaker.allow());  // tick 4: cooling
  ASSERT_TRUE(breaker.allow());   // tick 5: half-open probe admitted
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.on_failure(core::StatusCode::kMaxIterations);  // probe fails
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);

  EXPECT_FALSE(breaker.allow());  // tick 6
  EXPECT_FALSE(breaker.allow());  // tick 7
  ASSERT_TRUE(breaker.allow());   // tick 8: probe again
  breaker.on_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);

  EXPECT_EQ(breaker.opens(), 2u);
  EXPECT_EQ(breaker.short_circuits(), 4u);
  const std::vector<BreakerTransition> log = breaker.transitions();
  ASSERT_EQ(log.size(), 5u);
  EXPECT_EQ(log[0].to, BreakerState::kOpen);
  EXPECT_EQ(log[1].to, BreakerState::kHalfOpen);
  EXPECT_EQ(log[2].to, BreakerState::kOpen);
  EXPECT_EQ(log[3].to, BreakerState::kHalfOpen);
  EXPECT_EQ(log[4].to, BreakerState::kClosed);

  core::SolverDiag diag;
  breaker.record_into(diag);
  ASSERT_EQ(diag.chain.size(), 5u);
  EXPECT_EQ(diag.chain[0].kernel, "service/breaker[kernel-under-test]");
  EXPECT_EQ(diag.chain[0].status, core::StatusCode::kBreakerOpen);
  EXPECT_EQ(diag.chain[4].status, core::StatusCode::kOk);
}

TEST(Breaker, HalfOpenAdmitsOneProbeAtATime) {
  BreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_ticks = 1;
  CircuitBreaker breaker("k", cfg);
  ASSERT_TRUE(breaker.allow());
  breaker.on_failure(core::StatusCode::kNonFinite);
  EXPECT_FALSE(breaker.allow());  // cooling
  ASSERT_TRUE(breaker.allow());   // the probe slot
  EXPECT_FALSE(breaker.allow());  // probe in flight: everyone else waits
  breaker.on_success();
  EXPECT_TRUE(breaker.allow());   // closed again
  breaker.on_success();
}

TEST(Breaker, NonCountingProbeFailureReleasesTheProbeSlot) {
  // A half-open probe that ends in a deadline/cancel or kInvalidInput says
  // nothing about kernel health, but it still terminates the allowed
  // attempt: the probe slot must come back, or the breaker wedges with
  // probe_in_flight_ stuck true and every later allow() short-circuits.
  BreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_ticks = 1;
  CircuitBreaker breaker("k", cfg);
  ASSERT_TRUE(breaker.allow());
  breaker.on_failure(core::StatusCode::kNonFinite);  // opens
  EXPECT_FALSE(breaker.allow());                     // cooling
  ASSERT_TRUE(breaker.allow());                      // probe slot claimed
  breaker.on_failure(core::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  ASSERT_TRUE(breaker.allow());  // fresh probe, not wedged
  breaker.on_failure(core::StatusCode::kCancelled);
  ASSERT_TRUE(breaker.allow());
  breaker.on_failure(core::StatusCode::kInvalidInput);
  ASSERT_TRUE(breaker.allow());
  breaker.on_success();  // kernel is actually fine: probe closes it
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  ASSERT_TRUE(breaker.allow());
  breaker.on_success();
}

TEST(Breaker, InterruptionsAndBadInputDoNotCount) {
  BreakerConfig cfg;
  cfg.failure_threshold = 1;
  CircuitBreaker breaker("k", cfg);
  ASSERT_TRUE(breaker.allow());
  breaker.on_failure(core::StatusCode::kDeadlineExceeded);
  ASSERT_TRUE(breaker.allow());
  breaker.on_failure(core::StatusCode::kCancelled);
  ASSERT_TRUE(breaker.allow());
  breaker.on_failure(core::StatusCode::kInvalidInput);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  ASSERT_TRUE(breaker.allow());
  breaker.on_failure(core::StatusCode::kNonFinite);  // a real one: trips
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

TEST(Breaker, FullCycleDrivenByScopedFaultThroughServer) {
  ServerConfig cfg = quiet_config();
  cfg.retry.max_attempts = 1;
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.open_ticks = 1;
  cfg.enable_interpolation = false;  // force the analytic rung, cache aside
  Server server(cfg);

  std::vector<Response> responses;
  {
    ScopedFault fault(kill_solver());
    for (int i = 0; i < 4; ++i)
      responses.push_back(
          server.handle(wire_request("f" + std::to_string(i)), 0));
  }
  // Faults disarmed again. The reopen above restarted the cooling window,
  // so one more poll short-circuits, then the probe is admitted, succeeds,
  // and closes the breaker.
  responses.push_back(server.handle(wire_request("cooling"), 0));
  responses.push_back(server.handle(wire_request("probe"), 0));
  responses.push_back(server.handle(wire_request("after"), 0));

  // Every response while the solver was unavailable still answered,
  // degraded and conservative, via the analytic rung.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(responses[i].ok()) << i;
    EXPECT_TRUE(responses[i].degraded) << i;
    EXPECT_EQ(responses[i].degradation_level,
              DegradationLevel::kAnalyticBound) << i;
    EXPECT_TRUE(responses[i].conservative) << i;
  }
  EXPECT_EQ(responses[0].attempts, 1);
  EXPECT_EQ(responses[1].attempts, 1);   // second failure opens the breaker
  EXPECT_EQ(responses[2].attempts, 0);   // short-circuited (cooling)
  EXPECT_EQ(responses[3].attempts, 1);   // half-open probe, fails, reopens
  EXPECT_EQ(responses[4].attempts, 0);   // cooling again after the reopen
  EXPECT_EQ(responses[5].attempts, 1);   // probe after disarm: succeeds
  EXPECT_FALSE(responses[5].degraded);
  EXPECT_EQ(responses[5].degradation_level, DegradationLevel::kFull);
  EXPECT_FALSE(responses[6].degraded);
  EXPECT_EQ(server.breaker().state(), BreakerState::kClosed);

  // The transition history tells the whole story, in order.
  std::vector<BreakerState> to;
  for (const BreakerTransition& t : server.breaker().transitions())
    to.push_back(t.to);
  const std::vector<BreakerState> expected = {
      BreakerState::kOpen, BreakerState::kHalfOpen, BreakerState::kOpen,
      BreakerState::kHalfOpen, BreakerState::kClosed};
  EXPECT_EQ(to, expected);

  // And the same history lands under the sign-off "service" key while the
  // server is alive (it was created with publish_signoff=false, so register
  // a publishing one to check the plumbing).
  {
    ServerConfig pub = quiet_config();
    pub.publish_signoff = true;
    Server publisher(pub);
    auto source = core::signoff_service_source();
    ASSERT_TRUE(static_cast<bool>(source));
    const report::Json section = source();
    EXPECT_NE(section.find("breaker"), nullptr);
    EXPECT_NE(section.find("queue"), nullptr);
  }
  EXPECT_FALSE(static_cast<bool>(core::signoff_service_source()));
}

TEST(Retry, BackoffScheduleRecordedAndReproducible) {
  ServerConfig cfg = quiet_config();
  cfg.retry.max_attempts = 3;
  cfg.breaker.failure_threshold = 100;  // keep the breaker out of the way
  const Request req = wire_request("retry-me");

  auto run_once = [&] {
    Server server(cfg);
    ScopedFault fault(kill_solver());
    return server.handle(req, 42);
  };
  const Response first = run_once();
  const Response second = run_once();

  EXPECT_EQ(first.attempts, 3);
  ASSERT_EQ(first.backoff_ns.size(), 2u);  // pauses between 3 attempts
  EXPECT_EQ(first.backoff_ns, second.backoff_ns);
  // The schedule is exactly the pure backoff function of (policy, key, n).
  const std::uint64_t key = request_key(req.id, 42);
  EXPECT_EQ(first.backoff_ns[0], backoff_ns(cfg.retry, key, 1));
  EXPECT_EQ(first.backoff_ns[1], backoff_ns(cfg.retry, key, 2));
  // Degraded but answered, with the failed attempts in the diag chain.
  EXPECT_TRUE(first.ok());
  EXPECT_TRUE(first.degraded);
  EXPECT_FALSE(first.diag.chain.empty());
}

// --- admission control -------------------------------------------------------

TEST(Admission, ShedsBeyondQueueCapacityDeterministically) {
  ServerConfig cfg = quiet_config();
  cfg.queue_capacity = 4;
  Server server(cfg);
  std::vector<Request> batch;
  for (int i = 0; i < 10; ++i)
    batch.push_back(wire_request("r" + std::to_string(i)));
  const std::vector<Response> responses = server.submit_batch(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].id, batch[i].id);
    if (i < 4) {
      EXPECT_TRUE(responses[i].ok()) << i;
    } else {
      EXPECT_EQ(responses[i].status, core::StatusCode::kRejectedOverload)
          << i;
      EXPECT_FALSE(responses[i].error.empty());
      EXPECT_FALSE(responses[i].diag.chain.empty());
    }
  }
  const ServerMetrics m = server.metrics();
  EXPECT_EQ(m.received, 10u);
  EXPECT_EQ(m.admitted, 4u);
  EXPECT_EQ(m.shed, 6u);
  EXPECT_EQ(m.ok_full, 4u);
}

TEST(Admission, ChaosBatchAlwaysGetsTerminalStructuredResponses) {
  ThreadCountGuard guard;
  parallel::set_thread_count(8);
  ServerConfig cfg = quiet_config();
  cfg.queue_capacity = 8;  // saturated: 1000 requests against 8 slots
  cfg.retry.max_attempts = 2;
  Server server(cfg);

  std::vector<Request> batch;
  batch.reserve(1000);
  for (int i = 0; i < 1000; ++i)
    batch.push_back(wire_request("chaos-" + std::to_string(i),
                                 i % 2 == 0 ? 0.1 : 0.33,
                                 0.4 + 0.01 * (i % 7)));
  std::vector<Response> responses;
  {
    ScopedFault fault(kill_solver());
    responses = server.submit_batch(batch);
  }
  ASSERT_EQ(responses.size(), batch.size());
  std::size_t shed = 0, degraded = 0;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const Response& resp = responses[i];
    EXPECT_EQ(resp.id, batch[i].id);
    // Terminal and structured: kOk (possibly degraded, then with a level
    // and the conservative guarantee) or an explicit classified failure.
    if (resp.ok()) {
      if (resp.degraded) {
        ++degraded;
        EXPECT_NE(resp.degradation_level, DegradationLevel::kFull);
        EXPECT_TRUE(resp.conservative);
      }
    } else {
      EXPECT_FALSE(resp.error.empty()) << i;
      if (resp.status == core::StatusCode::kRejectedOverload) ++shed;
    }
  }
  EXPECT_EQ(shed, 992u);      // everything beyond the 8 queue slots
  EXPECT_EQ(degraded, 8u);    // every admitted request degraded gracefully
}

TEST(Admission, BatchBitwiseIdenticalAcrossThreadCountsWhenDisarmed) {
  ThreadCountGuard guard;
  std::vector<Request> batch;
  for (int i = 0; i < 48; ++i) {
    if (i % 11 == 7) {
      // A malformed request rides along: its structured kInvalidInput
      // response must be deterministic too.
      Request bad = wire_request("bad-" + std::to_string(i));
      bad.duty_cycle = 0.0;
      batch.push_back(bad);
    } else if (i % 5 == 3) {
      Request cell;
      cell.id = "cell-" + std::to_string(i);
      cell.kind = RequestKind::kTableCell;
      cell.technology = "NTRS-250nm-Cu";
      cell.level = 1 + i % 5;
      cell.duty_cycle = i % 2 == 0 ? 0.1 : 1.0;
      batch.push_back(cell);
    } else {
      batch.push_back(wire_request("w-" + std::to_string(i),
                                   i % 3 == 0 ? 0.1 : 0.3,
                                   0.35 + 0.02 * (i % 9)));
    }
  }
  auto payload_at = [&](std::size_t threads) {
    parallel::set_thread_count(threads);
    ServerConfig cfg = quiet_config();
    cfg.queue_capacity = 32;  // some shedding in the payload too
    Server server(cfg);
    std::string payload;
    for (const Response& resp : server.submit_batch(batch))
      payload += response_to_json(resp).dump(2) + "\n";
    return payload;
  };
  const std::string serial = payload_at(1);
  const std::string wide = payload_at(8);
  EXPECT_EQ(serial, wide);
  EXPECT_NE(serial.find("rejected-overload"), std::string::npos);
  EXPECT_NE(serial.find("invalid-input"), std::string::npos);
}

// --- degradation ladder ------------------------------------------------------

TEST(Degrade, InterpolationRungIsConservative) {
  ServerConfig cfg = quiet_config();
  cfg.retry.max_attempts = 1;
  Server server(cfg);

  // Warm the cache with the full solution at r' = 0.25 of this geometry.
  ASSERT_TRUE(server.warm(wire_request("warm", 0.25)));

  // Ground truth at the requested r = 0.1 (solver healthy).
  const Response truth = server.handle(wire_request("truth", 0.1), 0);
  ASSERT_TRUE(truth.ok());
  ASSERT_FALSE(truth.degraded);

  // Same geometry, solver down: rung 1 must serve the cached r' >= r point.
  Response degraded;
  {
    ScopedFault fault(kill_solver());
    degraded = server.handle(wire_request("degraded", 0.1), 0);
  }
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(degraded.degradation_level, DegradationLevel::kInterpolated);
  EXPECT_TRUE(degraded.conservative);
  // Conservative direction: never promises more j_rms than the full solve,
  // never reports a cooler wire than the point it served.
  EXPECT_LE(degraded.j_rms_MA_cm2, truth.j_rms_MA_cm2 * (1.0 + 1e-12));
  EXPECT_GT(degraded.j_rms_MA_cm2, 0.0);

  // With no cached point at r' >= r the rung is skipped (a smaller-r point
  // would be optimistic): r = 0.5 > 0.25 falls through to the analytic rung.
  Response analytic;
  {
    ScopedFault fault(kill_solver());
    analytic = server.handle(wire_request("analytic", 0.5), 0);
  }
  ASSERT_TRUE(analytic.ok());
  EXPECT_EQ(analytic.degradation_level, DegradationLevel::kAnalyticBound);
}

TEST(Degrade, AnalyticBoundIsFeasibleAndBelowFullSolve) {
  for (const double duty : {0.05, 0.1, 0.3, 1.0}) {
    const Request req = wire_request("bound", duty);
    const LadderProblem ladder = build_problem(req);

    const AnalyticBound bound = analytic_quasi1d_bound(ladder.quasi1d);
    ASSERT_GT(bound.j_rms.value(), 0.0) << "r = " << duty;

    // Feasibility at the reported temperature: thermally below the trial
    // temperature, EM-compliant at it (Black's rule tightens as T rises, so
    // checking at the pessimistic trial temperature is the strong form).
    EXPECT_LE(bound.j_rms.value(),
              selfconsistent::jrms_thermal_at(ladder.quasi1d, bound.t_metal)
                      .value() *
                  (1.0 + 1e-12));
    EXPECT_LE(bound.j_avg.value(),
              selfconsistent::javg_em_at(ladder.quasi1d, bound.t_metal)
                      .value() *
                  (1.0 + 1e-12));

    // Conservative against the full quasi-2D self-consistent answer.
    const selfconsistent::Solution full =
        selfconsistent::solve(ladder.full);
    EXPECT_LE(bound.j_rms.value(), full.j_rms.value()) << "r = " << duty;
    // And against the quasi-1D self-consistent answer too (grid max of a
    // min is a lower bound on the true crossing).
    const selfconsistent::Solution q1d =
        selfconsistent::solve(ladder.quasi1d);
    EXPECT_LE(bound.j_rms.value(), q1d.j_rms.value()) << "r = " << duty;
    // The bound is useful, not vacuous: within a factor ~2 of the quasi-1D
    // truth on these geometries (grid resolution + min() slack).
    EXPECT_GT(bound.j_rms.value(), 0.4 * q1d.j_rms.value()) << duty;
  }
}

TEST(Degrade, ReferenceCacheServesSmallestDutyAtOrAbove) {
  ReferenceCache cache;
  selfconsistent::Solution sol;
  sol.t_metal = units::Kelvin{380.0};
  sol.j_rms = units::CurrentDensity{2.0e10};
  cache.insert("fam", 0.5, sol);
  sol.j_rms = units::CurrentDensity{3.0e10};
  cache.insert("fam", 0.2, sol);

  ReferencePoint point;
  ASSERT_TRUE(cache.conservative_at("fam", 0.2, point));
  EXPECT_DOUBLE_EQ(point.duty_cycle, 0.2);  // exact hit
  ASSERT_TRUE(cache.conservative_at("fam", 0.3, point));
  EXPECT_DOUBLE_EQ(point.duty_cycle, 0.5);  // smallest r' >= r
  EXPECT_FALSE(cache.conservative_at("fam", 0.6, point));   // all r' < r
  EXPECT_FALSE(cache.conservative_at("other", 0.2, point));  // no family
  EXPECT_EQ(cache.families(), 1u);
  EXPECT_EQ(cache.size(), 2u);

  // Unconverged or malformed points never enter the store.
  sol.diag.status = core::StatusCode::kMaxIterations;
  cache.insert("fam", 0.9, sol);
  sol.diag.status = core::StatusCode::kOk;
  cache.insert("fam", 0.0, sol);
  cache.insert("fam", 1.5, sol);
  EXPECT_EQ(cache.size(), 2u);
}

// --- request/response codec --------------------------------------------------

TEST(Codec, RequestRoundTripsThroughJson) {
  Request r = wire_request("id-\"quoted\"\n\x01", 0.3, 0.7);
  r.kind = RequestKind::kDutyCyclePoint;
  r.j0_MA_cm2 = 1.8;
  r.t_ref_c = 85.0;
  const Request back =
      request_from_json(report::Json::parse(request_to_json(r).dump(2)));
  EXPECT_EQ(back.id, r.id);
  EXPECT_EQ(back.kind, r.kind);
  EXPECT_DOUBLE_EQ(back.duty_cycle, r.duty_cycle);
  EXPECT_DOUBLE_EQ(back.j0_MA_cm2, r.j0_MA_cm2);
  EXPECT_DOUBLE_EQ(back.t_ref_c, r.t_ref_c);
  EXPECT_DOUBLE_EQ(back.wire.width_um, r.wire.width_um);

  Request cell;
  cell.id = "t";
  cell.kind = RequestKind::kTableCell;
  cell.technology = "NTRS-100nm-AlCu";
  cell.level = 6;
  cell.dielectric = "polymer";
  const Request cell_back =
      request_from_json(report::Json::parse(request_to_json(cell).dump(-1)));
  EXPECT_EQ(cell_back.kind, RequestKind::kTableCell);
  EXPECT_EQ(cell_back.technology, cell.technology);
  EXPECT_EQ(cell_back.level, cell.level);
  EXPECT_EQ(cell_back.dielectric, cell.dielectric);
}

TEST(Codec, MalformedRequestsClassifyAsInvalidInput) {
  auto expect_invalid = [](const std::string& text) {
    try {
      parse_batch(text);
      FAIL() << "expected SolveError for: " << text;
    } catch (const SolveError& e) {
      EXPECT_EQ(e.status(), core::StatusCode::kInvalidInput) << text;
    }
  };
  expect_invalid("42");                               // not a batch shape
  expect_invalid("{\"no_requests\": []}");
  expect_invalid("[{\"kind\": \"warp-drive\"}]");     // unknown kind
  expect_invalid("[{\"kind\": [1]}]");                // wrong field type
  expect_invalid("[{\"wire\": 3}]");
  expect_invalid("[{\"kind\": \"table\"}]");          // missing technology
  expect_invalid("[oops]");                           // not JSON at all
  // 'level' outside int range or non-integral must classify, not hit a
  // double->int cast whose out-of-range behavior is undefined.
  expect_invalid(
      "[{\"kind\": \"table\", \"technology\": \"NTRS-250nm-Cu\","
      " \"level\": 1e300}]");
  expect_invalid(
      "[{\"kind\": \"table\", \"technology\": \"NTRS-250nm-Cu\","
      " \"level\": 2.5}]");
  expect_invalid(
      "[{\"kind\": \"table\", \"technology\": \"NTRS-250nm-Cu\","
      " \"level\": -3e9}]");

  // Accepted shapes: bare array and {"requests": [...]}.
  EXPECT_EQ(parse_batch("[]").size(), 0u);
  EXPECT_EQ(parse_batch("{\"requests\": [{}, {}]}").size(), 2u);

  // Malformed *values* surface as structured responses, not exceptions.
  Server server(quiet_config());
  Request bad = wire_request("bad");
  bad.wire.width_um = -1.0;
  const Response resp = server.handle(bad, 0);
  EXPECT_EQ(resp.status, core::StatusCode::kInvalidInput);
  EXPECT_FALSE(resp.error.empty());
  Request unknown_metal = wire_request("m");
  unknown_metal.wire.metal = "unobtainium";
  EXPECT_EQ(server.handle(unknown_metal, 0).status,
            core::StatusCode::kInvalidInput);
  // ... and never move the breaker.
  EXPECT_EQ(server.breaker().state(), BreakerState::kClosed);
  EXPECT_EQ(server.metrics().failed, 2u);
}

TEST(Codec, ResponsePayloadNumbersAreFinite) {
  Server server(quiet_config());
  const Response resp = server.handle(wire_request("fin"), 0);
  ASSERT_TRUE(resp.ok());
  const std::string dumped = response_to_json(resp).dump(-1);
  EXPECT_EQ(dumped.find("nan"), std::string::npos);
  EXPECT_EQ(dumped.find("inf"), std::string::npos);
  // Round-trips through the parser.
  const report::Json back = report::Json::parse(dumped);
  ASSERT_NE(back.find("solution"), nullptr);
  EXPECT_GT(back.find("solution")->find("j_rms_MA_cm2")->as_number(), 0.0);
}

// --- bounded thread-pool queue ----------------------------------------------

TEST(Pool, BoundedQueueDrainsBurstsWithoutGrowth) {
  ThreadCountGuard guard;
  parallel::set_thread_count(4);
  const std::size_t old_mark = parallel::queue_high_water();
  parallel::set_queue_high_water(2);
  EXPECT_EQ(parallel::queue_high_water(), 2u);

  const std::uint64_t drained_before = parallel::tasks_drained();
  std::atomic<int> ran{0};
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i)
    parallel::pool_submit([&ran] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      ran.fetch_add(1);
    });
  // The producer above blocked at the high-water mark instead of queueing
  // all 64; wait for the drain.
  for (int spin = 0; spin < 4000 && ran.load() < kTasks; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_GE(parallel::tasks_drained() - drained_before,
            static_cast<std::uint64_t>(kTasks));
  EXPECT_GE(parallel::queue_peak_depth(), 1u);

  // Clamp: the mark can never be zero (that would wedge every producer).
  parallel::set_queue_high_water(0);
  EXPECT_EQ(parallel::queue_high_water(), 1u);
  parallel::set_queue_high_water(old_mark);
}

}  // namespace
}  // namespace dsmt::service
