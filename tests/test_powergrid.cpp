// Power-grid solver tests.
#include <gtest/gtest.h>

#include <cmath>

#include "numeric/constants.h"
#include "powergrid/grid.h"
#include "tech/ntrs.h"

namespace dsmt::powergrid {
namespace {

GridSpec small_grid() {
  GridSpec spec;
  spec.technology = tech::make_ntrs_250nm_cu();
  spec.nx = 7;
  spec.ny = 7;
  spec.pitch = 100e-6;
  spec.layer_h = 5;
  spec.layer_v = 6;
  spec.vdd = 2.5;
  return spec;
}

std::vector<Pad> corner_pads(const GridSpec& s) {
  return {{0, 0}, {s.nx - 1, 0}, {0, s.ny - 1}, {s.nx - 1, s.ny - 1}};
}

TEST(PowerGrid, NoLoadNoDrop) {
  const auto spec = small_grid();
  const auto sol = solve(spec, corner_pads(spec), {});
  ASSERT_TRUE(sol.converged);
  EXPECT_NEAR(sol.worst_ir_drop, 0.0, 1e-9);
  for (double v : sol.node_voltage) EXPECT_NEAR(v, spec.vdd, 1e-9);
}

TEST(PowerGrid, CenterLoadSagsAtCenter) {
  const auto spec = small_grid();
  const auto sol = solve(spec, corner_pads(spec), {{3, 3, 0.2}});
  ASSERT_TRUE(sol.converged);
  EXPECT_GT(sol.worst_ir_drop, 0.0);
  // The minimum voltage is at the loaded node.
  const double v_center = sol.voltage(3, 3, spec.nx);
  for (double v : sol.node_voltage) EXPECT_GE(v, v_center - 1e-12);
  // Symmetry of the four-corner pad arrangement.
  EXPECT_NEAR(sol.voltage(1, 3, spec.nx), sol.voltage(5, 3, spec.nx), 1e-6);
  EXPECT_NEAR(sol.voltage(3, 1, spec.nx), sol.voltage(3, 5, spec.nx), 1e-6);
}

TEST(PowerGrid, CurrentConservationAtPads) {
  // Total current through segments adjacent to pads equals total demand.
  const auto spec = small_grid();
  const double demand = 0.35;
  const auto sol = solve(spec, {{0, 0}}, {{6, 6, demand}});
  ASSERT_TRUE(sol.converged);
  double pad_current = 0.0;
  for (const auto& s : sol.segments) {
    const bool touches_pad =
        (s.ix == 0 && s.iy == 0) ||
        (s.horizontal ? false : (s.ix == 0 && s.iy == 0));
    if ((s.horizontal && s.ix == 0 && s.iy == 0) ||
        (!s.horizontal && s.ix == 0 && s.iy == 0))
      pad_current += s.current;
    (void)touches_pad;
  }
  EXPECT_NEAR(pad_current, demand, 1e-6 * demand);
}

TEST(PowerGrid, IrDropScalesLinearlyWithLoad) {
  const auto spec = small_grid();
  const auto pads = corner_pads(spec);
  const auto s1 = solve(spec, pads, uniform_demand(spec, 0.5));
  const auto s2 = solve(spec, pads, uniform_demand(spec, 1.0));
  EXPECT_NEAR(s2.worst_ir_drop / s1.worst_ir_drop, 2.0, 1e-6);
  EXPECT_NEAR(s2.max_j_horizontal / s1.max_j_horizontal, 2.0, 1e-6);
}

TEST(PowerGrid, WiderStrapsReduceDropAndDensity) {
  auto spec = small_grid();
  const auto pads = corner_pads(spec);
  const auto demands = uniform_demand(spec, 1.0);
  const auto narrow = solve(spec, pads, demands);
  spec.width_h = 4.0 * spec.technology.layer(spec.layer_h).width;
  spec.width_v = 4.0 * spec.technology.layer(spec.layer_v).width;
  const auto wide = solve(spec, pads, demands);
  EXPECT_LT(wide.worst_ir_drop, narrow.worst_ir_drop);
  EXPECT_LT(wide.max_j_horizontal, narrow.max_j_horizontal);
}

TEST(PowerGrid, MorePadsReduceDrop) {
  const auto spec = small_grid();
  const auto demands = uniform_demand(spec, 1.0);
  const auto four = solve(spec, corner_pads(spec), demands);
  auto pads = corner_pads(spec);
  pads.push_back({3, 0});
  pads.push_back({3, 6});
  pads.push_back({0, 3});
  pads.push_back({6, 3});
  const auto eight = solve(spec, pads, demands);
  EXPECT_LT(eight.worst_ir_drop, four.worst_ir_drop);
}

TEST(PowerGrid, HotterGridDropsMore) {
  auto spec = small_grid();
  const auto pads = corner_pads(spec);
  const auto demands = uniform_demand(spec, 1.0);
  const auto cold = solve(spec, pads, demands);
  spec.temperature = kTrefK + 80.0;
  const auto hot = solve(spec, pads, demands);
  EXPECT_GT(hot.worst_ir_drop, cold.worst_ir_drop);
}

TEST(PowerGrid, SegmentBookkeeping) {
  const auto spec = small_grid();
  const auto sol = solve(spec, corner_pads(spec), uniform_demand(spec, 0.3));
  // nx*(ny-1) vertical + (nx-1)*ny horizontal segments.
  EXPECT_EQ(sol.segments.size(),
            static_cast<std::size_t>(spec.nx * (spec.ny - 1) +
                                     (spec.nx - 1) * spec.ny));
  for (const auto& s : sol.segments) {
    EXPECT_GE(s.current, 0.0);
    EXPECT_GE(s.j_density, 0.0);
  }
  EXPECT_GT(sol.max_j_horizontal, 0.0);
  EXPECT_GT(sol.max_j_vertical, 0.0);
}

TEST(PowerGrid, Validation) {
  auto spec = small_grid();
  EXPECT_THROW(solve(spec, {}, {}), std::invalid_argument);
  EXPECT_THROW(solve(spec, {{99, 0}}, {}), std::invalid_argument);
  EXPECT_THROW(solve(spec, {{0, 0}}, {{99, 99, 1.0}}),
               std::invalid_argument);
  spec.nx = 1;
  EXPECT_THROW(solve(spec, {{0, 0}}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::powergrid
