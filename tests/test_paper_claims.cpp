// Integration suite: the paper's headline claims, asserted end to end.
// Each test corresponds to a row of EXPERIMENTS.md and exercises the same
// code path as the bench harness that regenerates the table/figure.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "esd/failure.h"
#include "numeric/constants.h"
#include "repeater/simulate.h"
#include "selfconsistent/sweep.h"
#include "tech/ntrs.h"
#include "thermal/impedance.h"
#include "thermal/scenarios.h"

namespace dsmt {
namespace {

// --- Fig. 2 ----------------------------------------------------------------

selfconsistent::Problem fig2_problem() {
  selfconsistent::Problem p;
  p.metal = materials::make_copper();
  p.metal.em.activation_energy_ev = 0.7;
  p.j0 = MA_per_cm2(0.6);
  const auto weff =
      thermal::effective_width(um(3.0), um(3.0), thermal::kPhiQuasi1D);
  const auto rth = thermal::rth_per_length_uniform(um(3.0), W_per_mK(1.15), weff);
  p.heating_coefficient =
      selfconsistent::heating_coefficient(um(3.0), um(0.5), rth);
  return p;
}

TEST(PaperClaims, Fig2SelfConsistentDetachesFromEmOnlyLine) {
  auto p = fig2_problem();
  p.duty_cycle = 1e-2;
  const auto sc = selfconsistent::solve(p);
  const double factor = selfconsistent::jpeak_em_only(p) / sc.j_peak;
  // "nearly 2 times smaller" at r = 1e-2.
  EXPECT_GT(factor, 1.3);
  EXPECT_LT(factor, 2.5);
  // Implied lifetime shortfall if designed EM-only: ~factor^2 ("nearly 3x").
  EXPECT_GT(factor * factor, 2.0);
}

TEST(PaperClaims, Fig2TemperatureRunsHotAtLowDuty) {
  auto p = fig2_problem();
  p.duty_cycle = 1e-4;
  EXPECT_GT(selfconsistent::solve(p).t_metal, celsius_to_kelvin(150.0));
  p.duty_cycle = 1.0;
  EXPECT_LT(selfconsistent::solve(p).t_metal, celsius_to_kelvin(102.0));
}

// --- Fig. 3 ----------------------------------------------------------------

TEST(PaperClaims, Fig3J0DiminishingReturns) {
  auto p = fig2_problem();
  const auto fam = selfconsistent::sweep_j0(
      p, {MA_per_cm2(0.6), MA_per_cm2(2.4)}, {1e-4, 1.0});
  const double gain_low_r = fam[1][0].sc.j_peak / fam[0][0].sc.j_peak;
  const double gain_dc = fam[1][1].sc.j_peak / fam[0][1].sc.j_peak;
  EXPECT_LT(gain_low_r, gain_dc);  // j0 less effective at small r
  EXPECT_LT(gain_low_r, 3.3);
  EXPECT_GT(gain_dc, 3.4);         // nearly the full 4x at DC
}

// --- Fig. 5 ----------------------------------------------------------------

TEST(PaperClaims, Fig5HsqPenaltyAndPhi) {
  thermal::MeshOptions coarse;
  coarse.h_min = 0.05e-6;
  coarse.h_max = 0.5e-6;
  thermal::SingleLineSpec spec;  // W = 0.35 um, t_ox = 1.2 um
  const double rth_ox = thermal::solve_rth_per_length(spec, coarse);
  spec.gap_fill = materials::make_hsq();
  const double rth_hsq = thermal::solve_rth_per_length(spec, coarse);
  EXPECT_GT(rth_hsq / rth_ox, 1.10);  // paper: ~20%
  EXPECT_LT(rth_hsq / rth_ox, 1.35);
  const double phi =
      thermal::extract_phi(rth_ox, spec.width, spec.t_ox_below, 1.15);
  EXPECT_GT(phi, 1.5);  // well above Bilotti's 0.88, near the paper's 2.45
  EXPECT_LT(phi, 3.0);
}

// --- Tables 2-4 ------------------------------------------------------------

TEST(PaperClaims, DesignRuleTableOrderings) {
  selfconsistent::TableSpec spec;
  spec.technology = tech::make_ntrs_100nm_cu();
  spec.gap_fills = materials::paper_dielectrics();
  spec.levels = {5, 8};
  spec.duty_cycles = {0.1, 1.0};
  spec.j0 = MA_per_cm2(0.6);
  const auto cells = selfconsistent::generate_design_rule_table(spec);
  auto cell = [&](double r, const std::string& d, int lvl) {
    for (const auto& c : cells)
      if (c.duty_cycle == r && c.dielectric == d && c.level == lvl)
        return c.sol.j_peak.value();
    return -1.0;
  };
  EXPECT_GT(cell(0.1, "Oxide", 5), cell(0.1, "Oxide", 8));       // level
  EXPECT_GT(cell(0.1, "Oxide", 8), cell(0.1, "Polyimide", 8));   // low-k
  EXPECT_GT(cell(0.1, "Oxide", 8), 2.0 * cell(1.0, "Oxide", 8)); // signal>power
  EXPECT_LT(cell(1.0, "Oxide", 8), MA_per_cm2(0.6));             // power < j0
}

// --- Tables 5-6 / Fig. 7 ---------------------------------------------------

TEST(PaperClaims, DelayOptimalRepeatersRespectThermalLimits) {
  core::EngineOptions opts;
  opts.sim.steps_per_period = 1500;
  opts.sim.line_segments = 14;
  for (int node = 0; node < 2; ++node) {
    const auto technology =
        node == 0 ? tech::make_ntrs_250nm_cu() : tech::make_ntrs_100nm_cu();
    const double k_rel = node == 0 ? 4.0 : 2.0;
    core::DesignRuleEngine engine(technology, MA_per_cm2(0.6), opts);
    const auto check =
        engine.check_layer(technology.top_level(), k_rel,
                           materials::make_oxide());
    EXPECT_TRUE(check.pass) << technology.name;
    EXPECT_GT(check.jpeak_margin, 1.5) << technology.name;
    // Fig. 7 invariant: r_eff = 0.12 +/- a small band.
    EXPECT_GT(check.sim.duty_effective, 0.09) << technology.name;
    EXPECT_LT(check.sim.duty_effective, 0.16) << technology.name;
  }
}

// --- Table 7 ---------------------------------------------------------------

TEST(PaperClaims, DenseArrayCutsJpeakByFortyPercent) {
  thermal::ArraySpec spec;
  spec.technology = tech::make_ntrs_250nm_cu();
  spec.max_level = 4;
  spec.lines_per_level = 9;
  thermal::MeshOptions coarse;
  coarse.h_min = 0.06e-6;
  coarse.h_max = 0.6e-6;
  const auto arr = thermal::make_array_section(spec);
  const auto h = thermal::array_heating_coefficients(arr, 4, coarse);

  selfconsistent::Problem p;
  p.metal = spec.technology.metal;
  p.duty_cycle = 0.1;
  p.j0 = MA_per_cm2(1.8);
  p.heating_coefficient = units::HeatingCoefficient{h.h_all_hot};
  const auto all_hot = selfconsistent::solve(p);
  p.heating_coefficient = units::HeatingCoefficient{h.h_isolated};
  const auto isolated = selfconsistent::solve(p);

  const double reduction = 1.0 - all_hot.j_peak / isolated.j_peak;
  EXPECT_GT(reduction, 0.25);  // paper: "nearly 40%"
  EXPECT_LT(reduction, 0.55);
}

// --- Section 6 ---------------------------------------------------------------

TEST(PaperClaims, EsdCriticalDensityNearSixtyMaPerCm2) {
  const double j = esd::critical_jpeak_open(materials::make_alcu(), 100e-9,
                                            kTrefK);
  EXPECT_GT(to_MA_per_cm2(j), 40.0);
  EXPECT_LT(to_MA_per_cm2(j), 80.0);
  // And far above the self-consistent signal-line limits (~5 MA/cm^2):
  EXPECT_GT(to_MA_per_cm2(j), 5.0 * 5.0);
}

}  // namespace
}  // namespace dsmt
