// Build sanity: constants and unit conversions.
#include <gtest/gtest.h>

#include "numeric/constants.h"

namespace dsmt {
namespace {

TEST(Units, CurrentDensityRoundTrip) {
  EXPECT_DOUBLE_EQ(MA_per_cm2(0.6), 6.0e9);
  EXPECT_DOUBLE_EQ(to_MA_per_cm2(MA_per_cm2(4.2)), 4.2);
}

TEST(Units, TemperatureConversion) {
  EXPECT_DOUBLE_EQ(celsius_to_kelvin(100.0), 373.15);
  EXPECT_DOUBLE_EQ(kelvin_to_celsius(kTrefK), 100.0);
}

TEST(Units, LengthAndResistivity) {
  EXPECT_DOUBLE_EQ(um(3.0), 3.0e-6);
  EXPECT_DOUBLE_EQ(to_um(um(0.25)), 0.25);
  EXPECT_DOUBLE_EQ(uohm_cm(1.67), 1.67e-8);
}

}  // namespace
}  // namespace dsmt
