// Electro-thermal fixed-point tests (engine extension beyond the paper).
#include <gtest/gtest.h>

#include "core/engine.h"
#include "numeric/constants.h"
#include "tech/ntrs.h"

namespace dsmt::core {
namespace {

EngineOptions fast() {
  EngineOptions o;
  o.sim.steps_per_period = 1200;
  o.sim.line_segments = 12;
  return o;
}

TEST(Electrothermal, ConvergesAndRunsWarm) {
  DesignRuleEngine eng(tech::make_ntrs_250nm_cu(), MA_per_cm2(0.6), fast());
  const auto res =
      eng.check_layer_electrothermal(6, 4.0, materials::make_oxide());
  EXPECT_TRUE(res.converged);
  EXPECT_GE(res.t_operating, kTrefK);
  EXPECT_LT(res.delta_t, 50.0);  // optimally buffered lines run warm, not hot
  EXPECT_GT(res.iterations, 0);
}

TEST(Electrothermal, HotWireShiftsTheOptimum) {
  DesignRuleEngine eng(tech::make_ntrs_250nm_cu(), MA_per_cm2(0.6), fast());
  const auto res =
      eng.check_layer_electrothermal(6, 4.0, materials::make_oxide());
  // Hotter wire = higher r per metre = shorter optimal segments and, by
  // Eq. 17, smaller repeaters.
  EXPECT_GE(res.at_tref.optimal.l_opt, res.at_operating.optimal.l_opt);
  EXPECT_GE(res.at_tref.optimal.s_opt, res.at_operating.optimal.s_opt);
  // The check still passes at the operating temperature for oxide.
  EXPECT_TRUE(res.at_operating.pass);
}

TEST(Electrothermal, LowKRunsHotterThanOxide) {
  DesignRuleEngine eng(tech::make_ntrs_100nm_cu(), MA_per_cm2(0.6), fast());
  const auto ox =
      eng.check_layer_electrothermal(8, 2.0, materials::make_oxide());
  const auto pi =
      eng.check_layer_electrothermal(8, 2.0, materials::make_polyimide());
  // Same electrical k (2.0 insulator) so same dissipation, but the
  // polyimide gap-fill stack removes the heat less effectively.
  EXPECT_GT(pi.delta_t, ox.delta_t * 0.999);
}

}  // namespace
}  // namespace dsmt::core
