// Coupled-line crosstalk tests.
#include <gtest/gtest.h>

#include "numeric/constants.h"
#include "repeater/crosstalk.h"
#include "tech/ntrs.h"

namespace dsmt::repeater {
namespace {

CrosstalkOptions fast() {
  CrosstalkOptions o;
  o.segments = 12;
  o.steps = 1200;
  return o;
}

TEST(Crosstalk, NoiseIsPositiveAndBounded) {
  const auto tech = tech::make_ntrs_100nm_cu();
  const auto res = simulate_crosstalk(tech, 8, 2.0, um(3000), fast());
  EXPECT_GT(res.peak_noise, 0.0);
  EXPECT_LT(res.noise_fraction, 1.0);
  EXPECT_GT(res.coupling_fraction, 0.1);  // DSM: lateral coupling matters
  EXPECT_LT(res.coupling_fraction, 0.95);
}

TEST(Crosstalk, LongerLinesAreNoisier) {
  const auto tech = tech::make_ntrs_100nm_cu();
  const auto short_line = simulate_crosstalk(tech, 8, 2.0, um(1000), fast());
  const auto long_line = simulate_crosstalk(tech, 8, 2.0, um(6000), fast());
  EXPECT_GT(long_line.noise_fraction, short_line.noise_fraction);
}

TEST(Crosstalk, StrongerVictimHolderQuietsTheLine) {
  const auto tech = tech::make_ntrs_100nm_cu();
  auto opts = fast();
  opts.victim_size = 50.0;
  const auto weak = simulate_crosstalk(tech, 8, 2.0, um(4000), opts);
  opts.victim_size = 800.0;
  const auto strong = simulate_crosstalk(tech, 8, 2.0, um(4000), opts);
  EXPECT_LT(strong.noise_fraction, weak.noise_fraction);
}

TEST(Crosstalk, MaxLengthForNoiseIsConsistent) {
  const auto tech = tech::make_ntrs_100nm_cu();
  const double budget = 0.15;
  const double l_noise =
      max_length_for_noise(tech, 8, 2.0, budget, um(8000), fast());
  EXPECT_GT(l_noise, um(10));
  // At the returned length the budget holds (small tolerance for the
  // bisection granularity).
  const auto at = simulate_crosstalk(tech, 8, 2.0, l_noise, fast());
  EXPECT_LT(at.noise_fraction, budget * 1.1);
}

TEST(Crosstalk, Validation) {
  const auto tech = tech::make_ntrs_100nm_cu();
  EXPECT_THROW(simulate_crosstalk(tech, 8, 2.0, 0.0, fast()),
               std::invalid_argument);
  EXPECT_THROW(max_length_for_noise(tech, 8, 2.0, 0.0, um(1000), fast()),
               std::invalid_argument);
  EXPECT_THROW(max_length_for_noise(tech, 8, 2.0, 1.5, um(1000), fast()),
               std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::repeater
