// Dense LU, tridiagonal, and sparse CG tests.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "numeric/dense.h"
#include "numeric/sparse.h"
#include "numeric/tridiag.h"

namespace dsmt::numeric {
namespace {

TEST(Matrix, IdentityAndMultiply) {
  auto id = Matrix::identity(3);
  std::vector<double> x{1.0, -2.0, 5.0};
  EXPECT_EQ(id.multiply(x), x);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix m(2, 2);
  m(0, 0) = 3.0;
  m(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(DenseLu, Solves2x2Exactly) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  auto x = solve_dense(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseLu, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  auto x = solve_dense(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(DenseLu, ThrowsOnSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW(LuFactorization f(a), std::runtime_error);
}

TEST(DenseLu, DeterminantSignWithPivoting) {
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  LuFactorization f(a);
  EXPECT_NEAR(f.determinant(), -1.0, 1e-12);
}

TEST(DenseLu, RandomSystemResidualSmall) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  const std::size_t n = 40;
  Matrix a(n, n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = dist(rng);
    for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
    a(i, i) += 10.0;
  }
  auto x = solve_dense(a, b);
  auto ax = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-10);
}

TEST(DenseLu, ReusableForMultipleRhs) {
  Matrix a(2, 2);
  a(0, 0) = 4.0;
  a(1, 1) = 2.0;
  LuFactorization f(a);
  EXPECT_NEAR(f.solve({4.0, 2.0})[0], 1.0, 1e-14);
  EXPECT_NEAR(f.solve({8.0, 6.0})[1], 3.0, 1e-14);
}

TEST(Tridiag, MatchesDenseSolve) {
  const std::size_t n = 12;
  std::vector<double> lo(n, -1.0), di(n, 2.5), up(n, -1.0), rhs(n);
  for (std::size_t i = 0; i < n; ++i) rhs[i] = std::sin(0.7 * i);
  auto x = solve_tridiagonal(lo, di, up, rhs);

  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = di[i];
    if (i > 0) a(i, i - 1) = lo[i];
    if (i + 1 < n) a(i, i + 1) = up[i];
  }
  auto xd = solve_dense(a, rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xd[i], 1e-10);
}

TEST(Tridiag, SingleElement) {
  auto x = solve_tridiagonal({0.0}, {4.0}, {0.0}, {8.0});
  EXPECT_DOUBLE_EQ(x[0], 2.0);
}

TEST(Tridiag, SizeMismatchThrows) {
  EXPECT_THROW(solve_tridiagonal({0.0}, {1.0, 2.0}, {0.0}, {1.0}),
               std::invalid_argument);
}

TEST(SparseCsr, MergesDuplicates) {
  SparseBuilder b(2);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.0);
  b.add(1, 1, 1.0);
  CsrMatrix m(b);
  EXPECT_EQ(m.nonzeros(), 2u);
  auto d = m.diagonal();
  EXPECT_DOUBLE_EQ(d[0], 3.0);
}

TEST(SparseCsr, MultiplyMatchesDense) {
  SparseBuilder b(3);
  b.add(0, 0, 2.0);
  b.add(0, 2, -1.0);
  b.add(1, 1, 3.0);
  b.add(2, 0, -1.0);
  b.add(2, 2, 2.0);
  CsrMatrix m(b);
  std::vector<double> x{1.0, 2.0, 3.0}, y;
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 5.0);
}

TEST(SparseCsr, OutOfRangeIndexThrows) {
  SparseBuilder b(2);
  b.add(0, 5, 1.0);
  EXPECT_THROW(CsrMatrix m(b), std::out_of_range);
}

class CgLaplace : public ::testing::TestWithParam<int> {};

TEST_P(CgLaplace, MatchesDenseDirectSolve) {
  const int n = GetParam();  // grid side
  const int nn = n * n;
  SparseBuilder b(nn);
  Matrix dense(nn, nn, 0.0);
  auto idx = [n](int i, int j) { return i * n + j; };
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      auto add = [&](int r, int c, double v) {
        b.add(r, c, v);
        dense(r, c) += v;
      };
      add(idx(i, j), idx(i, j), 4.0);
      if (i > 0) add(idx(i, j), idx(i - 1, j), -1.0);
      if (i + 1 < n) add(idx(i, j), idx(i + 1, j), -1.0);
      if (j > 0) add(idx(i, j), idx(i, j - 1), -1.0);
      if (j + 1 < n) add(idx(i, j), idx(i, j + 1), -1.0);
    }
  CsrMatrix a(b);
  std::vector<double> rhs(nn);
  for (int i = 0; i < nn; ++i) rhs[i] = std::cos(0.3 * i);

  std::vector<double> x(nn, 0.0);
  auto res = conjugate_gradient(a, rhs, x, {1e-12, 5000});
  ASSERT_TRUE(res.converged);

  auto xd = solve_dense(dense, rhs);
  for (int i = 0; i < nn; ++i) EXPECT_NEAR(x[i], xd[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(GridSizes, CgLaplace, ::testing::Values(3, 5, 9, 14));

TEST(Cg, ZeroRhsGivesZero) {
  SparseBuilder b(3);
  for (int i = 0; i < 3; ++i) b.add(i, i, 2.0);
  CsrMatrix a(b);
  std::vector<double> x(3, 5.0);
  auto res = conjugate_gradient(a, std::vector<double>(3, 0.0), x);
  EXPECT_TRUE(res.converged);
  for (double v : x) EXPECT_NEAR(v, 0.0, 1e-9);
}

}  // namespace
}  // namespace dsmt::numeric
