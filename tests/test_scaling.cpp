// Programmatic technology-scaling tests.
#include <gtest/gtest.h>

#include <cmath>

#include "numeric/constants.h"
#include "selfconsistent/sweep.h"
#include "tech/ntrs.h"
#include "tech/scaling.h"
#include "thermal/impedance.h"

namespace dsmt::tech {
namespace {

TEST(Scaling, GeometryAndDeviceLaws) {
  const auto base = make_ntrs_250nm_cu();
  const auto half = scale_technology(base, 0.5, "half-node");
  EXPECT_EQ(half.name, "half-node");
  EXPECT_DOUBLE_EQ(half.feature_size, 0.5 * base.feature_size);
  for (std::size_t i = 0; i < base.layers.size(); ++i) {
    EXPECT_DOUBLE_EQ(half.layers[i].width, 0.5 * base.layers[i].width);
    EXPECT_DOUBLE_EQ(half.layers[i].thickness,
                     0.5 * base.layers[i].thickness);
    EXPECT_DOUBLE_EQ(half.layers[i].ild_below,
                     0.5 * base.layers[i].ild_below);
  }
  EXPECT_NEAR(half.device.vdd, base.device.vdd / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(half.device.idsat_n, base.device.idsat_n / std::sqrt(2.0),
              1e-12);
  EXPECT_DOUBLE_EQ(half.device.cg, 0.5 * base.device.cg);
  EXPECT_DOUBLE_EQ(half.device.r0, base.device.r0);  // invariant
  EXPECT_DOUBLE_EQ(half.device.clock_period, 0.5 * base.device.clock_period);
  EXPECT_THROW(scale_technology(base, 0.0, "x"), std::invalid_argument);
}

TEST(Scaling, IdentityFactorIsNoOp) {
  const auto base = make_ntrs_100nm_cu();
  const auto same = scale_technology(base, 1.0, base.name);
  EXPECT_DOUBLE_EQ(same.layers.back().width, base.layers.back().width);
  EXPECT_DOUBLE_EQ(same.device.vdd, base.device.vdd);
}

TEST(Scaling, ShrinkingRaisesSelfHeatingPerJ) {
  // Pure geometric shrink at fixed current density: W_m, t_m, b all scale
  // by s, so dT ~ j^2 rho t W b / (K (W + phi b)) scales by ~s^2 — the
  // *same j* heats the smaller wire less in absolute terms, but the EM-only
  // j0/r cap is unchanged, so the self-consistent j_peak (at fixed j0)
  // should *rise or hold* as we shrink at fixed level count.
  const auto base = make_ntrs_250nm_cu();
  const auto sol_base = selfconsistent::solve(
      selfconsistent::make_level_problem(base, 6, materials::make_oxide(),
                                         2.45, 0.1, MA_per_cm2(1.8)));
  const auto shrunk = scale_technology(base, 0.6, "shrunk");
  const auto sol_shrunk = selfconsistent::solve(
      selfconsistent::make_level_problem(shrunk, 6, materials::make_oxide(),
                                         2.45, 0.1, MA_per_cm2(1.8)));
  EXPECT_GE(sol_shrunk.j_peak, sol_base.j_peak * 0.999);
  // And a continuous sweep is monotone in the factor.
  double prev = 0.0;
  for (double f : {1.0, 0.8, 0.6, 0.4}) {
    const auto t = scale_technology(base, f, "sweep");
    const auto s = selfconsistent::solve(selfconsistent::make_level_problem(
        t, 6, materials::make_oxide(), 2.45, 0.1, MA_per_cm2(1.8)));
    if (prev > 0.0) {
      EXPECT_GE(s.j_peak, prev * 0.999);
    }
    prev = s.j_peak;
  }
}

}  // namespace
}  // namespace dsmt::tech
