// Independent current-source tests (engine stamping + deck card), including
// an ESD-style zap injected into an RC clamp network.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/deck.h"
#include "circuit/transient.h"
#include "circuit/waveform.h"
#include "esd/waveforms.h"

namespace dsmt::circuit {
namespace {

TEST(ISource, DcIntoResistorSetsOhmicVoltage) {
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add_isource(kGround, a, dc(1e-3));  // 1 mA into node a
  nl.add_resistor(a, kGround, 2e3);
  TransientOptions o{.t_stop = 1e-9, .dt = 1e-10};
  const auto res = run_transient(nl, o);
  EXPECT_NEAR(res.voltage(a).back(), 2.0, 1e-6);
}

TEST(ISource, DirectionConvention) {
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add_isource(a, kGround, dc(1e-3));  // pulls current OUT of a
  nl.add_resistor(a, kGround, 2e3);
  TransientOptions o{.t_stop = 1e-9, .dt = 1e-10};
  const auto res = run_transient(nl, o);
  EXPECT_NEAR(res.voltage(a).back(), -2.0, 1e-6);
}

TEST(ISource, ChargesCapacitorLinearly) {
  Netlist nl;
  const NodeId a = nl.node("a");
  // Zero at t = 0 so the DC operating point starts the cap at 0 V.
  nl.add_isource(kGround, a, pwl({0.0, 1e-12, 1.0}, {0.0, 1e-6, 1e-6}));
  nl.add_capacitor(a, kGround, 1e-12);
  TransientOptions o{.t_stop = 1e-9, .dt = 1e-12};
  const auto res = run_transient(nl, o);
  // dV/dt = I/C = 1e6 V/s -> 1 mV at 1 ns.
  EXPECT_NEAR(res.voltage(a).back(), 1e-3, 2e-5);
}

TEST(ISource, HbmZapIntoClampNetwork) {
  // 2 kV HBM into a pad with a 1.5-Ohm clamp: pad peak voltage ~ I_peak * R.
  Netlist nl;
  const NodeId pad = nl.node("pad");
  const auto hbm = esd::hbm(2000.0);
  nl.add_isource(kGround, pad, [hbm](double t) { return hbm(t); });
  nl.add_resistor(pad, kGround, 1.5);   // clamp on-resistance
  nl.add_capacitor(pad, kGround, 1e-12);
  TransientOptions o{.t_stop = 600e-9, .dt = 0.2e-9};
  const auto res = run_transient(nl, o);
  double v_peak = 0.0;
  for (double v : res.voltage(pad)) v_peak = std::max(v_peak, v);
  EXPECT_NEAR(v_peak, (2000.0 / 1500.0) * 1.5, 0.1);
}

TEST(ISource, DeckCardVariants) {
  const std::string text =
      "IZAP 0 pad PULSE(0 1 1n 2n 2n 10n 100n)\n"
      "IDC 0 pad DC 1m\n"
      "R1 pad 0 10\n"
      ".tran 0.1n 30n\n.end\n";
  Deck deck = parse_deck(text);
  ASSERT_EQ(deck.netlist.isources().size(), 2u);
  const auto res = run_transient(deck.netlist, deck.tran);
  const auto v = res.voltage(deck.node("pad"));
  EXPECT_NEAR(v.front(), 0.01, 1e-5);  // DC 1 mA * 10 Ohm
  double peak = 0.0;
  for (double x : v) peak = std::max(peak, x);
  EXPECT_NEAR(peak, 10.0 * (1.0 + 1e-3), 0.1);  // pulse rides on the DC
  EXPECT_THROW(parse_deck("I1 0 a SIN(0 1 1k)\n.end\n"), std::runtime_error);
}

}  // namespace
}  // namespace dsmt::circuit
