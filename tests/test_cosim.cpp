// Electro-thermal co-simulation: verify the paper's j_rms premise — the
// periodic-steady temperature rise from the real waveform must match the
// analytic DC-at-j_rms prediction, with negligible ripple.
#include <gtest/gtest.h>

#include "core/cosim.h"
#include "numeric/constants.h"
#include "repeater/optimizer.h"
#include "tech/ntrs.h"

namespace dsmt::core {
namespace {

TEST(Cosim, RmsPremiseHoldsForRepeaterWaveform) {
  const auto technology = tech::make_ntrs_250nm_cu();
  const int level = technology.top_level();
  const auto opt = repeater::optimize_layer(technology, level, 4.0, kTrefK);
  repeater::SimulationOptions so;
  so.steps_per_period = 2000;
  const auto sim = repeater::simulate_stage(technology, level, 4.0, opt, so);

  CosimOptions co;
  co.thermal_periods = 9000;  // ~3 thermal time constants
  const auto res =
      verify_rms_premise(technology, level, materials::make_oxide(), sim, co);

  // Time-scale separation: the thermal tau must dwarf the clock period.
  EXPECT_GT(res.thermal_tau, 100.0 * res.electrical_period);

  // The settled transient rise matches the analytic j_rms rise within the
  // settling/discretization tolerance.
  EXPECT_GT(res.dt_rms_model, 0.0);
  EXPECT_NEAR(res.agreement, 1.0, 0.12);

  // Ripple is a tiny fraction of the rise (the paper's implicit claim).
  EXPECT_LT(res.ripple, 0.1 * res.dt_transient + 1e-6);
}

TEST(Cosim, RejectsEmptyWaveform) {
  const auto technology = tech::make_ntrs_250nm_cu();
  repeater::StageSimResult empty;
  EXPECT_THROW(verify_rms_premise(technology, 6, materials::make_oxide(),
                                  empty),
               std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::core
