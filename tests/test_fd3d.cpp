// 3-D voxel thermal solver tests.
#include <gtest/gtest.h>

#include "numeric/constants.h"
#include "tech/ntrs.h"
#include "thermal/fd3d.h"
#include "thermal/scenarios.h"

namespace dsmt::thermal {
namespace {

Mesh3DOptions coarse() {
  Mesh3DOptions m;
  m.h_min = 0.08e-6;
  m.h_max = 1.0e-6;
  m.cg_rel_tol = 1e-7;
  return m;
}

TEST(Volume3D, ExtrusionMatches2DCrossSection) {
  // A single line spanning the domain in x is translationally invariant, so
  // the 3-D solve must reproduce the 2-D cross-section R'_th.
  SingleLineSpec s2;
  s2.lateral_margin = 5e-6;
  const double rth2d = solve_rth_per_length(s2);

  const double length = 20e-6;
  const double ly = s2.width + 2.0 * s2.lateral_margin;
  Volume3D vol(length, ly, s2.t_ox_below + s2.thickness + s2.cap_above, 1.15);
  const auto id = vol.add_wire({0.0, length, 0.5 * (ly - s2.width),
                                0.5 * (ly + s2.width), s2.t_ox_below,
                                s2.t_ox_below + s2.thickness},
                               s2.metal.k_thermal);
  Mesh3DOptions mo = coarse();
  mo.h_min = 0.05e-6;
  const auto sol = vol.solve({1.0 * length}, mo);  // P' = 1 W/m
  ASSERT_TRUE(sol.converged);
  EXPECT_NEAR(sol.wire_avg_rise[id], rth2d, 0.08 * rth2d);
}

TEST(Volume3D, WidePlateMatches1D) {
  // A heater covering nearly the whole footprint above a slab: 1-D flow.
  const double l = 10e-6, b = 2e-6;
  Volume3D vol(l, l, b + 1e-6, 1.15);
  const auto id =
      vol.add_wire({0.3e-6, l - 0.3e-6, 0.3e-6, l - 0.3e-6, b, b + 0.5e-6},
                   400.0);
  const auto sol = vol.solve({1e-3}, coarse());
  ASSERT_TRUE(sol.converged);
  const double area = (l - 0.6e-6) * (l - 0.6e-6);
  const double expected = 1e-3 * b / (1.15 * area);
  // Edge fringing (two lateral directions) cools the finite plate below the
  // 1-D estimate, but not dramatically.
  EXPECT_LT(sol.wire_avg_rise[id], expected);
  EXPECT_GT(sol.wire_avg_rise[id], 0.6 * expected);
}

TEST(Volume3D, LinearityAndValidation) {
  Volume3D vol(5e-6, 5e-6, 3e-6, 1.15);
  const auto id = vol.add_wire({1e-6, 4e-6, 2e-6, 3e-6, 2e-6, 2.5e-6}, 400.0);
  const auto s1 = vol.solve({1e-4}, coarse());
  const auto s2 = vol.solve({2e-4}, coarse());
  EXPECT_NEAR(s2.wire_avg_rise[id] / s1.wire_avg_rise[id], 2.0, 1e-5);
  EXPECT_THROW(vol.solve({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(Volume3D(0, 1, 1, 1), std::invalid_argument);
}

TEST(Array3D, AlternatingDirectionsBuild) {
  Array3DSpec spec;
  spec.technology = tech::make_ntrs_250nm_cu();
  spec.max_level = 4;
  spec.lines_per_level = 3;
  const auto arr = make_array_3d(spec);
  EXPECT_EQ(arr.wires.size(), 12u);
  // Odd levels run along x (full lx extent), even along y.
  for (const auto& w : arr.wires) {
    const auto& b = arr.volume.wire(w.id);
    if (w.level % 2 == 1) {
      EXPECT_DOUBLE_EQ(b.x0, 0.0);
      EXPECT_GT(b.y0, 0.0);
    } else {
      EXPECT_DOUBLE_EQ(b.y0, 0.0);
      EXPECT_GT(b.x0, 0.0);
    }
  }
  EXPECT_NO_THROW(arr.center_wire(4));
  EXPECT_THROW(arr.center_wire(9), std::out_of_range);
}

TEST(Array3D, AllHotExceedsIsolated) {
  Array3DSpec spec;
  spec.technology = tech::make_ntrs_250nm_cu();
  spec.max_level = 4;
  spec.lines_per_level = 3;
  const auto arr = make_array_3d(spec);
  Mesh3DOptions mo = coarse();
  mo.h_max = 1.2e-6;
  const auto h = array3d_heating_coefficients(arr, 4, mo);
  EXPECT_GT(h.h_all_hot, h.h_isolated);
  EXPECT_GT(h.h_all_hot / h.h_isolated, 1.5);
  EXPECT_LT(h.h_all_hot / h.h_isolated, 30.0);
}

}  // namespace
}  // namespace dsmt::thermal
