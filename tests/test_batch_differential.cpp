// Differential harness for the batched Eq.-13 solver.
//
// The batch contract is bit-for-bit fidelity: for every lane, solve_batch
// must reproduce what selfconsistent::solve would have produced for the same
// Problem — same doubles (bitwise, not approximately), same iteration
// counts, same StatusCode, same SolverDiag chain event-for-event, and for
// failed lanes the same exception type and what() text. This file enforces
// that over thousands of randomized-but-seeded Problems (counter-based
// splitmix64, reproducible run to run) spanning the four stock metals, duty
// cycles across three decades, j0 across the design space and beyond it
// (no-bracket lanes), bracket-edge cases that push the scalar path through
// expand_bracket retries, invalid inputs, and fault-injected kernels.
//
// Property tests complete the proof: lane permutation invariance, batch-size
// independence (one big batch == many small ones == solve_one), retired-lane
// isolation (a poisoned lane never perturbs a neighbor's bits), and thread
// invariance (same bits at every DSMT_THREADS).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "core/status.h"
#include "materials/metal.h"
#include "numeric/fault_injection.h"
#include "parallel/thread_pool.h"
#include "selfconsistent/batch.h"
#include "selfconsistent/solver.h"

namespace dsmt::selfconsistent {
namespace {

using core::StatusCode;

// ---------------------------------------------------------------------------
// Counter-based splitmix64: draw k for lane i is rng(seed, i * kDraws + k),
// so the problem set is a pure function of the seed — no sequential state,
// no ordering hazards.
std::uint64_t rng(std::uint64_t seed, std::uint64_t counter) {
  std::uint64_t z = seed + (counter + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e9b5ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double u01(std::uint64_t seed, std::uint64_t counter) {
  return static_cast<double>(rng(seed, counter) >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kDraws = 8;  // draw slots reserved per lane

materials::Metal metal_for(std::uint64_t pick) {
  switch (pick % 4) {
    case 0: return materials::make_copper();
    case 1: return materials::make_alcu();
    case 2: return materials::make_aluminum();
    default: return materials::make_tungsten();
  }
}

/// Randomized lane generator. Most lanes are well-posed problems across the
/// paper's design space; tagged minorities cover every failure family the
/// scalar path can produce:
///   - invalid inputs (each of the four validate() messages, incl. NaN)
///   - no-bracket lanes (j0 so large no T <= t_ref + 5000 K satisfies EM)
///   - bracket-edge lanes (j0 so small the residual is already positive at
///     lo, driving brent to kNoBracket and the robust chain through
///     expand_bracket + retry)
Problem random_problem(std::uint64_t seed, std::uint64_t i) {
  const std::uint64_t base = i * kDraws;
  Problem p;
  p.metal = metal_for(rng(seed, base + 0));
  p.duty_cycle = std::pow(10.0, -3.0 * u01(seed, base + 1));
  p.j0 = A_per_m2(std::pow(10.0, 8.0 + 3.0 * u01(seed, base + 2)));
  p.t_ref = units::Kelvin{280.0 + 150.0 * u01(seed, base + 3)};
  p.heating_coefficient =
      units::HeatingCoefficient{std::pow(10.0, -14.0 + 4.0 * u01(seed, base + 4))};

  const std::uint64_t cls = rng(seed, base + 5) % 100;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  if (cls < 2) {
    p.duty_cycle = (cls == 0) ? 0.0 : nan;
  } else if (cls < 4) {
    p.duty_cycle = 1.0 + u01(seed, base + 6);  // > 1
  } else if (cls < 6) {
    p.j0 = A_per_m2((cls == 4) ? -1.0 : nan);
  } else if (cls < 8) {
    p.t_ref = units::Kelvin{(cls == 6) ? 0.0 : nan};
  } else if (cls < 10) {
    p.heating_coefficient =
        units::HeatingCoefficient{(cls == 8) ? -1e-12 : nan};
  } else if (cls < 16) {
    // No bracket: EM demand exceeds thermal supply all the way to +5000 K.
    p.j0 = A_per_m2(1e18 * (1.0 + u01(seed, base + 6)));
  } else if (cls < 24) {
    // Bracket edge: residual(lo) can already be positive, sending the first
    // brent to kNoBracket and the recovery chain through expand_bracket.
    p.j0 = A_per_m2(std::pow(10.0, 4.0 + 1.5 * u01(seed, base + 6)));
    p.duty_cycle = 0.25 + 0.75 * u01(seed, base + 7);
  } else if (cls < 28) {
    p.duty_cycle = 1.0;  // exact boundary
  }
  return p;
}

std::vector<Problem> random_problems(std::uint64_t seed, std::size_t n) {
  std::vector<Problem> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(random_problem(seed, i));
  return out;
}

BatchProblem to_batch(const std::vector<Problem>& ps) {
  BatchProblem bp;
  bp.reserve(ps.size());
  for (const Problem& p : ps) bp.push_back(p);
  return bp;
}

// ---------------------------------------------------------------------------
// Bitwise double comparison: NaN payloads and signed zeros count.
bool same_bits(double a, double b) {
  std::uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

#define EXPECT_SAME_BITS(a, b) \
  EXPECT_PRED2(same_bits, (a), (b)) << "lane " << i

void expect_diag_eq(const core::SolverDiag& got, const core::SolverDiag& want,
                    std::size_t i) {
  EXPECT_EQ(got.kernel, want.kernel) << "lane " << i;
  EXPECT_EQ(got.status, want.status) << "lane " << i;
  EXPECT_EQ(got.iterations, want.iterations) << "lane " << i;
  EXPECT_PRED2(same_bits, got.residual, want.residual) << "lane " << i;
  EXPECT_EQ(got.recovered, want.recovered) << "lane " << i;
  ASSERT_EQ(got.chain.size(), want.chain.size()) << "lane " << i;
  for (std::size_t e = 0; e < got.chain.size(); ++e) {
    EXPECT_EQ(got.chain[e].kernel, want.chain[e].kernel)
        << "lane " << i << " event " << e;
    EXPECT_EQ(got.chain[e].status, want.chain[e].status)
        << "lane " << i << " event " << e;
    EXPECT_EQ(got.chain[e].iterations, want.chain[e].iterations)
        << "lane " << i << " event " << e;
    EXPECT_PRED2(same_bits, got.chain[e].residual, want.chain[e].residual)
        << "lane " << i << " event " << e;
    EXPECT_EQ(got.chain[e].note, want.chain[e].note)
        << "lane " << i << " event " << e;
  }
}

/// What the scalar path did for one Problem: a Solution, or the exception
/// it threw.
struct ScalarOutcome {
  bool threw = false;
  bool invalid = false;  // std::invalid_argument (vs SolveError)
  Solution sol;
  std::string what;
  core::SolverDiag diag;  // SolveError::diag() when threw && !invalid
  StatusCode status = StatusCode::kOk;
};

ScalarOutcome run_scalar(const Problem& p) {
  ScalarOutcome o;
  try {
    o.sol = solve(p);
  } catch (const SolveError& e) {
    o.threw = true;
    o.what = e.what();
    o.diag = e.diag();
    o.status = e.status();
  } catch (const std::invalid_argument& e) {
    o.threw = true;
    o.invalid = true;
    o.what = e.what();
    o.status = StatusCode::kInvalidInput;
  }
  return o;
}

std::vector<ScalarOutcome> run_scalar_all(const std::vector<Problem>& ps) {
  std::vector<ScalarOutcome> out;
  out.reserve(ps.size());
  for (const Problem& p : ps) out.push_back(run_scalar(p));
  return out;
}

/// The differential oracle: lane i of `bs` must be indistinguishable from
/// the scalar outcome — values, status, diag chain, and rethrown exception.
void expect_lane_matches(const BatchSolution& bs, std::size_t i,
                         const ScalarOutcome& o) {
  if (!o.threw) {
    ASSERT_EQ(bs.status[i], StatusCode::kOk) << "lane " << i << ": batch "
        << "failed where scalar solved: " << bs.lane_error(i);
    EXPECT_SAME_BITS(bs.t_metal[i], o.sol.t_metal.value());
    EXPECT_SAME_BITS(bs.delta_t[i], o.sol.delta_t.value());
    EXPECT_SAME_BITS(bs.j_peak[i], o.sol.j_peak.value());
    EXPECT_SAME_BITS(bs.j_rms[i], o.sol.j_rms.value());
    EXPECT_SAME_BITS(bs.j_avg[i], o.sol.j_avg.value());
    EXPECT_EQ(bs.iterations[i], o.sol.iterations) << "lane " << i;
    EXPECT_EQ(bs.invalid[i], 0) << "lane " << i;
    expect_diag_eq(bs.lane_diag(i), o.sol.diag, i);

    const Solution round = bs.lane_solution(i);
    EXPECT_SAME_BITS(round.t_metal.value(), o.sol.t_metal.value());
    EXPECT_TRUE(round.converged) << "lane " << i;
    return;
  }
  ASSERT_NE(bs.status[i], StatusCode::kOk)
      << "lane " << i << ": batch solved where scalar threw: " << o.what;
  EXPECT_EQ(bs.status[i], o.status) << "lane " << i;
  if (o.invalid) {
    EXPECT_EQ(bs.invalid[i], 1) << "lane " << i;
    EXPECT_EQ(bs.lane_error(i), o.what) << "lane " << i;
    try {
      bs.throw_lane(i);
      FAIL() << "lane " << i << ": throw_lane did not throw";
    } catch (const std::invalid_argument& e) {
      EXPECT_EQ(std::string(e.what()), o.what) << "lane " << i;
    }
    return;
  }
  EXPECT_EQ(bs.invalid[i], 0) << "lane " << i;
  expect_diag_eq(bs.lane_diag(i), o.diag, i);
  try {
    bs.throw_lane(i);
    FAIL() << "lane " << i << ": throw_lane did not throw";
  } catch (const SolveError& e) {
    // what() embeds the diag chain rendering, so string equality here also
    // covers residual formatting and event ordering.
    EXPECT_EQ(std::string(e.what()), o.what) << "lane " << i;
    EXPECT_EQ(e.status(), o.status) << "lane " << i;
  }
}

void expect_all_match(const BatchSolution& bs,
                      const std::vector<ScalarOutcome>& scalar) {
  ASSERT_EQ(bs.size(), scalar.size());
  for (std::size_t i = 0; i < scalar.size(); ++i)
    expect_lane_matches(bs, i, scalar[i]);
}

// ---------------------------------------------------------------------------
// The headline differential: >= 2000 randomized lanes, scalar vs batch,
// bit for bit, at serial and parallel thread counts.
TEST(BatchDifferential, RandomizedLanesMatchScalarBitwise) {
  const std::size_t kLanes = 2500;
  const std::vector<Problem> ps = random_problems(0xD5A7C0DEULL, kLanes);
  const std::vector<ScalarOutcome> scalar = run_scalar_all(ps);

  // Sanity: the generator actually produced every outcome family — a
  // differential harness that only ever sees kOk proves much less.
  std::size_t ok = 0, invalid = 0, failed = 0;
  for (const ScalarOutcome& o : scalar) {
    if (!o.threw) ++ok;
    else if (o.invalid) ++invalid;
    else ++failed;
  }
  EXPECT_GE(ok, kLanes / 2);
  EXPECT_GT(invalid, 0u);
  EXPECT_GT(failed, 0u);

  const BatchProblem bp = to_batch(ps);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    parallel::set_thread_count(threads);
    const BatchSolution bs = solve_batch(bp);
    expect_all_match(bs, scalar);
  }
  parallel::set_thread_count(0);
}

// A second seed catches generator-shaped blind spots cheaply.
TEST(BatchDifferential, SecondSeedMatchesScalarBitwise) {
  const std::vector<Problem> ps = random_problems(0x5EED0002ULL, 1000);
  const std::vector<ScalarOutcome> scalar = run_scalar_all(ps);
  const BatchSolution bs = solve_batch(to_batch(ps));
  expect_all_match(bs, scalar);
}

// The recovery chain must actually have been exercised by the generator:
// some lane's diag chain has to contain an expanded-bracket retry.
TEST(BatchDifferential, GeneratorExercisesRecoveryChain) {
  const std::vector<Problem> ps = random_problems(0xD5A7C0DEULL, 2500);
  const BatchSolution bs = solve_batch(to_batch(ps));
  std::size_t retries = 0, no_bracket = 0;
  for (std::size_t i = 0; i < bs.size(); ++i) {
    if (bs.status[i] == StatusCode::kNoBracket) ++no_bracket;
    const core::SolverDiag d = bs.lane_diag(i);
    for (const core::DiagEvent& e : d.chain)
      if (e.note.rfind("retry on expanded bracket", 0) == 0) ++retries;
  }
  EXPECT_GT(retries, 0u) << "no lane went through expand_bracket + retry";
  EXPECT_GT(no_bracket, 0u) << "no lane failed to bracket";
}

// ---------------------------------------------------------------------------
// Fault injection: the hooks are pure per (kernel, iteration), so an armed
// plan must fault the batch lanes exactly as it faults the scalar solves —
// same failures, same recovery chains, same total injection count.
TEST(BatchDifferential, FaultInjectedLanesMatchScalar) {
  using numeric::fault::FaultKind;
  using numeric::fault::FaultPlan;
  using numeric::fault::ScopedFault;

  const std::vector<Problem> ps = random_problems(0xFA017ULL, 300);
  const BatchProblem bp = to_batch(ps);

  const FaultPlan plans[] = {
      {FaultKind::kNanResidual, "numeric/brent", 3, 10.0},
      {FaultKind::kExhaustIterations, "numeric/brent", 5, 10.0},
      {FaultKind::kPerturbResidual, "numeric/brent", 2, -5.0},
      {FaultKind::kNanResidual, "numeric/bisect", 10, 10.0},
      {FaultKind::kExhaustIterations, "", 1, 10.0},
  };
  for (const FaultPlan& plan : plans) {
    std::vector<ScalarOutcome> scalar;
    int scalar_count = 0;
    {
      ScopedFault sf(plan);
      scalar = run_scalar_all(ps);
      scalar_count = numeric::fault::injection_count();
    }
    BatchSolution bs;
    int batch_count = 0;
    {
      ScopedFault sf(plan);
      bs = solve_batch(bp);
      batch_count = numeric::fault::injection_count();
    }
    expect_all_match(bs, scalar);
    EXPECT_EQ(batch_count, scalar_count)
        << "fault plan on '" << plan.kernel_substr
        << "' fired a different number of times under batching";
  }
}

// ---------------------------------------------------------------------------
// Property: permuting the lanes permutes the results and changes nothing
// else — no lane's bits depend on its position in the batch.
TEST(BatchProperty, LanePermutationInvariance) {
  const std::size_t n = 512;
  const std::vector<Problem> ps = random_problems(0x9E21ULL, n);
  const BatchSolution base = solve_batch(to_batch(ps));

  // Deterministic Fisher-Yates driven by the same counter-based stream.
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  for (std::size_t i = n - 1; i > 0; --i)
    std::swap(perm[i], perm[rng(0x7E12ABULL, i) % (i + 1)]);

  std::vector<Problem> shuffled;
  shuffled.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shuffled.push_back(ps[perm[i]]);
  const BatchSolution got = solve_batch(to_batch(shuffled));

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = perm[i];
    EXPECT_PRED2(same_bits, got.t_metal[i], base.t_metal[j]) << i;
    EXPECT_PRED2(same_bits, got.j_peak[i], base.j_peak[j]) << i;
    EXPECT_EQ(got.status[i], base.status[j]) << i;
    EXPECT_EQ(got.iterations[i], base.iterations[j]) << i;
    EXPECT_EQ(got.lane_error(i), base.lane_error(j)) << i;
    expect_diag_eq(got.lane_diag(i), base.lane_diag(j), i);
  }
}

// Property: batch size is invisible. One batch of n, batches of 64, batches
// of 7, and n solve_one calls all produce the same bits per lane.
TEST(BatchProperty, BatchSizeIndependence) {
  const std::size_t n = 300;
  const std::vector<Problem> ps = random_problems(0xC4B0ULL, n);
  const std::vector<ScalarOutcome> scalar = run_scalar_all(ps);
  const BatchSolution whole = solve_batch(to_batch(ps));
  expect_all_match(whole, scalar);

  for (const std::size_t chunk : {std::size_t{64}, std::size_t{7}}) {
    for (std::size_t start = 0; start < n; start += chunk) {
      const std::size_t end = std::min(n, start + chunk);
      const std::vector<Problem> part(ps.begin() +
                                          static_cast<std::ptrdiff_t>(start),
                                      ps.begin() +
                                          static_cast<std::ptrdiff_t>(end));
      const BatchSolution bs = solve_batch(to_batch(part));
      for (std::size_t i = 0; i < bs.size(); ++i)
        expect_lane_matches(bs, i, scalar[start + i]);
    }
  }

  // solve_one is the 1-lane adapter with scalar throw semantics.
  for (std::size_t i = 0; i < 40; ++i) {
    const ScalarOutcome& o = scalar[i];
    if (o.threw) {
      try {
        (void)solve_one(ps[i]);
        FAIL() << "solve_one lane " << i << " did not throw";
      } catch (const SolveError& e) {
        EXPECT_EQ(std::string(e.what()), o.what) << i;
      } catch (const std::invalid_argument& e) {
        EXPECT_TRUE(o.invalid) << i;
        EXPECT_EQ(std::string(e.what()), o.what) << i;
      }
    } else {
      const Solution s = solve_one(ps[i]);
      EXPECT_PRED2(same_bits, s.t_metal.value(), o.sol.t_metal.value()) << i;
      EXPECT_PRED2(same_bits, s.j_peak.value(), o.sol.j_peak.value()) << i;
      EXPECT_EQ(s.iterations, o.sol.iterations) << i;
    }
  }
}

// Property: retired-lane isolation. Surrounding a healthy lane with lanes
// that fail in every known way must not move a single bit of its result.
TEST(BatchProperty, RetiredLaneIsolation) {
  Problem good = random_problem(0x600DULL, 0);
  good.duty_cycle = 0.1;  // comfortably well-posed
  good.j0 = MA_per_cm2(0.6);
  const Solution alone = solve_one(good);

  Problem invalid = good;
  invalid.duty_cycle = -1.0;
  Problem nan_input = good;
  nan_input.heating_coefficient =
      units::HeatingCoefficient{std::numeric_limits<double>::quiet_NaN()};
  Problem no_bracket = good;
  no_bracket.j0 = A_per_m2(1e18);

  // Poisoned lanes on both sides of every good lane.
  const std::vector<Problem> mixed = {invalid, good, no_bracket,  good,
                                      nan_input, good, invalid,   good,
                                      no_bracket};
  const BatchSolution bs = solve_batch(to_batch(mixed));
  for (const std::size_t i : {1u, 3u, 5u, 7u}) {
    ASSERT_EQ(bs.status[i], StatusCode::kOk) << "lane " << i;
    EXPECT_PRED2(same_bits, bs.t_metal[i], alone.t_metal.value()) << i;
    EXPECT_PRED2(same_bits, bs.delta_t[i], alone.delta_t.value()) << i;
    EXPECT_PRED2(same_bits, bs.j_peak[i], alone.j_peak.value()) << i;
    EXPECT_PRED2(same_bits, bs.j_rms[i], alone.j_rms.value()) << i;
    EXPECT_PRED2(same_bits, bs.j_avg[i], alone.j_avg.value()) << i;
    EXPECT_EQ(bs.iterations[i], alone.iterations) << i;
  }
  EXPECT_EQ(bs.first_failure(), 0u);
  for (const std::size_t i : {0u, 2u, 4u, 6u, 8u})
    EXPECT_NE(bs.status[i], StatusCode::kOk) << "lane " << i;
}

// Property: the static block decomposition makes thread count invisible —
// every lane's bits are identical at DSMT_THREADS = 1, 2, 3, 5, 8.
TEST(BatchProperty, ThreadCountInvariance) {
  const std::vector<Problem> ps = random_problems(0x7EADULL, 700);
  const BatchProblem bp = to_batch(ps);

  parallel::set_thread_count(1);
  const BatchSolution base = solve_batch(bp);
  for (const std::size_t threads : {2u, 3u, 5u, 8u}) {
    parallel::set_thread_count(threads);
    const BatchSolution got = solve_batch(bp);
    ASSERT_EQ(got.size(), base.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_PRED2(same_bits, got.t_metal[i], base.t_metal[i])
          << threads << " threads, lane " << i;
      EXPECT_PRED2(same_bits, got.j_peak[i], base.j_peak[i])
          << threads << " threads, lane " << i;
      EXPECT_EQ(got.status[i], base.status[i])
          << threads << " threads, lane " << i;
      EXPECT_EQ(got.iterations[i], base.iterations[i])
          << threads << " threads, lane " << i;
      EXPECT_EQ(got.lane_error(i), base.lane_error(i))
          << threads << " threads, lane " << i;
      expect_diag_eq(got.lane_diag(i), base.lane_diag(i), i);
    }
  }
  parallel::set_thread_count(0);
}

// The LaneCallback fires exactly once per kOk lane, with that lane's final
// values already stored; failed lanes are never announced.
TEST(BatchProperty, LaneCallbackFiresOncePerOkLane) {
  const std::size_t n = 200;
  const std::vector<Problem> ps = random_problems(0xCA11ULL, n);
  parallel::set_thread_count(1);  // serial: counting without synchronization
  std::vector<int> seen(n, 0);
  const BatchSolution bs =
      solve_batch(to_batch(ps), [&](std::size_t i, const BatchSolution& s) {
        ++seen[i];
        EXPECT_EQ(s.status[i], StatusCode::kOk);
        EXPECT_GT(s.t_metal[i], 0.0);
      });
  parallel::set_thread_count(0);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(seen[i], bs.ok(i) ? 1 : 0) << "lane " << i;
}

// BatchProblem::problem round-trips the physics fields, so a lane can be
// re-solved scalar for error reporting.
TEST(BatchProperty, ProblemRoundTrip) {
  const std::vector<Problem> ps = random_problems(0x2077ULL, 64);
  const BatchProblem bp = to_batch(ps);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const Problem r = bp.problem(i);
    EXPECT_PRED2(same_bits, r.duty_cycle, ps[i].duty_cycle) << i;
    EXPECT_PRED2(same_bits, r.j0.value(), ps[i].j0.value()) << i;
    EXPECT_PRED2(same_bits, r.t_ref.value(), ps[i].t_ref.value()) << i;
    EXPECT_PRED2(same_bits, r.heating_coefficient.value(),
                 ps[i].heating_coefficient.value())
        << i;
    EXPECT_PRED2(same_bits, r.metal.rho_ref.value(),
                 ps[i].metal.rho_ref.value())
        << i;
    EXPECT_PRED2(same_bits, r.metal.tcr, ps[i].metal.tcr) << i;
  }
}

TEST(BatchProperty, EmptyBatchIsEmpty) {
  const BatchSolution bs = solve_batch(BatchProblem{});
  EXPECT_EQ(bs.size(), 0u);
  EXPECT_EQ(bs.first_failure(), BatchSolution::npos);
  bs.throw_first_failure();  // no-op
}

}  // namespace
}  // namespace dsmt::selfconsistent
