// Inductor element tests: companion-model correctness against closed-form
// RL / RLC responses, energy behavior, and deck parsing.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/deck.h"
#include "circuit/transient.h"
#include "circuit/waveform.h"

namespace dsmt::circuit {
namespace {

TEST(Inductor, RlStepResponseMatchesAnalytic) {
  // Series R-L driven by a step: i(t) = (V/R)(1 - e^{-tR/L}); node between
  // R and L sees v_L = V e^{-tR/L}.
  Netlist nl;
  const NodeId in = nl.node("in"), mid = nl.node("mid");
  const double r = 100.0, l = 10e-9;  // tau = 100 ps
  nl.add_vsource(in, kGround,
                 pwl({0.0, 1e-12, 2e-12, 1.0}, {0.0, 0.0, 1.0, 1.0}));
  nl.add_resistor(in, mid, r);
  nl.add_inductor(mid, kGround, l);
  TransientOptions o{.t_stop = 1e-9, .dt = 0.25e-12};
  const auto res = run_transient(nl, o);
  const auto v = res.voltage(mid);
  const auto& t = res.time();
  for (std::size_t i = 40; i < t.size(); i += 400) {
    const double expected = std::exp(-(t[i] - 2e-12) * r / l);
    EXPECT_NEAR(v[i], expected, 0.01);
  }
}

TEST(Inductor, DcOperatingPointIsShort) {
  // DC source through R into L to ground: at t=0+ the inductor carries the
  // full DC current and the node it grounds sits at ~0 V.
  Netlist nl;
  const NodeId in = nl.node("in"), mid = nl.node("mid");
  nl.add_vsource(in, kGround, dc(2.0));
  nl.add_resistor(in, mid, 1e3);
  nl.add_inductor(mid, kGround, 1e-9);
  TransientOptions o{.t_stop = 1e-10, .dt = 1e-12};
  const auto res = run_transient(nl, o);
  EXPECT_NEAR(res.voltage(mid).front(), 0.0, 1e-3);
  EXPECT_NEAR(res.voltage(mid).back(), 0.0, 1e-3);  // stays a DC short
}

TEST(Inductor, LcOscillationFrequencyAndAmplitude) {
  // Pre-charged C released into L: oscillates at w = 1/sqrt(LC) with
  // (nearly) undamped amplitude under the trapezoidal rule.
  Netlist nl;
  const NodeId a = nl.node("a");
  const double l = 1e-9, c = 1e-12;  // f = 5.03 GHz
  // Charge the cap through a source that turns into high-impedance... MNA
  // has no switches; instead drive with one sharp pulse through a resistor
  // and watch the ring-down.
  const NodeId in = nl.node("in");
  nl.add_vsource(in, kGround,
                 pwl({0.0, 10e-12, 11e-12, 1.0}, {1.0, 1.0, 0.0, 0.0}));
  nl.add_resistor(in, a, 50.0);
  nl.add_inductor(a, kGround, l);
  nl.add_capacitor(a, kGround, c);
  TransientOptions o{.t_stop = 3e-9, .dt = 0.5e-12};
  const auto res = run_transient(nl, o);
  const auto v = res.voltage(a);
  const auto& t = res.time();
  // Count zero crossings in the tail to estimate the frequency.
  int crossings = 0;
  double t_first = -1.0, t_last = -1.0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (t[i] < 0.5e-9) continue;
    if ((v[i - 1] < 0.0) != (v[i] < 0.0)) {
      ++crossings;
      if (t_first < 0.0) t_first = t[i];
      t_last = t[i];
    }
  }
  ASSERT_GT(crossings, 8);
  const double period_meas = 2.0 * (t_last - t_first) / (crossings - 1);
  // The 50-Ohm source stays connected: parallel RLC with
  // alpha = 1/(2RC), w_d = sqrt(1/LC - alpha^2).
  const double alpha = 1.0 / (2.0 * 50.0 * c);
  const double wd = std::sqrt(1.0 / (l * c) - alpha * alpha);
  const double period_expected = 2.0 * M_PI / wd;
  EXPECT_NEAR(period_meas, period_expected, 0.03 * period_expected);
}

TEST(Inductor, SeriesRlcStepMatchesAnalyticEnvelope) {
  // Underdamped series RLC: damping alpha = R/2L.
  Netlist nl;
  const NodeId in = nl.node("in"), m1 = nl.node("m1"), out = nl.node("out");
  const double r = 20.0, l = 1e-9, c = 1e-12;
  nl.add_vsource(in, kGround,
                 pwl({0.0, 1e-12, 2e-12, 1.0}, {0.0, 0.0, 1.0, 1.0}));
  nl.add_resistor(in, m1, r);
  nl.add_inductor(m1, out, l);
  nl.add_capacitor(out, kGround, c);
  TransientOptions o{.t_stop = 2e-9, .dt = 0.25e-12};
  const auto res = run_transient(nl, o);
  const auto v = res.voltage(out);
  // Peak overshoot of an underdamped 2nd-order step:
  //   1 + exp(-pi alpha / wd).
  const double alpha = r / (2.0 * l);
  const double w0 = 1.0 / std::sqrt(l * c);
  const double wd = std::sqrt(w0 * w0 - alpha * alpha);
  const double overshoot = 1.0 + std::exp(-M_PI * alpha / wd);
  double peak = 0.0;
  for (double x : v) peak = std::max(peak, x);
  EXPECT_NEAR(peak, overshoot, 0.02 * overshoot);
  EXPECT_NEAR(v.back(), 1.0, 0.02);  // settles to the step
}

TEST(Inductor, DeckCardParses) {
  const std::string text =
      "VIN in 0 DC 1\nR1 in a 50\nL1 a out 2n\nCL out 0 1p\n.tran 1p 1n\n.end\n";
  Deck deck = parse_deck(text);
  ASSERT_EQ(deck.netlist.inductors().size(), 1u);
  EXPECT_DOUBLE_EQ(deck.netlist.inductors()[0].l, 2e-9);
  EXPECT_NO_THROW(run_transient(deck.netlist, deck.tran));
  EXPECT_THROW(parse_deck("L1 a 0 -1n\n.end\n"), std::runtime_error);
}

TEST(Inductor, Validation) {
  Netlist nl;
  EXPECT_THROW(nl.add_inductor(nl.node("a"), kGround, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::circuit
