// Chip-level EM budgeting tests.
#include <gtest/gtest.h>

#include <cmath>

#include "em/budget.h"
#include "numeric/constants.h"

namespace dsmt::em {
namespace {

materials::EmParameters em() { return materials::make_copper().em; }

TEST(Budget, PerLineQuantileSmallNApproximation) {
  // For small q and large N, q_line ~ q / N.
  const double q = per_line_quantile(1e-3, 1000000);
  EXPECT_NEAR(q, 1e-9, 2e-11);
}

TEST(Budget, SingleLineIsIdentity) {
  EXPECT_NEAR(per_line_quantile(1e-3, 1), 1e-3, 1e-15);
  EXPECT_NEAR(median_scale_for_chip(1e-3, 1e-3, 0.5, 1), 1.0, 1e-12);
  EXPECT_NEAR(chip_level_j0(em(), MA_per_cm2(0.6), 0.5, 1), MA_per_cm2(0.6),
              1e-3);
}

TEST(Budget, MoreLinesRequireLongerMedians) {
  double prev = 1.0;
  for (std::size_t n : {10u, 1000u, 100000u, 10000000u}) {
    const double scale = median_scale_for_chip(1e-3, 1e-3, 0.5, n);
    EXPECT_GT(scale, prev);
    prev = scale;
  }
}

TEST(Budget, WiderDistributionCostsMore) {
  const double tight = median_scale_for_chip(1e-3, 1e-3, 0.3, 1000000);
  const double wide = median_scale_for_chip(1e-3, 1e-3, 0.8, 1000000);
  EXPECT_GT(wide, tight);
}

TEST(Budget, DerateFollowsBlackExponent) {
  // n = 2: a 4x median requirement costs 2x in current density.
  EXPECT_NEAR(derate_j0(em(), MA_per_cm2(1.0), 4.0), MA_per_cm2(0.5), 1e-3);
}

TEST(Budget, ChipLevelJ0IsMonotoneInN) {
  double prev = MA_per_cm2(10.0);
  for (std::size_t n : {1u, 100u, 10000u, 1000000u}) {
    const double j = chip_level_j0(em(), MA_per_cm2(0.6), 0.5, n);
    EXPECT_LT(j, prev + 1.0);
    EXPECT_GT(j, 0.0);
    prev = j;
  }
  // A million lines with sigma 0.5 still leaves a usable fraction of j0.
  EXPECT_GT(chip_level_j0(em(), MA_per_cm2(0.6), 0.5, 1000000),
            MA_per_cm2(0.05));
}

TEST(Budget, Validation) {
  EXPECT_THROW(per_line_quantile(0.0, 10), std::invalid_argument);
  EXPECT_THROW(per_line_quantile(1.0, 10), std::invalid_argument);
  EXPECT_THROW(per_line_quantile(0.5, 0), std::invalid_argument);
  EXPECT_THROW(derate_j0(em(), A_per_m2(-1.0), 2.0), std::invalid_argument);
  EXPECT_THROW(derate_j0(em(), A_per_m2(1.0), 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::em
