// 2-D cross-section finite-volume solver tests.
#include <gtest/gtest.h>

#include <cmath>

#include "numeric/constants.h"
#include "thermal/fd2d.h"
#include "thermal/impedance.h"
#include "thermal/scenarios.h"

namespace dsmt::thermal {
namespace {

MeshOptions coarse() {
  MeshOptions m;
  m.h_min = 0.05e-6;
  m.h_max = 0.5e-6;
  return m;
}

TEST(CrossSection2D, WidePlateMatches1DConduction) {
  // A heater spanning (almost) the full domain width above a slab: the heat
  // flow is 1-D, dT = P' * b / (k * W).
  const double w = um(50), b = um(2), t_wire = um(0.5);
  CrossSection2D cs(w, b + t_wire + um(1), 1.15);
  cs.add_wire({um(0.5), w - um(0.5), b, b + t_wire}, 400.0);
  const auto sol = cs.solve({1.0}, coarse());
  ASSERT_TRUE(sol.converged);
  const double expected = 1.0 * b / (1.15 * (w - um(1.0)));
  EXPECT_NEAR(sol.wire_avg_rise[0], expected, 0.08 * expected);
}

TEST(CrossSection2D, LinearityInPower) {
  SingleLineSpec spec;
  auto cs1 = make_single_line_section(spec);
  const auto s1 = cs1.solve({1.0}, coarse());
  const auto s2 = cs1.solve({3.0}, coarse());
  ASSERT_TRUE(s1.converged && s2.converged);
  EXPECT_NEAR(s2.wire_avg_rise[0] / s1.wire_avg_rise[0], 3.0, 1e-6);
}

TEST(CrossSection2D, CouplingMatrixReciprocity) {
  // Two wires side by side: Theta must be symmetric (reciprocity) and the
  // self terms larger than the coupling terms.
  CrossSection2D cs(um(20), um(6), 1.15);
  cs.add_wire({um(8), um(9), um(2), um(2.5)}, 400.0);
  cs.add_wire({um(11), um(12), um(2), um(2.5)}, 400.0);
  const auto theta = cs.coupling_matrix(coarse());
  EXPECT_NEAR(theta(0, 1), theta(1, 0),
              0.05 * std::max(theta(0, 1), theta(1, 0)));
  EXPECT_GT(theta(0, 0), theta(0, 1));
  EXPECT_GT(theta(1, 1), theta(1, 0));
  EXPECT_GT(theta(0, 1), 0.0);  // heating one wire warms the other
}

TEST(CrossSection2D, NarrowLineSpreadingBeatsQuasi1D) {
  // For a narrow line the FD rise is well below the no-spreading (phi = 0)
  // estimate and in the neighborhood of the quasi-2D (phi = 2.45) one.
  SingleLineSpec spec;  // W = 0.35 um over 1.2 um oxide
  const double rth_fd = solve_rth_per_length(spec, coarse());
  const double rth_no_spread = rth_per_length_uniform(
      metres(spec.t_ox_below), W_per_mK(1.15), metres(spec.width));
  const double rth_q2d = rth_per_length_uniform(
      metres(spec.t_ox_below), W_per_mK(1.15),
      effective_width(metres(spec.width), metres(spec.t_ox_below),
                      kPhiQuasi2D));
  EXPECT_LT(rth_fd, 0.5 * rth_no_spread);
  EXPECT_GT(rth_fd, 0.5 * rth_q2d);
  EXPECT_LT(rth_fd, 2.0 * rth_q2d);
}

TEST(CrossSection2D, MeshRefinementConverges) {
  SingleLineSpec spec;
  MeshOptions fine;
  fine.h_min = 0.015e-6;
  fine.h_max = 0.15e-6;
  const double r_coarse = solve_rth_per_length(spec, coarse());
  const double r_fine = solve_rth_per_length(spec, fine);
  EXPECT_NEAR(r_coarse, r_fine, 0.05 * r_fine);
}

TEST(CrossSection2D, InvalidInputsThrow) {
  EXPECT_THROW(CrossSection2D(0.0, 1.0, 1.0), std::invalid_argument);
  CrossSection2D cs(um(10), um(5), 1.15);
  EXPECT_THROW(cs.add_material({0, 0, 0, 0}, 1.0), std::invalid_argument);
  EXPECT_THROW(cs.add_material({0, um(1), 0, um(1)}, 0.0),
               std::invalid_argument);
  cs.add_wire({um(4), um(5), um(2), um(3)}, 400.0);
  EXPECT_THROW(cs.solve({1.0, 2.0}), std::invalid_argument);  // power size
}

TEST(Scenarios, Figure5ThetaDecreasesWithWidth) {
  double prev = 1e30;
  for (double w_um : {0.35, 1.0, 3.1}) {
    SingleLineSpec spec;
    spec.width = um(w_um);
    const double theta = solve_theta_line(spec, um(1000), coarse());
    EXPECT_LT(theta, prev);
    prev = theta;
  }
}

TEST(Scenarios, Figure5HsqGapFillRaisesTheta) {
  SingleLineSpec ox;
  SingleLineSpec hsq;
  hsq.gap_fill = materials::make_hsq();
  const double t_ox = solve_theta_line(ox, um(1000), coarse());
  const double t_hsq = solve_theta_line(hsq, um(1000), coarse());
  // Paper: ~20% higher for the 0.35 um line with HSQ gap-fill.
  EXPECT_GT(t_hsq, 1.05 * t_ox);
  EXPECT_LT(t_hsq, 1.45 * t_ox);
}

TEST(Scenarios, PhiExtractionNearPaperValue) {
  SingleLineSpec spec;  // the paper's extraction geometry (W = 0.35 um)
  const double rth = solve_rth_per_length(spec, coarse());
  const double phi = extract_phi(rth, spec.width, spec.t_ox_below, 1.15);
  // Paper extracted phi = 2.45 from measurements; the FD solve should land
  // in the same regime (well above Bilotti's 0.88).
  EXPECT_GT(phi, 1.5);
  EXPECT_LT(phi, 3.5);
}

TEST(Scenarios, ExtractPhiInverseOfEffectiveWidth) {
  // Exact inverse: build rth from a known phi and recover it.
  const auto w = um(0.5), b = um(2.0);
  const double k = 1.15, phi = 2.45;
  const double rth =
      rth_per_length_uniform(b, W_per_mK(k), effective_width(w, b, phi));
  EXPECT_NEAR(extract_phi(rth, w, b, k), phi, 1e-10);
}

}  // namespace
}  // namespace dsmt::thermal
