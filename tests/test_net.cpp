// Hostile-network suite for the socket front end (src/net): framing,
// protocol-error classification, pipelining, half-close, slow-loris
// eviction, admission control, graceful drain (programmatic and SIGTERM),
// deterministic I/O fault injection, and the 1-vs-8-thread byte-equality
// guarantee on reply streams.
//
// Tests drive a real net::Server over real Unix-domain sockets (the event
// loop runs on a dedicated thread; raw client-side syscalls are fine here —
// lint rule R11 fences them out of src/, not tests/). Every client socket
// carries a receive timeout so a lost reply fails the test instead of
// wedging it.
#include <gtest/gtest.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/server.h"
#include "net/socket_io.h"
#include "net/wire.h"
#include "numeric/fault_injection.h"
#include "parallel/thread_pool.h"
#include "report/json.h"
#include "service/request.h"
#include "supervise/pool.h"

namespace {

using namespace dsmt;

// ---- client-side plumbing (blocking sockets, 10 s receive timeout) ------

class Client {
 public:
  explicit Client(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof addr) == 0;
    timeval timeout{10, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return connected_; }

  bool send_raw(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const long n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                            MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  }

  bool send_frame(const std::string& payload) {
    return send_raw(net::encode_frame(payload));
  }

  /// Reads one complete frame payload; false on EOF/timeout/corruption.
  bool recv_frame(std::string& payload) {
    char header[net::kFrameHeaderBytes];
    if (!recv_all(header, sizeof header)) return false;
    if (std::memcmp(header, net::kFrameMagic, sizeof net::kFrameMagic) != 0)
      return false;
    std::uint32_t len = 0;
    for (std::size_t i = 4; i < net::kFrameHeaderBytes; ++i)
      len = (len << 8) | static_cast<unsigned char>(header[i]);
    payload.resize(len);
    return len == 0 || recv_all(payload.data(), len);
  }

  /// Reads one frame and parses its JSON payload.
  bool recv_json(report::Json& doc) {
    std::string payload;
    if (!recv_frame(payload)) return false;
    doc = report::Json::parse(payload);
    return true;
  }

  /// True when the peer half-closed (recv returns 0).
  bool at_eof() {
    char byte;
    for (;;) {
      const long n = ::recv(fd_, &byte, 1, 0);
      if (n < 0 && errno == EINTR) continue;
      return n == 0;
    }
  }

  void half_close() { ::shutdown(fd_, SHUT_WR); }
  int fd() const { return fd_; }

 private:
  bool recv_all(char* data, std::size_t len) {
    std::size_t got = 0;
    while (got < len) {
      const long n = ::recv(fd_, data + got, len - got, 0);
      if (n > 0) {
        got += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  }

  int fd_ = -1;
  bool connected_ = false;
};

std::string status_of(const report::Json& doc) {
  const report::Json* status = doc.find("status");
  return (status != nullptr && status->is_string()) ? status->as_string()
                                                    : std::string{};
}

std::string id_of(const report::Json& doc) {
  const report::Json* id = doc.find("id");
  return (id != nullptr && id->is_string()) ? id->as_string() : std::string{};
}

std::string request_payload(const std::string& id, double duty = 0.1) {
  service::Request req;
  req.id = id;
  req.duty_cycle = duty;
  return service::request_to_json(req).dump(-1);
}

// ---- server fixture ------------------------------------------------------

class NetServerTest : public ::testing::Test {
 protected:
  static net::NetConfig fast_config() {
    net::NetConfig config;
    config.tick_ms = 5;
    config.idle_timeout_ticks = 400;   // 2 s — far beyond any healthy test
    config.drain_timeout_ticks = 400;
    config.service.sleep_on_backoff = false;
    config.service.publish_signoff = false;
    return config;
  }

  void start(net::NetConfig config = fast_config()) {
    path_ = "/tmp/dsmt_net_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(instance_counter_++) + ".sock";
    config.endpoint.kind = net::Endpoint::Kind::kUnix;
    config.endpoint.path = path_;
    server_ = std::make_unique<net::Server>(std::move(config));
    server_->open();  // bind before run so clients never race the listener
    thread_ = std::thread([this] { stats_ = server_->run(); });
  }

  net::NetStats stop() {
    if (server_) server_->request_drain();
    if (thread_.joinable()) thread_.join();
    server_.reset();
    return stats_;
  }

  void TearDown() override { stop(); }

  const std::string& path() const { return path_; }
  net::Server& server() { return *server_; }

  static int instance_counter_;
  std::string path_;
  std::unique_ptr<net::Server> server_;
  std::thread thread_;
  net::NetStats stats_;
};

int NetServerTest::instance_counter_ = 0;

// ---- wire-format unit tests ---------------------------------------------

TEST(NetWire, RoundTripsFramesFedOneByteAtATime) {
  const std::string payload = "{\"id\":\"x\"}";
  const std::string frame = net::encode_frame(payload);
  ASSERT_EQ(frame.size(), net::kFrameHeaderBytes + payload.size());

  net::FrameDecoder decoder;
  std::string out;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    decoder.append(frame.data() + i, 1);
    EXPECT_EQ(decoder.next(out), net::FrameStatus::kNeedMore);
    EXPECT_TRUE(decoder.mid_frame());
  }
  decoder.append(frame.data() + frame.size() - 1, 1);
  ASSERT_EQ(decoder.next(out), net::FrameStatus::kFrame);
  EXPECT_EQ(out, payload);
  EXPECT_FALSE(decoder.mid_frame());
  EXPECT_EQ(decoder.next(out), net::FrameStatus::kNeedMore);
}

TEST(NetWire, ExtractsPipelinedFramesInOrder) {
  net::FrameDecoder decoder;
  std::string stream;
  for (int i = 0; i < 5; ++i)
    stream += net::encode_frame("payload-" + std::to_string(i));
  decoder.append(stream.data(), stream.size());
  std::string out;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(decoder.next(out), net::FrameStatus::kFrame);
    EXPECT_EQ(out, "payload-" + std::to_string(i));
  }
  EXPECT_EQ(decoder.next(out), net::FrameStatus::kNeedMore);
}

TEST(NetWire, PoisonsOnBadMagicAndStaysPoisoned) {
  net::FrameDecoder decoder;
  const std::string junk = "GET / HTTP/1.1\r\n";
  decoder.append(junk.data(), junk.size());
  std::string out;
  EXPECT_EQ(decoder.next(out), net::FrameStatus::kBadMagic);
  decoder.append(junk.data(), junk.size());
  EXPECT_EQ(decoder.next(out), net::FrameStatus::kBadMagic);
}

TEST(NetWire, RefusesOversizedDeclaredLengthBeforeBuffering) {
  net::FrameDecoder decoder(/*max_frame_bytes=*/64);
  std::string header(net::kFrameMagic, sizeof net::kFrameMagic);
  header += '\x00';
  header += '\x00';
  header += '\x01';
  header += '\x00';  // declares 256 bytes > 64-byte cap
  decoder.append(header.data(), header.size());
  std::string out;
  EXPECT_EQ(decoder.next(out), net::FrameStatus::kOversized);
}

// ---- end-to-end behaviour -----------------------------------------------

TEST_F(NetServerTest, RoundTripsOneSolveRequest) {
  start();
  Client client(path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_frame(request_payload("rt-1")));
  report::Json doc;
  ASSERT_TRUE(client.recv_json(doc));
  EXPECT_EQ(id_of(doc), "rt-1");
  EXPECT_EQ(status_of(doc), "ok");
  const report::Json* solution = doc.find("solution");
  ASSERT_NE(solution, nullptr);
  const report::Json* t_metal = solution->find("t_metal_c");
  ASSERT_NE(t_metal, nullptr);
  EXPECT_GT(t_metal->as_number(), 0.0);
}

TEST_F(NetServerTest, AnswersPipelinedRequestsInRequestOrder) {
  start();
  Client client(path());
  ASSERT_TRUE(client.connected());
  std::string burst;
  for (int i = 0; i < 8; ++i)
    burst += net::encode_frame(
        request_payload("pipe-" + std::to_string(i), 0.05 + 0.03 * i));
  ASSERT_TRUE(client.send_raw(burst));
  for (int i = 0; i < 8; ++i) {
    report::Json doc;
    ASSERT_TRUE(client.recv_json(doc)) << "reply " << i;
    EXPECT_EQ(id_of(doc), "pipe-" + std::to_string(i));
    EXPECT_EQ(status_of(doc), "ok");
  }
}

TEST_F(NetServerTest, ClassifiesTruncatedFrameAsInvalidInput) {
  start();
  Client client(path());
  ASSERT_TRUE(client.connected());
  const std::string frame = net::encode_frame(request_payload("trunc"));
  ASSERT_TRUE(client.send_raw(frame.substr(0, frame.size() / 2)));
  client.half_close();
  report::Json doc;
  ASSERT_TRUE(client.recv_json(doc));
  EXPECT_EQ(status_of(doc), "invalid-input");
  const report::Json* error = doc.find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_NE(error->as_string().find("truncated"), std::string::npos);
  EXPECT_TRUE(client.at_eof());
  const net::NetStats stats = stop();
  EXPECT_EQ(stats.protocol_errors, 1u);
}

TEST_F(NetServerTest, ClassifiesOversizedFrameAsInvalidInput) {
  net::NetConfig config = fast_config();
  config.max_frame_bytes = 128;
  start(std::move(config));
  Client client(path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_frame(std::string(256, 'x')));
  report::Json doc;
  ASSERT_TRUE(client.recv_json(doc));
  EXPECT_EQ(status_of(doc), "invalid-input");
  const report::Json* error = doc.find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_NE(error->as_string().find("oversized"), std::string::npos);
  EXPECT_TRUE(client.at_eof());
  const net::NetStats stats = stop();
  EXPECT_EQ(stats.protocol_errors, 1u);
}

TEST_F(NetServerTest, RejectsGarbageBeforeAnyFrameAndCloses) {
  start();
  Client client(path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_raw("this is not a DSM1 stream at all"));
  report::Json doc;
  ASSERT_TRUE(client.recv_json(doc));
  EXPECT_EQ(status_of(doc), "invalid-input");
  EXPECT_TRUE(client.at_eof());
  const net::NetStats stats = stop();
  EXPECT_EQ(stats.protocol_errors, 1u);
}

TEST_F(NetServerTest, AnswersGarbageJsonInsideAFrameAndKeepsConnection) {
  start();
  Client client(path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_frame("{not json at all"));
  report::Json doc;
  ASSERT_TRUE(client.recv_json(doc));
  EXPECT_EQ(status_of(doc), "invalid-input");
  // Framing stayed intact, so the connection survives and still serves.
  ASSERT_TRUE(client.send_frame(request_payload("after-garbage")));
  ASSERT_TRUE(client.recv_json(doc));
  EXPECT_EQ(id_of(doc), "after-garbage");
  EXPECT_EQ(status_of(doc), "ok");
  const net::NetStats stats = stop();
  EXPECT_EQ(stats.invalid_requests, 1u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST_F(NetServerTest, DeliversReplyAfterClientHalfClosesMidReply) {
  start();
  Client client(path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_frame(request_payload("half-close")));
  client.half_close();  // FIN before the reply exists
  report::Json doc;
  ASSERT_TRUE(client.recv_json(doc));
  EXPECT_EQ(id_of(doc), "half-close");
  EXPECT_EQ(status_of(doc), "ok");
  EXPECT_TRUE(client.at_eof());
}

TEST_F(NetServerTest, EvictsSlowLorisTricklingInsideOneFrame) {
  net::NetConfig config = fast_config();
  config.idle_timeout_ticks = 4;  // 20 ms frame budget at 5 ms ticks
  start(std::move(config));
  Client client(path());
  ASSERT_TRUE(client.connected());
  const std::string frame = net::encode_frame(request_payload("loris"));
  // Trickle single bytes with pauses: activity never stops, but the frame
  // never completes — exactly the attack the frame budget exists for.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(8);
  std::size_t offset = 0;
  report::Json doc;
  bool evicted = false;
  while (std::chrono::steady_clock::now() < deadline &&
         offset + 1 < frame.size()) {
    if (!client.send_raw(frame.substr(offset, 1))) {
      evicted = true;  // server already closed on us mid-send
      break;
    }
    ++offset;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (!evicted) {
    ASSERT_TRUE(client.recv_json(doc));
    EXPECT_EQ(status_of(doc), "deadline-exceeded");
    EXPECT_TRUE(client.at_eof());
  }
  const net::NetStats stats = stop();
  EXPECT_GE(stats.evicted_midframe, 1u);
}

TEST_F(NetServerTest, EvictsFullyIdleConnections) {
  net::NetConfig config = fast_config();
  config.idle_timeout_ticks = 4;
  start(std::move(config));
  Client client(path());
  ASSERT_TRUE(client.connected());
  report::Json doc;
  ASSERT_TRUE(client.recv_json(doc));  // blocks until the eviction notice
  EXPECT_EQ(status_of(doc), "deadline-exceeded");
  EXPECT_TRUE(client.at_eof());
  const net::NetStats stats = stop();
  EXPECT_GE(stats.evicted_idle, 1u);
}

TEST_F(NetServerTest, RejectsConnectionsBeyondAdmissionLimit) {
  net::NetConfig config = fast_config();
  config.max_connections = 1;
  start(std::move(config));
  Client first(path());
  ASSERT_TRUE(first.connected());
  ASSERT_TRUE(first.send_frame(request_payload("keeper")));
  report::Json doc;
  ASSERT_TRUE(first.recv_json(doc));  // slot is provably occupied

  Client second(path());
  ASSERT_TRUE(second.connected());  // accept() succeeds, admission refuses
  ASSERT_TRUE(second.recv_json(doc));
  EXPECT_EQ(status_of(doc), "rejected-overload");
  EXPECT_TRUE(second.at_eof());

  // The admitted connection is unharmed.
  ASSERT_TRUE(first.send_frame(request_payload("keeper-2")));
  ASSERT_TRUE(first.recv_json(doc));
  EXPECT_EQ(status_of(doc), "ok");
  const net::NetStats stats = stop();
  EXPECT_EQ(stats.rejected_connections, 1u);
}

TEST_F(NetServerTest, RejectsRequestsBeyondInflightCapWithWellFormedFrame) {
  net::NetConfig config = fast_config();
  config.max_inflight_per_connection = 0;  // every solve request over cap
  start(std::move(config));
  Client client(path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_frame(request_payload("over-cap")));
  report::Json doc;
  ASSERT_TRUE(client.recv_json(doc));
  EXPECT_EQ(id_of(doc), "over-cap");
  EXPECT_EQ(status_of(doc), "rejected-overload");
  // Ping still answers: the cap rejects solves, not the connection.
  ASSERT_TRUE(client.send_frame("{\"kind\":\"ping\",\"id\":\"p\"}"));
  ASSERT_TRUE(client.recv_json(doc));
  EXPECT_EQ(status_of(doc), "ok");
  const net::NetStats stats = stop();
  EXPECT_EQ(stats.rejected_inflight, 1u);
}

TEST_F(NetServerTest, PingReportsBreakerAndDegradationState) {
  start();
  Client client(path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_frame("{\"kind\":\"ping\",\"id\":\"health-1\"}"));
  report::Json doc;
  ASSERT_TRUE(client.recv_json(doc));
  EXPECT_EQ(id_of(doc), "health-1");
  EXPECT_EQ(status_of(doc), "ok");
  const report::Json* kind = doc.find("kind");
  ASSERT_NE(kind, nullptr);
  EXPECT_EQ(kind->as_string(), "ping");
  const report::Json* draining = doc.find("draining");
  ASSERT_NE(draining, nullptr);
  EXPECT_FALSE(draining->as_bool());
  const report::Json* breaker = doc.find("breaker");
  ASSERT_NE(breaker, nullptr);
  const report::Json* state = breaker->find("state");
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->as_string(), "closed");
  const report::Json* degradation = doc.find("degradation");
  ASSERT_NE(degradation, nullptr);
  const report::Json* interp = degradation->find("interpolation");
  ASSERT_NE(interp, nullptr);
  EXPECT_TRUE(interp->as_bool());
}

TEST_F(NetServerTest, DrainFinishesInflightWorkBeforeClosing) {
  start();
  Client client(path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_frame(request_payload("inflight-drain")));
  // Wait until the request is provably in flight (the service has seen it),
  // then drain: the reply must still arrive before the connection closes.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(8);
  while (server().service().metrics().received == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_GE(server().service().metrics().received, 1u);
  server().request_drain();
  report::Json doc;
  ASSERT_TRUE(client.recv_json(doc));
  EXPECT_EQ(id_of(doc), "inflight-drain");
  EXPECT_EQ(status_of(doc), "ok");
  EXPECT_TRUE(client.at_eof());
  const net::NetStats stats = stop();
  EXPECT_TRUE(stats.drained_clean);
  EXPECT_EQ(stats.replies_sent, 1u);
}

TEST_F(NetServerTest, SigtermDrainsGracefully) {
  start();
  server().install_signal_drain();
  Client client(path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_frame(request_payload("sigterm-drain")));
  report::Json doc;
  ASSERT_TRUE(client.recv_json(doc));  // served before the signal
  EXPECT_EQ(status_of(doc), "ok");
  ::kill(::getpid(), SIGTERM);
  EXPECT_TRUE(client.at_eof());  // drain closes the connection cleanly
  const net::NetStats stats = stop();
  EXPECT_TRUE(stats.drained_clean);
}

// ---- chaos: deterministic I/O faults ------------------------------------

TEST_F(NetServerTest, ServesCorrectlyUnderShortIoEintrAndEagainFaults) {
  start();
  net::testing::SocketFaultPlan plan;
  plan.short_io = true;     // clamp every server-side read/write to 1..7 B
  plan.eintr_period = 3;    // every 3rd data op fails once with EINTR
  plan.eagain_period = 7;   // every 7th read lies EAGAIN
  net::testing::ScopedSocketFault armed(plan);

  Client client(path());
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(client.send_frame(
        request_payload("chaos-" + std::to_string(i), 0.05 + 0.05 * i)));
    report::Json doc;
    ASSERT_TRUE(client.recv_json(doc)) << "request " << i;
    EXPECT_EQ(id_of(doc), "chaos-" + std::to_string(i));
    EXPECT_EQ(status_of(doc), "ok");
  }
  EXPECT_GT(net::testing::op_count(), 0);
}

TEST_F(NetServerTest, SurvivesInjectedMidStreamResets) {
  start();
  {
    net::testing::SocketFaultPlan plan;
    plan.reset_after = 4;  // server-side I/O starts failing ECONNRESET/EPIPE
    net::testing::ScopedSocketFault armed(plan);
    Client victim(path());
    ASSERT_TRUE(victim.connected());
    for (int i = 0; i < 4; ++i)
      victim.send_frame(request_payload("reset-" + std::to_string(i)));
    // Give the event loop a chance to hit the injected reset.
    std::string payload;
    Client second(path());
    ASSERT_TRUE(second.connected());
    second.send_frame(request_payload("reset-second"));
    second.recv_frame(payload);  // outcome irrelevant: faults are armed
  }
  // Faults disarmed: the server must still be fully functional.
  Client after(path());
  ASSERT_TRUE(after.connected());
  ASSERT_TRUE(after.send_frame(request_payload("after-reset")));
  report::Json doc;
  ASSERT_TRUE(after.recv_json(doc));
  EXPECT_EQ(id_of(doc), "after-reset");
  EXPECT_EQ(status_of(doc), "ok");
}

// ---- determinism: the reply stream is a pure function of the request
// stream, at any thread count ---------------------------------------------

class NetDeterminismTest : public NetServerTest {
 protected:
  /// Serves the canonical pipelined burst and returns the connection's
  /// full reply byte stream.
  std::string reply_stream() {
    Client client(path());
    EXPECT_TRUE(client.connected());
    std::string burst;
    for (int i = 0; i < 6; ++i)
      burst += net::encode_frame(
          request_payload("det-" + std::to_string(i), 0.05 + 0.04 * i));
    burst += net::encode_frame("{broken json");       // inline error reply
    burst += net::encode_frame(request_payload("det-final", 0.42));
    EXPECT_TRUE(client.send_raw(burst));
    client.half_close();
    std::string stream;
    std::string payload;
    while (client.recv_frame(payload))
      stream += net::encode_frame(payload);  // re-framed == raw bytes read
    return stream;
  }
};

TEST_F(NetDeterminismTest, ReplyBytesIdenticalAtOneAndEightThreads) {
  const std::size_t restore = parallel::thread_count();

  parallel::set_thread_count(1);
  start();
  const std::string serial = reply_stream();
  stop();

  parallel::set_thread_count(8);
  start();
  const std::string threaded = reply_stream();
  stop();

  parallel::set_thread_count(restore);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, threaded);
}

// ---- process isolation: the supervised worker-pool back end --------------

/// NetServerTest with the frame_handler/health_source hooks wired to a real
/// supervise::WorkerPool — the exact dsmt_serve --isolate topology, with
/// crash chaos armed in the forked children only.
class NetIsolateTest : public NetServerTest {
 protected:
  /// Starts the server over a fresh two-worker fleet; requests whose id
  /// contains "poison" die in the child by SIGABRT.
  void start_isolated() {
    supervise::SuperviseConfig sup;
    sup.workers = 2;
    sup.service.sleep_on_backoff = false;
    sup.service.publish_signoff = false;
    sup.sleep_on_restart_backoff = false;
    sup.publish_signoff = false;
    sup.poll_interval_ms = 5;
    sup.limits.child_fault = {numeric::fault::FaultKind::kCrashAbort,
                              "supervise/worker", 1, 10.0, "poison"};
    // Fork the fleet before the server's pool threads can exist.
    pool_ = std::make_unique<supervise::WorkerPool>(sup);
    ASSERT_GT(pool_->live_workers(), 0u);

    net::NetConfig config = fast_config();
    config.frame_handler = [p = pool_.get()](const service::Request& request,
                                             std::uint64_t seq) {
      return p->execute(request, seq).frame;
    };
    config.health_source = [p = pool_.get()] { return p->supervise_json(); };
    start(std::move(config));
  }

  void TearDown() override {
    stop();
    if (pool_) pool_->shutdown();
  }

  std::unique_ptr<supervise::WorkerPool> pool_;
};

TEST_F(NetIsolateTest, WorkerDeathMidBurstYieldsOneTypedFrameEachInOrder) {
  start_isolated();
  Client client(path());
  ASSERT_TRUE(client.connected());

  // One pipelined burst: the middle request kills its worker child. The
  // connection must receive exactly one terminal frame per request, in
  // request order, and remain usable afterwards.
  std::string burst;
  burst += net::encode_frame(request_payload("iso-clean-0"));
  burst += net::encode_frame(request_payload("iso-poison"));
  burst += net::encode_frame(request_payload("iso-clean-1"));
  ASSERT_TRUE(client.send_raw(burst));

  report::Json doc;
  ASSERT_TRUE(client.recv_json(doc));
  EXPECT_EQ(id_of(doc), "iso-clean-0");
  EXPECT_EQ(status_of(doc), "ok");
  ASSERT_TRUE(client.recv_json(doc));
  EXPECT_EQ(id_of(doc), "iso-poison");
  EXPECT_EQ(status_of(doc), "worker-crashed");
  ASSERT_TRUE(client.recv_json(doc));
  EXPECT_EQ(id_of(doc), "iso-clean-1");
  EXPECT_EQ(status_of(doc), "ok");

  // Same connection, after the crash: still serving.
  ASSERT_TRUE(client.send_frame(request_payload("iso-after")));
  ASSERT_TRUE(client.recv_json(doc));
  EXPECT_EQ(id_of(doc), "iso-after");
  EXPECT_EQ(status_of(doc), "ok");

  const supervise::SuperviseStats stats = pool_->stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.replies, 3u);
}

TEST_F(NetIsolateTest, PingCarriesWorkerFleetHealthAndQuarantineTable) {
  start_isolated();
  Client client(path());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_frame(request_payload("iso-poison-ping")));
  report::Json doc;
  ASSERT_TRUE(client.recv_json(doc));
  EXPECT_EQ(status_of(doc), "worker-crashed");

  ASSERT_TRUE(client.send_frame("{\"kind\":\"ping\",\"id\":\"iso-health\"}"));
  ASSERT_TRUE(client.recv_json(doc));
  EXPECT_EQ(status_of(doc), "ok");
  const report::Json* supervise = doc.find("supervise");
  ASSERT_NE(supervise, nullptr);
  const report::Json* stats = supervise->find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->find("crashes")->as_integer(), 1);
  ASSERT_NE(supervise->find("quarantine"), nullptr);
  EXPECT_EQ(supervise->find("quarantine")->size(), 1u);
}

/// Clean-lane determinism through the process boundary: the reply byte
/// stream of an isolate-mode server is identical at 1 and 8 pool threads —
/// the supervised path must not cost the wire-level guarantee.
TEST_F(NetIsolateTest, CleanReplyBytesIdenticalAtOneAndEightThreads) {
  const std::size_t restore = parallel::thread_count();
  auto reply_stream = [this] {
    Client client(path());
    EXPECT_TRUE(client.connected());
    std::string burst;
    for (int i = 0; i < 6; ++i)
      burst += net::encode_frame(
          request_payload("iso-det-" + std::to_string(i), 0.05 + 0.04 * i));
    EXPECT_TRUE(client.send_raw(burst));
    client.half_close();
    std::string stream;
    std::string payload;
    while (client.recv_frame(payload)) stream += net::encode_frame(payload);
    return stream;
  };

  parallel::set_thread_count(1);
  start_isolated();
  const std::string serial = reply_stream();
  stop();
  pool_->shutdown();

  parallel::set_thread_count(8);
  start_isolated();
  const std::string threaded = reply_stream();
  stop();

  parallel::set_thread_count(restore);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, threaded);
}

}  // namespace
