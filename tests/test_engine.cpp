// Design-rule engine integration tests.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "numeric/constants.h"
#include "tech/ntrs.h"

namespace dsmt::core {
namespace {

EngineOptions fast_options() {
  EngineOptions o;
  o.sim.steps_per_period = 1500;
  o.sim.line_segments = 16;
  return o;
}

TEST(Engine, DesignRuleTableShape) {
  DesignRuleEngine eng(tech::make_ntrs_250nm_cu(), MA_per_cm2(0.6),
                       fast_options());
  const auto cells =
      eng.design_rule_table({5, 6}, materials::paper_dielectrics());
  EXPECT_EQ(cells.size(), 2u * 3u * 2u);  // duty x dielectric x level
  for (const auto& c : cells) {
    EXPECT_TRUE(c.sol.converged);
    EXPECT_GT(c.sol.j_peak, 0.0);
    EXPECT_GE(c.sol.t_metal, kTrefK);
  }
}

TEST(Engine, ThermalLimitMatchesTableCell) {
  DesignRuleEngine eng(tech::make_ntrs_100nm_cu(), MA_per_cm2(1.8),
                       fast_options());
  const auto direct = eng.thermal_limit(8, materials::make_hsq(), 0.1);
  const auto cells = eng.design_rule_table({8}, {materials::make_hsq()});
  bool found = false;
  for (const auto& c : cells)
    if (c.duty_cycle == 0.1) {
      EXPECT_NEAR(c.sol.j_peak, direct.j_peak, 1e-6 * direct.j_peak);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(Engine, PaperHeadlineDelayVsThermal) {
  // The central circuit-level conclusion: optimally buffered global lines
  // on oxide respect the self-consistent thermal limits
  // (j_peak-delay < j_peak-self-consistent).
  DesignRuleEngine eng(tech::make_ntrs_250nm_cu(), MA_per_cm2(0.6),
                       fast_options());
  const auto check = eng.check_layer(6, 4.0, materials::make_oxide());
  EXPECT_TRUE(check.pass);
  EXPECT_GT(check.jpeak_margin, 1.0);
  EXPECT_GT(check.jrms_margin, 1.0);
  // Effective duty cycle near the paper's 0.12.
  EXPECT_GT(check.sim.duty_effective, 0.08);
  EXPECT_LT(check.sim.duty_effective, 0.17);
}

TEST(Engine, LowKShrinksTheMargin) {
  // Paper: "the margin between j_peak-self-consistent and j_peak-delay
  // reduces" with low-k dielectrics (both thermally and electrically).
  DesignRuleEngine eng(tech::make_ntrs_100nm_cu(), MA_per_cm2(0.6),
                       fast_options());
  const auto oxide = eng.check_layer(8, 4.0, materials::make_oxide());
  const auto lowk = eng.check_layer(8, 2.9, materials::make_hsq());
  EXPECT_LT(lowk.thermal_limit.j_peak, oxide.thermal_limit.j_peak);
}

TEST(Engine, CheckLayersCoversAll) {
  DesignRuleEngine eng(tech::make_ntrs_250nm_cu(), MA_per_cm2(0.6),
                       fast_options());
  const auto checks = eng.check_layers({5, 6}, 4.0, materials::make_oxide());
  ASSERT_EQ(checks.size(), 2u);
  EXPECT_EQ(checks[0].level, 5);
  EXPECT_EQ(checks[1].level, 6);
}

TEST(Engine, EsdScreenSeverityGrowsWithVoltage) {
  DesignRuleEngine eng(tech::make_ntrs_250nm_alcu(), MA_per_cm2(0.6),
                       fast_options());
  const auto mild = eng.esd_screen(6, 500.0, materials::make_oxide());
  const auto harsh = eng.esd_screen(1, 8000.0, materials::make_oxide());
  EXPECT_LT(mild.peak_temperature, harsh.peak_temperature);
  EXPECT_EQ(mild.state, esd::FailureState::kSafe);
  EXPECT_NE(harsh.state, esd::FailureState::kSafe);
}

TEST(Engine, RejectsBadJ0) {
  EXPECT_THROW(DesignRuleEngine(tech::make_ntrs_250nm_cu(), 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::core
