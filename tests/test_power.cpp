// Repeater power-model tests.
#include <gtest/gtest.h>

#include "numeric/constants.h"
#include "repeater/optimizer.h"
#include "repeater/power.h"
#include "tech/ntrs.h"

namespace dsmt::repeater {
namespace {

SimulationOptions fast() {
  SimulationOptions o;
  o.steps_per_period = 1500;
  o.line_segments = 12;
  return o;
}

TEST(Power, SupplyPowerIsPositiveAndPlausible) {
  const auto tech = tech::make_ntrs_250nm_cu();
  const auto opt = optimize_layer(tech, 6, 4.0, kTrefK);
  const auto sim = simulate_stage(tech, 6, 4.0, opt, fast());
  EXPECT_GT(sim.supply_power, 0.0);
  // Dynamic estimate: both edges per period switch ~C_total.
  const double e_dyn =
      stage_dynamic_energy(tech.device, sim.size_used, opt.c_per_m,
                           sim.length_used);
  const double p_dyn = e_dyn / tech.device.clock_period;
  // Measured power within a factor ~2 of the dynamic estimate (short
  // circuit adds, partial swing at the far end subtracts).
  EXPECT_GT(sim.supply_power, 0.3 * p_dyn);
  EXPECT_LT(sim.supply_power, 2.5 * p_dyn);
}

TEST(Power, DownsizingSavesPowerCostsDelay) {
  const auto tech = tech::make_ntrs_250nm_cu();
  const auto sweep = power_delay_sweep(tech, 6, 4.0, {0.4, 0.7, 1.0}, fast());
  ASSERT_EQ(sweep.size(), 3u);
  // Power falls monotonically with driver size (shorter matched lines too).
  EXPECT_LT(sweep[0].power, sweep[1].power);
  EXPECT_LT(sweep[1].power, sweep[2].power);
  // Per-unit-length delay is best at the optimum (scale = 1).
  EXPECT_GE(sweep[0].delay_per_mm, sweep[2].delay_per_mm * 0.999);
  // Matched downsizing (s and l together) shrinks the current pulse with
  // the line while the clock period is fixed, so r_eff *falls* here — the
  // paper's "duty rises with downsizing" applies to fixed-length lines
  // (covered by StageSim.DownsizedDriverRaisesEffectiveDuty).
  EXPECT_LE(sweep[0].duty_effective, sweep[2].duty_effective * 1.001);
}

TEST(Power, DynamicEnergyClosedForm) {
  tech::DeviceParameters dev;
  dev.vdd = 2.0;
  dev.cg = 1e-15;
  dev.cp = 1e-15;
  // C = 10 fF wire + 2 fF devices = 12 fF; E = C V^2 = 48 fJ.
  EXPECT_NEAR(stage_dynamic_energy(dev, 1.0, 1e-11, 1e-3), 48e-15, 1e-18);
  EXPECT_THROW(stage_dynamic_energy(dev, 0.0, 1e-11, 1e-3),
               std::invalid_argument);
}

TEST(Power, SweepValidation) {
  const auto tech = tech::make_ntrs_250nm_cu();
  EXPECT_THROW(power_delay_sweep(tech, 6, 4.0, {}, fast()),
               std::invalid_argument);
  EXPECT_THROW(power_delay_sweep(tech, 6, 4.0, {-1.0}, fast()),
               std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::repeater
