// Technology / layer-stack / techfile tests.
#include <gtest/gtest.h>

#include "numeric/constants.h"
#include "tech/ntrs.h"
#include "tech/techfile.h"

namespace dsmt::tech {
namespace {

TEST(LayerStack, StackBelowComposition) {
  std::vector<MetalLayer> layers = {
      {1, um(0.3), um(0.6), um(0.5), um(0.8)},
      {2, um(0.4), um(0.8), um(0.6), um(0.7)},
      {3, um(0.5), um(1.0), um(0.7), um(0.9)},
  };
  const auto ox = materials::make_oxide();
  const auto hsq = materials::make_hsq();

  // Below M3: PMD(0.8 ox) + M1(0.5 gf) + ILD(0.7 ox) + M2(0.6 gf) + ILD(0.9 ox).
  const auto stack = stack_below(layers, 3, ox, hsq);
  ASSERT_EQ(stack.slabs.size(), 5u);
  EXPECT_NEAR(stack.total_thickness(), um(3.5), 1e-12);

  double gap_fill_total = 0.0;
  for (const auto& s : stack.slabs)
    if (s.is_gap_fill) gap_fill_total += s.thickness;
  EXPECT_NEAR(gap_fill_total, um(1.1), 1e-12);

  // Below M1: just the PMD.
  const auto stack1 = stack_below(layers, 1, ox, hsq);
  ASSERT_EQ(stack1.slabs.size(), 1u);
  EXPECT_FALSE(stack1.slabs[0].is_gap_fill);

  EXPECT_THROW(stack_below(layers, 9, ox, hsq), std::out_of_range);
}

TEST(LayerStack, SeriesResistanceAllOxideMatchesUniform) {
  std::vector<MetalLayer> layers = {{1, um(0.3), um(0.6), um(0.5), um(2.0)}};
  const auto ox = materials::make_oxide();
  const auto stack = stack_below(layers, 1, ox, ox);
  EXPECT_NEAR(stack.series_resistance_term(), um(2.0) / 1.15, 1e-15);
  EXPECT_NEAR(stack.effective_conductivity(), 1.15, 1e-12);
}

TEST(LayerStack, LowKGapFillRaisesResistance) {
  std::vector<MetalLayer> layers = {
      {1, um(0.3), um(0.6), um(0.5), um(0.8)},
      {2, um(0.4), um(0.8), um(0.6), um(0.7)},
  };
  const auto ox = materials::make_oxide();
  const auto pi = materials::make_polyimide();
  const double r_ox = stack_below(layers, 2, ox, ox).series_resistance_term();
  const double r_pi = stack_below(layers, 2, ox, pi).series_resistance_term();
  EXPECT_GT(r_pi, r_ox);
  // Total thickness is unchanged by the gap-fill material.
  EXPECT_NEAR(stack_below(layers, 2, ox, pi).total_thickness(),
              stack_below(layers, 2, ox, ox).total_thickness(), 1e-15);
}

class NtrsInvariants : public ::testing::TestWithParam<int> {};

TEST_P(NtrsInvariants, StackIsWellFormed) {
  const Technology t = GetParam() == 0 ? make_ntrs_250nm_cu()
                                       : make_ntrs_100nm_cu();
  EXPECT_FALSE(t.layers.empty());
  int prev = 0;
  for (const auto& l : t.layers) {
    EXPECT_EQ(l.level, prev + 1);  // contiguous ascending levels
    prev = l.level;
    EXPECT_GT(l.width, 0.0);
    EXPECT_GE(l.pitch, 2.0 * l.width * 0.99);  // ~50% density or sparser
    EXPECT_GT(l.thickness, 0.0);
    EXPECT_GT(l.ild_below, 0.0);
    EXPECT_GT(l.aspect_ratio(), 0.5);
    EXPECT_LT(l.aspect_ratio(), 3.0);
  }
  // Upper layers are wider and thicker than lower ones.
  EXPECT_GT(t.layers.back().width, t.layers.front().width);
  EXPECT_GT(t.layers.back().thickness, t.layers.front().thickness);
  // Device sanity.
  EXPECT_GT(t.device.vdd, t.device.vt);
  EXPECT_GT(t.device.r0, 0.0);
  EXPECT_GT(t.device.cg, 0.0);
  EXPECT_GT(t.device.clock_period, 0.0);
}

INSTANTIATE_TEST_SUITE_P(BothNodes, NtrsInvariants, ::testing::Values(0, 1));

TEST(Ntrs, NodeStructure) {
  EXPECT_EQ(make_ntrs_250nm_cu().num_levels(), 6);
  EXPECT_EQ(make_ntrs_100nm_cu().num_levels(), 8);
  EXPECT_EQ(make_ntrs_250nm_cu().metal.name, "Cu");
  EXPECT_EQ(make_ntrs_250nm_alcu().metal.name, "AlCu");
  EXPECT_EQ(make_ntrs_100nm_alcu().num_levels(), 8);
}

TEST(Technology, LayerLookupAndResistance) {
  const Technology t = make_ntrs_250nm_cu();
  EXPECT_EQ(t.layer(6).level, 6);
  EXPECT_THROW(t.layer(7), std::out_of_range);
  EXPECT_EQ(t.top_level(), 6);

  const auto& l6 = t.layer(6);
  const double r = t.wire_resistance_per_m(6, l6.width, kTrefK);
  EXPECT_NEAR(r, t.metal.rho_ref / (l6.width * l6.thickness), 1e-9);
  EXPECT_THROW(t.wire_resistance_per_m(6, 0.0, kTrefK), std::invalid_argument);
}

TEST(Technology, CumulativeStackGrowsWithLevel) {
  const Technology t = make_ntrs_100nm_cu();
  const auto ox = materials::make_oxide();
  double prev = 0.0;
  for (int level = 1; level <= t.num_levels(); ++level) {
    const double b = t.stack_below(level, ox).total_thickness();
    EXPECT_GT(b, prev);
    prev = b;
  }
  // Total dielectric below the top level is multiple microns.
  EXPECT_GT(prev, um(5.0));
  EXPECT_LT(prev, um(20.0));
}

TEST(Techfile, RoundTripPreservesEverything) {
  const Technology t0 = make_ntrs_100nm_cu();
  const Technology t1 = parse_techfile(to_techfile(t0));
  EXPECT_EQ(t1.name, t0.name);
  EXPECT_NEAR(t1.feature_size, t0.feature_size, 1e-18);
  EXPECT_EQ(t1.metal.name, t0.metal.name);
  EXPECT_EQ(t1.ild.name, t0.ild.name);
  ASSERT_EQ(t1.layers.size(), t0.layers.size());
  for (std::size_t i = 0; i < t0.layers.size(); ++i) {
    EXPECT_EQ(t1.layers[i].level, t0.layers[i].level);
    EXPECT_NEAR(t1.layers[i].width, t0.layers[i].width, 1e-15);
    EXPECT_NEAR(t1.layers[i].pitch, t0.layers[i].pitch, 1e-15);
    EXPECT_NEAR(t1.layers[i].thickness, t0.layers[i].thickness, 1e-15);
    EXPECT_NEAR(t1.layers[i].ild_below, t0.layers[i].ild_below, 1e-15);
  }
  EXPECT_NEAR(t1.device.vdd, t0.device.vdd, 1e-12);
  EXPECT_NEAR(t1.device.r0, t0.device.r0, 1e-6);
  EXPECT_NEAR(t1.device.cg, t0.device.cg, 1e-21);
  EXPECT_NEAR(t1.device.vdsat0, t0.device.vdsat0, 1e-12);
  EXPECT_NEAR(t1.device.clock_period, t0.device.clock_period, 1e-18);
}

TEST(Techfile, RejectsMalformedInput) {
  EXPECT_THROW(parse_techfile(""), std::runtime_error);
  EXPECT_THROW(parse_techfile("tech x\nend\n"), std::runtime_error);  // no layers
  EXPECT_THROW(parse_techfile("tech x\nlayer 1 w_um 1 pitch_um 2 t_um 1 ild_um 1\n"),
               std::runtime_error);  // no end
  EXPECT_THROW(
      parse_techfile("tech x\nmetal adamantium\nlayer 1 w_um 1 pitch_um 2 "
                     "t_um 1 ild_um 1\nend\n"),
      std::runtime_error);
  EXPECT_THROW(
      parse_techfile("tech x\nlayer 2 w_um 1 pitch_um 2 t_um 1 ild_um 1\n"
                     "layer 1 w_um 1 pitch_um 2 t_um 1 ild_um 1\nend\n"),
      std::runtime_error);  // descending levels
  EXPECT_THROW(
      parse_techfile("tech x\nlayer 1 w_um 2 pitch_um 1 t_um 1 ild_um 1\nend\n"),
      std::runtime_error);  // pitch < width
}

TEST(Techfile, CommentsAndBlanksIgnored) {
  const std::string text =
      "# header comment\n"
      "tech demo\n"
      "\n"
      "metal cu  # trailing comment\n"
      "layer 1 w_um 1 pitch_um 2 t_um 1 ild_um 1\n"
      "end\n";
  const Technology t = parse_techfile(text);
  EXPECT_EQ(t.name, "demo");
  EXPECT_EQ(t.metal.name, "Cu");
}

TEST(Techfile, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/dsmt_tech_test.tech";
  save_techfile(make_ntrs_250nm_cu(), path);
  const Technology t = load_techfile(path);
  EXPECT_EQ(t.name, "NTRS-250nm-Cu");
  EXPECT_EQ(t.num_levels(), 6);
}

}  // namespace
}  // namespace dsmt::tech
