// Delay-model validation: Elmore bounds from above (for step inputs on RC
// lines Elmore overestimates t50), Sakurai tracks the MNA reference within
// engineering tolerance across regimes.
#include <gtest/gtest.h>

#include "repeater/delay.h"

namespace dsmt::repeater {
namespace {

DelayStage wire_dominated() {
  // Long resistive line, weak driver influence.
  return {10.0, 5e4, 2e-10, 5e-3, 1e-15};
}

DelayStage driver_dominated() {
  // Strong wire, big driver resistance and load.
  return {5e3, 1e3, 1e-10, 1e-3, 50e-15};
}

DelayStage balanced() { return {200.0, 1e4, 1.5e-10, 2e-3, 10e-15}; }

class DelayRegimes : public ::testing::TestWithParam<int> {
 protected:
  DelayStage stage() const {
    switch (GetParam()) {
      case 0: return wire_dominated();
      case 1: return driver_dominated();
      default: return balanced();
    }
  }
};

TEST_P(DelayRegimes, ElmoreUpperBoundsSimulation) {
  const auto s = stage();
  const double sim = delay_simulated(s);
  EXPECT_GT(delay_elmore(s), sim);
}

TEST_P(DelayRegimes, SakuraiWithinTwentyPercentOfSimulation) {
  const auto s = stage();
  const double sim = delay_simulated(s);
  const double model = delay_sakurai(s);
  EXPECT_NEAR(model, sim, 0.20 * sim);
}

INSTANTIATE_TEST_SUITE_P(Regimes, DelayRegimes, ::testing::Values(0, 1, 2));

TEST(DelayModels, DriverDominatedLimitIsLumpedRc) {
  // When the wire is negligible, t50 -> 0.693 Rs (C_line + C_L).
  DelayStage s{1e4, 1.0, 1e-12, 1e-4, 100e-15};
  const double sim = delay_simulated(s);
  const double lumped = 0.693 * s.rs * (s.c_per_m * s.length + s.c_load);
  EXPECT_NEAR(sim, lumped, 0.05 * lumped);
}

TEST(DelayModels, WireDominatedLimitIsDistributedRc) {
  // Ideal driver, no load: t50 -> 0.377 r c l^2.
  DelayStage s{0.0, 1e5, 2e-10, 4e-3, 0.0};
  const double sim = delay_simulated(s, 80);
  const double distributed =
      0.377 * s.r_per_m * s.c_per_m * s.length * s.length;
  EXPECT_NEAR(sim, distributed, 0.08 * distributed);
}

TEST(DelayModels, QuadraticLengthScalingWithoutRepeaters) {
  // The motivation for repeaters: unbuffered delay grows ~ l^2.
  DelayStage s{0.0, 1e5, 2e-10, 2e-3, 0.0};
  const double d1 = delay_simulated(s, 60);
  s.length *= 2.0;
  const double d2 = delay_simulated(s, 60);
  EXPECT_NEAR(d2 / d1, 4.0, 0.3);
}

TEST(DelayModels, Validation) {
  EXPECT_THROW(delay_elmore({0.0, 1.0, 0.0, 1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(delay_sakurai({0.0, 1.0, 1e-10, 0.0, 0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::repeater
