// Regenerates the golden snapshots in tests/golden/ from the scenarios in
// golden_cases.h. Run via tools/update_golden.py, which builds this target
// and rewrites the CSVs in place — never edit the snapshots by hand.
//
// Values are written with %.17g so the decimal text round-trips the exact
// binary double: the regression test's tight tolerance then measures real
// numeric drift, not formatting loss.
#include <cstdio>
#include <stdexcept>
#include <string>

#include "golden_cases.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: dsmt_golden_gen <output-dir>\n");
    return 2;
  }
  const std::string dir = argv[1];
  for (const auto& c : dsmt::golden::all_cases()) {
    const std::string path = dir + "/" + c.file;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "dsmt_golden_gen: cannot write %s\n", path.c_str());
      return 1;
    }
    std::fprintf(f, "key,value\n");
    for (const auto& [key, value] : c.rows())
      std::fprintf(f, "%s,%.17g\n", key.c_str(), value);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
