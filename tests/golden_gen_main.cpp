// Regenerates the golden snapshots in tests/golden/ from the scenarios in
// golden_cases.h. Run via tools/update_golden.py, which builds this target
// and rewrites the CSVs in place — never edit the snapshots by hand.
//
// Values are written with %.17g so the decimal text round-trips the exact
// binary double: the regression test's tight tolerance then measures real
// numeric drift, not formatting loss. Each snapshot is published with an
// atomic temp-file+rename, so an interrupted regeneration can never leave a
// truncated golden file that would poison the next comparison.
#include <cstdio>
#include <stdexcept>
#include <string>

#include "core/atomic_file.h"
#include "golden_cases.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: dsmt_golden_gen <output-dir>\n");
    return 2;
  }
  const std::string dir = argv[1];
  for (const auto& c : dsmt::golden::all_cases()) {
    const std::string path = dir + "/" + c.file;
    std::string content = "key,value\n";
    char line[256];
    for (const auto& [key, value] : c.rows()) {
      std::snprintf(line, sizeof line, "%s,%.17g\n", key.c_str(), value);
      content += line;
    }
    try {
      dsmt::core::atomic_write_file(path, content);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "dsmt_golden_gen: %s\n", e.what());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
