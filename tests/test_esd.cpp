// ESD waveform and failure-model tests (paper Section 6).
#include <gtest/gtest.h>

#include <cmath>

#include "esd/failure.h"
#include "esd/waveforms.h"
#include "numeric/constants.h"

namespace dsmt::esd {
namespace {

TEST(Waveforms, HbmPeakAndScale) {
  const auto i = hbm(2000.0);  // 2 kV HBM
  double peak = 0.0;
  for (int k = 0; k < 4000; ++k) peak = std::max(peak, i(k * 0.2e-9));
  EXPECT_NEAR(peak, 2000.0 / 1500.0, 0.01);  // ~1.33 A
  EXPECT_DOUBLE_EQ(i(0.0), 0.0);
  EXPECT_LT(i(hbm_duration()), 0.05 * peak);  // mostly decayed
}

TEST(Waveforms, MmRingsAndExceedsHbmPeak) {
  const auto i_mm = mm(200.0);
  const auto i_hbm = hbm(200.0);
  double peak_mm = 0.0, peak_hbm = 0.0, min_mm = 0.0;
  for (int k = 0; k < 5000; ++k) {
    const double t = k * 0.1e-9;
    peak_mm = std::max(peak_mm, i_mm(t));
    min_mm = std::min(min_mm, i_mm(t));
    peak_hbm = std::max(peak_hbm, i_hbm(t));
  }
  EXPECT_GT(peak_mm, 3.0 * peak_hbm);  // MM is the harsher model per volt
  EXPECT_LT(min_mm, 0.0);              // rings below zero
}

TEST(Waveforms, TlpRectangle) {
  const auto i = tlp(1.5, 100e-9);
  EXPECT_DOUBLE_EQ(i(50e-9), 1.5);
  EXPECT_DOUBLE_EQ(i(150e-9), 0.0);
  EXPECT_DOUBLE_EQ(i(0.0), 0.0);
}

TEST(Failure, PaperAlCuOpenCircuitDensity) {
  // Paper Section 6 (ref. [8]): critical open-circuit current density for
  // AlCu is ~60 MA/cm^2 on ESD time scales (< 200 ns).
  const auto alcu = materials::make_alcu();
  const double j_100ns = critical_jpeak_open(alcu, 100e-9, kTrefK);
  EXPECT_GT(to_MA_per_cm2(j_100ns), 40.0);
  EXPECT_LT(to_MA_per_cm2(j_100ns), 80.0);
}

TEST(Failure, MeltOnsetBelowOpenCircuit) {
  const auto alcu = materials::make_alcu();
  for (double t_pulse : {50e-9, 100e-9, 200e-9}) {
    EXPECT_LT(critical_jpeak_melt_onset(alcu, t_pulse, kTrefK),
              critical_jpeak_open(alcu, t_pulse, kTrefK));
  }
}

TEST(Failure, CopperToleratesMoreThanAlCu) {
  // Higher melting point, heat capacity and lower resistivity all help.
  const double j_cu =
      critical_jpeak_open(materials::make_copper(), 100e-9, kTrefK);
  const double j_alcu =
      critical_jpeak_open(materials::make_alcu(), 100e-9, kTrefK);
  EXPECT_GT(j_cu, 1.3 * j_alcu);
}

thermal::PulseLineSpec io_line() {
  thermal::PulseLineSpec s;
  s.metal = materials::make_alcu();
  s.w_m = um(3.0);
  s.t_m = um(0.6);
  s.rth_per_len = 0.3;
  s.t_ref = kTrefK;
  return s;
}

TEST(Assess, SeverityOrderingWithHbmLevel) {
  const auto line = io_line();
  const auto mild = assess(line, hbm(500.0));
  const auto harsh = assess(line, hbm(8000.0));
  EXPECT_EQ(mild.state, FailureState::kSafe);
  EXPECT_NE(harsh.state, FailureState::kSafe);
  EXPECT_GT(harsh.peak_temperature, mild.peak_temperature);
  EXPECT_LE(harsh.em_lifetime_derating, mild.em_lifetime_derating);
  EXPECT_DOUBLE_EQ(mild.em_lifetime_derating, 1.0);
}

TEST(Assess, OpenCircuitAtExtremeStress) {
  auto line = io_line();
  line.w_m = um(0.5);  // thin line, huge current
  const auto out = assess(line, hbm(8000.0));
  EXPECT_EQ(out.state, FailureState::kOpenCircuit);
  EXPECT_DOUBLE_EQ(out.em_lifetime_derating, 0.0);
  EXPECT_GE(out.fusion_fraction, 1.0);
}

TEST(Assess, LatentDamageBandExists) {
  // Sweep HBM level: between safe and open there must be latent damage
  // with a derating strictly between 0 and 1.
  const auto line = io_line();
  bool saw_latent = false;
  for (double v = 500.0; v <= 10000.0; v *= 1.15) {
    const auto out = assess(line, hbm(v));
    if (out.state == FailureState::kLatentDamage) {
      saw_latent = true;
      EXPECT_GT(out.em_lifetime_derating, 0.0);
      EXPECT_LT(out.em_lifetime_derating, 1.0);
    }
  }
  EXPECT_TRUE(saw_latent);
}

TEST(Assess, ToStringCoversAllStates) {
  EXPECT_STREQ(to_string(FailureState::kSafe), "safe");
  EXPECT_STREQ(to_string(FailureState::kLatentDamage), "latent-damage");
  EXPECT_STREQ(to_string(FailureState::kOpenCircuit), "open-circuit");
}

TEST(MinWidth, ScalesWithCurrentAndSafety) {
  const auto alcu = materials::make_alcu();
  const double w1 = min_width_for_esd(alcu, 1.33, 150e-9, um(0.6), kTrefK);
  const double w2 = min_width_for_esd(alcu, 2.66, 150e-9, um(0.6), kTrefK);
  EXPECT_NEAR(w2 / w1, 2.0, 1e-9);
  const double w_safe =
      min_width_for_esd(alcu, 1.33, 150e-9, um(0.6), kTrefK, 3.0);
  EXPECT_NEAR(w_safe / w1, 2.0, 1e-9);  // 3.0/1.5 default
  // A 2 kV HBM (1.33 A) needs a line on the order of microns wide.
  EXPECT_GT(w1, um(0.3));
  EXPECT_LT(w1, um(30.0));
}

TEST(MinWidth, Validation) {
  const auto alcu = materials::make_alcu();
  EXPECT_THROW(min_width_for_esd(alcu, 0.0, 1e-7, um(0.6), kTrefK),
               std::invalid_argument);
  EXPECT_THROW(min_width_for_esd(alcu, 1.0, 1e-7, um(0.6), kTrefK, 0.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::esd
