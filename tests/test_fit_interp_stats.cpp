// Polynomial fitting, interpolation, and statistics tests.
#include <gtest/gtest.h>

#include <cmath>

#include "numeric/interp.h"
#include "numeric/polyfit.h"
#include "numeric/stats.h"

namespace dsmt::numeric {
namespace {

TEST(Polyfit, RecoversQuadraticExactly) {
  std::vector<double> x{-2, -1, 0, 1, 2, 3};
  std::vector<double> y;
  for (double v : x) y.push_back(2.0 - 3.0 * v + 0.5 * v * v);
  auto c = polyfit(x, y, 2);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_NEAR(c[0], 2.0, 1e-10);
  EXPECT_NEAR(c[1], -3.0, 1e-10);
  EXPECT_NEAR(c[2], 0.5, 1e-10);
}

TEST(Polyfit, InsufficientPointsThrows) {
  EXPECT_THROW(polyfit({1.0, 2.0}, {1.0, 2.0}, 2), std::invalid_argument);
}

TEST(Polyval, HornerEvaluation) {
  EXPECT_DOUBLE_EQ(polyval({1.0, 0.0, 2.0}, 3.0), 19.0);  // 1 + 2 x^2
}

TEST(LinearFit, PerfectLineHasUnitR2) {
  std::vector<double> x{0, 1, 2, 3, 4};
  std::vector<double> y{1, 3, 5, 7, 9};
  auto f = linear_fit(x, y);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, NoisyDataR2BelowOne) {
  std::vector<double> x{0, 1, 2, 3, 4, 5};
  std::vector<double> y{0.0, 1.2, 1.8, 3.3, 3.9, 5.1};
  auto f = linear_fit(x, y);
  EXPECT_GT(f.r_squared, 0.95);
  EXPECT_LT(f.r_squared, 1.0);
  EXPECT_NEAR(f.slope, 1.0, 0.1);
}

TEST(Interp, ExactAtKnotsLinearBetween) {
  LinearInterpolant li({0.0, 1.0, 3.0}, {0.0, 2.0, 0.0});
  EXPECT_DOUBLE_EQ(li(1.0), 2.0);
  EXPECT_DOUBLE_EQ(li(2.0), 1.0);
  EXPECT_DOUBLE_EQ(li(0.5), 1.0);
}

TEST(Interp, ClampsOutsideDomain) {
  LinearInterpolant li({0.0, 1.0}, {5.0, 7.0});
  EXPECT_DOUBLE_EQ(li(-1.0), 5.0);
  EXPECT_DOUBLE_EQ(li(2.0), 7.0);
}

TEST(Interp, RejectsNonMonotone) {
  EXPECT_THROW(LinearInterpolant({0.0, 0.0}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(Interp, ResampleUniform) {
  LinearInterpolant li({0.0, 2.0}, {0.0, 4.0});
  auto [xs, ys] = li.resample(5);
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_DOUBLE_EQ(xs[2], 1.0);
  EXPECT_DOUBLE_EQ(ys[2], 2.0);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SampledStats, RmsOfSine) {
  std::vector<double> t, y;
  const int n = 20000;
  for (int i = 0; i <= n; ++i) {
    const double tt = 2.0 * M_PI * i / n;
    t.push_back(tt);
    y.push_back(std::sin(tt));
  }
  EXPECT_NEAR(rms_sampled(t, y), 1.0 / std::sqrt(2.0), 1e-4);
  EXPECT_NEAR(mean_sampled(t, y), 0.0, 1e-10);
  EXPECT_NEAR(peak_abs(y), 1.0, 1e-6);
}

}  // namespace
}  // namespace dsmt::numeric
