// Scalar root-finding unit and property tests.
#include <gtest/gtest.h>

#include <cmath>

#include "numeric/roots.h"

namespace dsmt::numeric {
namespace {

TEST(Bisect, LinearRoot) {
  auto r = bisect([](double x) { return 2.0 * x - 3.0; }, 0.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.root, 1.5, 1e-9);
}

TEST(Bisect, NoBracketReportsFailure) {
  auto r = bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0);
  EXPECT_FALSE(r.converged);
}

TEST(Bisect, EndpointRoot) {
  auto r = bisect([](double x) { return x; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.root, 0.0);
}

TEST(Brent, TranscendentalRoot) {
  // x = exp(1/x) has a root near x ~ 1.763 for f(x) = exp(1/x) - x.
  auto r = brent([](double x) { return std::exp(1.0 / x) - x; }, 1.0, 4.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(std::exp(1.0 / r.root), r.root, 1e-8);
}

TEST(Brent, HighMultiplicityStillConverges) {
  auto r = brent([](double x) { return std::pow(x - 1.0, 3); }, 0.0, 3.0,
                 {.x_tol = 1e-10, .f_tol = 0.0, .max_iterations = 500});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.root, 1.0, 1e-3);
}

TEST(Brent, FewerIterationsThanBisectOnSmoothFunction) {
  int calls_brent = 0, calls_bisect = 0;
  auto fb = [&](double x) {
    ++calls_brent;
    return std::cos(x) - x;
  };
  auto fb2 = [&](double x) {
    ++calls_bisect;
    return std::cos(x) - x;
  };
  auto rb = brent(fb, 0.0, 1.0, {.x_tol = 1e-12});
  auto rs = bisect(fb2, 0.0, 1.0, {.x_tol = 1e-12});
  EXPECT_TRUE(rb.converged);
  EXPECT_TRUE(rs.converged);
  EXPECT_LT(calls_brent, calls_bisect);
  EXPECT_NEAR(rb.root, rs.root, 1e-9);
}

TEST(Newton, QuadraticConvergence) {
  auto f = [](double x) { return x * x - 2.0; };
  auto df = [](double x) { return 2.0 * x; };
  auto r = newton(f, df, 1.0, {.x_tol = 1e-14});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.root, std::sqrt(2.0), 1e-12);
  EXPECT_LT(r.iterations, 10);
}

TEST(Newton, DampingRecoversFromOvershoot) {
  // atan has a famously divergent Newton iteration from large |x0|.
  auto f = [](double x) { return std::atan(x); };
  auto df = [](double x) { return 1.0 / (1.0 + x * x); };
  auto r = newton(f, df, 5.0, {.x_tol = 1e-12, .f_tol = 1e-12,
                               .max_iterations = 200});
  EXPECT_NEAR(r.root, 0.0, 1e-6);
}

TEST(ExpandBracket, FindsSignChange) {
  auto f = [](double x) { return x - 100.0; };
  auto b = expand_bracket(f, 0.0, 1.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_LT(f(b->first) * f(b->second), 0.0);
}

TEST(ExpandBracket, GivesUpWithoutRoot) {
  auto b = expand_bracket([](double x) { return x * x + 1.0; }, -1.0, 1.0, 8);
  EXPECT_FALSE(b.has_value());
}

// Property sweep: brent finds roots of x^3 - c for a range of c.
class BrentCubeRoot : public ::testing::TestWithParam<double> {};

TEST_P(BrentCubeRoot, RecoversCubeRoot) {
  const double c = GetParam();
  auto r = brent([c](double x) { return x * x * x - c; }, 0.0, 20.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.root, std::cbrt(c), 1e-8 * std::max(1.0, std::cbrt(c)));
}

INSTANTIATE_TEST_SUITE_P(CubeRoots, BrentCubeRoot,
                         ::testing::Values(0.001, 0.1, 1.0, 2.0, 8.0, 27.0,
                                           100.0, 1234.5, 7999.0));

}  // namespace
}  // namespace dsmt::numeric
