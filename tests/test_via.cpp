// Via electrical/thermal model tests.
#include <gtest/gtest.h>

#include "numeric/constants.h"
#include "tech/ntrs.h"
#include "tech/via.h"

namespace dsmt::tech {
namespace {

ViaSpec basic_via() {
  ViaSpec v;
  v.size = um(0.25);
  v.height = um(0.7);
  v.count = 1;
  return v;
}

TEST(Via, ResistanceMatchesHandCalc) {
  const auto v = basic_via();
  const double expected =
      v.fill.resistivity(kTrefK) * v.height / (v.size * v.size);
  EXPECT_NEAR(via_resistance(v, kTrefK), expected, 1e-9 * expected);
  // A typical W via is a few ohms.
  EXPECT_GT(via_resistance(v, kTrefK), 0.1);
  EXPECT_LT(via_resistance(v, kTrefK), 10.0);
}

TEST(Via, ParallelCutsDivideResistance) {
  auto v = basic_via();
  const double r1 = via_resistance(v, kTrefK);
  v.count = 4;
  EXPECT_NEAR(via_resistance(v, kTrefK), r1 / 4.0, 1e-12);
  EXPECT_NEAR(via_thermal_resistance(v),
              via_thermal_resistance(basic_via()) / 4.0, 1e-9);
}

TEST(Via, CurrentDensityAndCutSizing) {
  const auto v = basic_via();
  const double i = 1e-3;
  EXPECT_NEAR(via_current_density(v, i), i / (v.size * v.size), 1e-3);
  // Sizing: enough cuts to stay under 1 MA/cm^2.
  const int cuts = cuts_for_current(v, 5e-3, MA_per_cm2(1.0));
  ViaSpec sized = v;
  sized.count = cuts;
  EXPECT_LE(via_current_density(sized, 5e-3), MA_per_cm2(1.0) * 1.0001);
  // One fewer cut would violate the limit.
  if (cuts > 1) {
    sized.count = cuts - 1;
    EXPECT_GT(via_current_density(sized, 5e-3), MA_per_cm2(1.0));
  }
}

TEST(Via, EndTemperatureAnchoring) {
  const auto v = basic_via();
  const double t_end = via_end_temperature(v, 5e-5, kTrefK);  // 0.05 mW
  EXPECT_GT(t_end, kTrefK);
  EXPECT_LT(t_end, kTrefK + 5.0);  // vias are good heat sinks
}

TEST(Via, StackToSubstrateAccumulates) {
  const auto tech = make_ntrs_100nm_cu();
  const auto s4 = via_stack_to_substrate(tech, 4);
  const auto s8 = via_stack_to_substrate(tech, 8);
  EXPECT_EQ(s4.levels_crossed, 4);
  EXPECT_EQ(s8.levels_crossed, 8);
  EXPECT_GT(s8.resistance, s4.resistance);
  EXPECT_GT(s8.thermal_resistance, s4.thermal_resistance);
  // More cuts per level reduce both.
  const auto s8x4 = via_stack_to_substrate(tech, 8, 4);
  EXPECT_NEAR(s8x4.resistance, s8.resistance / 4.0, 1e-9);
}

TEST(Via, Validation) {
  ViaSpec v = basic_via();
  v.size = 0.0;
  EXPECT_THROW(via_resistance(v, kTrefK), std::invalid_argument);
  EXPECT_THROW(cuts_for_current(basic_via(), 1e-3, 0.0),
               std::invalid_argument);
  EXPECT_THROW(via_stack_to_substrate(make_ntrs_100nm_cu(), 8, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::tech
