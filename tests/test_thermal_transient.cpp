// Lumped pulse-heating model tests (ESD substrate).
#include <gtest/gtest.h>

#include <cmath>

#include "numeric/constants.h"
#include "thermal/transient.h"

namespace dsmt::thermal {
namespace {

PulseLineSpec alcu_line() {
  PulseLineSpec s;
  s.metal = materials::make_alcu();
  s.w_m = um(1.0);
  s.t_m = um(0.5);
  s.rth_per_len = 0.0;  // adiabatic
  s.t_ref = kTrefK;
  return s;
}

TEST(Adiabatic, TimeToMeltMatchesClosedFormIntegration) {
  const auto spec = alcu_line();
  const double j = MA_per_cm2(50.0);
  const double t_closed = adiabatic_time_to_melt_onset(spec, j);
  // Numeric integration of the same ODE should agree.
  const auto res = simulate_pulse(spec, [j](double) { return j; },
                                  2.0 * t_closed);
  ASSERT_TRUE(res.reached_melt);
  EXPECT_NEAR(res.melt_onset_time, t_closed, 0.02 * t_closed);
}

TEST(Adiabatic, TimeScalesInverselyWithJSquared) {
  const auto spec = alcu_line();
  const double t1 = adiabatic_time_to_melt_onset(spec, MA_per_cm2(40.0));
  const double t2 = adiabatic_time_to_melt_onset(spec, MA_per_cm2(80.0));
  EXPECT_NEAR(t1 / t2, 4.0, 1e-9);
}

TEST(Adiabatic, ZeroCurrentNeverMelts) {
  const auto spec = alcu_line();
  EXPECT_TRUE(std::isinf(adiabatic_time_to_melt_onset(spec, 0.0)));
}

TEST(Adiabatic, CriticalDensityInvertsTimeToMelt) {
  const auto spec = alcu_line();
  for (double t_pulse : {50e-9, 100e-9, 200e-9}) {
    const double j = critical_current_density_adiabatic(spec, t_pulse);
    EXPECT_NEAR(adiabatic_time_to_melt_onset(spec, j), t_pulse,
                1e-6 * t_pulse);
  }
}

TEST(Adiabatic, PaperAlCuCriticalDensityScale) {
  // Paper Section 6: ~60 MA/cm^2 opens AlCu lines on < 200 ns time scales.
  // Melt onset at 100 ns should be several tens of MA/cm^2.
  const auto spec = alcu_line();
  const double j = critical_current_density_adiabatic(spec, 100e-9);
  EXPECT_GT(to_MA_per_cm2(j), 30.0);
  EXPECT_LT(to_MA_per_cm2(j), 90.0);
}

TEST(Adiabatic, FusionTimePositiveAndShorterAtHigherJ) {
  const auto spec = alcu_line();
  const double f1 = adiabatic_fusion_time(spec, MA_per_cm2(40.0));
  const double f2 = adiabatic_fusion_time(spec, MA_per_cm2(80.0));
  EXPECT_GT(f1, 0.0);
  EXPECT_NEAR(f1 / f2, 4.0, 1e-9);
}

TEST(SimulatePulse, HeatLossReducesPeakTemperature) {
  auto spec = alcu_line();
  const double j = MA_per_cm2(20.0);
  const auto adiabatic =
      simulate_pulse(spec, [j](double) { return j; }, 200e-9);
  spec.rth_per_len = 0.2;  // strong vertical loss
  const auto lossy = simulate_pulse(spec, [j](double) { return j; }, 200e-9);
  EXPECT_GT(adiabatic.peak_temperature, lossy.peak_temperature);
}

TEST(SimulatePulse, StopsAtMeltOnset) {
  const auto spec = alcu_line();
  const double j = MA_per_cm2(100.0);
  const auto res = simulate_pulse(spec, [j](double) { return j; }, 1e-6);
  ASSERT_TRUE(res.reached_melt);
  EXPECT_LT(res.trajectory.t.back(), 1e-6);  // event fired early
  EXPECT_GE(res.peak_temperature, spec.metal.t_melt * 0.999);
}

TEST(CriticalCurrentDensity, LossyExceedsAdiabatic) {
  auto spec = alcu_line();
  spec.rth_per_len = 0.5;
  const double j_adiabatic =
      critical_current_density_adiabatic(spec, 500e-9);
  const double j_lossy = critical_current_density(spec, 500e-9);
  EXPECT_GE(j_lossy, 0.99 * j_adiabatic);
}

// Property: critical density falls monotonically with pulse width (longer
// pulses need less current to melt).
class CriticalVsWidth : public ::testing::TestWithParam<double> {};

TEST_P(CriticalVsWidth, ShorterPulsesNeedMoreCurrent) {
  const auto spec = alcu_line();
  const double t = GetParam();
  const double j_short = critical_current_density_adiabatic(spec, t);
  const double j_long = critical_current_density_adiabatic(spec, 2.0 * t);
  EXPECT_GT(j_short, j_long);
  EXPECT_NEAR(j_short / j_long, std::sqrt(2.0), 1e-9);  // 1/sqrt(t) law
}

INSTANTIATE_TEST_SUITE_P(PulseWidths, CriticalVsWidth,
                         ::testing::Values(10e-9, 50e-9, 100e-9, 200e-9,
                                           500e-9));

}  // namespace
}  // namespace dsmt::thermal
