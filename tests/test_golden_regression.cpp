// Golden-value regression harness: recomputes every paper artifact pinned
// under tests/golden/ (Tables 2-4 design-rule cells, Fig. 2/3 sweep series,
// the Monte-Carlo variation summary) and compares each value against the
// snapshot with a tight per-value tolerance.
//
// Any numeric drift — from threading, refactoring, or a changed model —
// fails tier-1 loudly. If a change is *intended* to move the numbers,
// regenerate with tools/update_golden.py and review the CSV diff like code:
// the diff IS the numeric impact of the change.
//
// The snapshots are written with %.17g (exact double round-trip), so the
// tolerance below has no formatting slack to absorb — it only covers
// last-ulp differences across compilers/optimization levels.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

#include "golden_cases.h"
#include "parallel/thread_pool.h"

#ifndef DSMT_GOLDEN_DIR
#error "DSMT_GOLDEN_DIR must point at tests/golden (set by tests/CMakeLists.txt)"
#endif

namespace dsmt::golden {
namespace {

constexpr double kRelTol = 1e-12;

std::map<std::string, double> load_golden(const std::string& file) {
  const std::string path = std::string(DSMT_GOLDEN_DIR) + "/" + file;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden snapshot " << path
                         << " — regenerate with tools/update_golden.py";
  std::map<std::string, double> out;
  std::string line;
  std::getline(in, line);  // header
  EXPECT_EQ(line, "key,value") << path << " has an unexpected header";
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto comma = line.rfind(',');
    if (comma == std::string::npos) {
      ADD_FAILURE() << path << ": bad line '" << line << "'";
      continue;
    }
    out[line.substr(0, comma)] = std::strtod(line.c_str() + comma + 1, nullptr);
  }
  return out;
}

class GoldenRegression : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenRegression, MatchesSnapshot) {
  const GoldenCase& c = GetParam();
  const auto golden = load_golden(c.file);
  if (golden.empty()) GTEST_SKIP() << "no snapshot loaded";
  const Rows computed = c.rows();
  EXPECT_EQ(computed.size(), golden.size())
      << c.file << ": row count changed — regenerate with "
      << "tools/update_golden.py and review the diff";
  for (const auto& [key, value] : computed) {
    const auto it = golden.find(key);
    if (it == golden.end()) {
      ADD_FAILURE() << c.file << ": key '" << key << "' not in snapshot";
      continue;
    }
    const double want = it->second;
    const double scale = std::max({std::abs(want), std::abs(value), 1e-300});
    EXPECT_LE(std::abs(value - want), kRelTol * scale)
        << c.file << " [" << key << "]: computed " << value << ", golden "
        << want << " (rel err "
        << std::abs(value - want) / scale << ")";
  }
}

std::string case_name(const ::testing::TestParamInfo<GoldenCase>& info) {
  std::string name = info.param.file;
  name = name.substr(0, name.rfind('.'));
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllSnapshots, GoldenRegression,
                         ::testing::ValuesIn(all_cases()), case_name);

/// Serializes rows exactly as dsmt_golden_gen writes them (%.17g), so a
/// byte-equal comparison here is the same statement as "the regenerated
/// snapshot file would be byte-identical".
std::string serialize(const Rows& rows) {
  std::string out = "key,value\n";
  char line[256];
  for (const auto& [key, value] : rows) {
    std::snprintf(line, sizeof line, "%s,%.17g\n", key.c_str(), value);
    out += line;
  }
  return out;
}

// The batched snapshots must be byte-identical at DSMT_THREADS=1 and 8: the
// batch decomposes over parallel_for in static index blocks, so the thread
// count may only change wall-clock, never a single serialized byte.
class GoldenThreadInvariance : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenThreadInvariance, SerializedBytesIdenticalAcrossThreadCounts) {
  const GoldenCase& c = GetParam();
  parallel::set_thread_count(1);
  const std::string serial = serialize(c.rows());
  parallel::set_thread_count(8);
  const std::string parallel8 = serialize(c.rows());
  parallel::set_thread_count(0);
  EXPECT_EQ(serial, parallel8)
      << c.file << ": serialized snapshot differs between 1 and 8 threads";
}

INSTANTIATE_TEST_SUITE_P(
    BatchSnapshots, GoldenThreadInvariance,
    ::testing::ValuesIn(std::vector<GoldenCase>{
        {"batch_table.csv", &batch_table_rows},
        {"batch_variation.csv", &batch_variation_rows},
    }),
    case_name);

}  // namespace
}  // namespace dsmt::golden
