// Thermal healing length and finite-line profile tests, cross-validated
// against the 1-D finite-difference solver.
#include <gtest/gtest.h>

#include <cmath>

#include "materials/metal.h"
#include "numeric/constants.h"
#include "thermal/fd1d.h"
#include "thermal/healing.h"
#include "thermal/impedance.h"

namespace dsmt::thermal {
namespace {

struct Geometry {
  materials::Metal metal = materials::make_copper();
  double w = um(3.0);
  double t = um(0.5);
  double rth = 0.0;

  Geometry() {
    const auto weff = effective_width(metres(w), um(3.0), kPhiQuasi1D);
    rth = rth_per_length_uniform(um(3.0), W_per_mK(1.15), weff);
  }
};

TEST(HealingLength, PaperOrderOfMagnitude) {
  // The paper quotes lambda ~ 25-200 um; the Fig. 2 geometry lands at the
  // tens-of-microns scale.
  const Geometry g;
  const double lambda = healing_length(g.metal, g.w, g.t, g.rth);
  EXPECT_GT(lambda, um(5.0));
  EXPECT_LT(lambda, um(200.0));
}

TEST(HealingLength, ScalesAsSqrtOfConductivity) {
  const Geometry g;
  materials::Metal m2 = g.metal;
  m2.k_thermal *= 4.0;
  EXPECT_NEAR(healing_length(m2, g.w, g.t, g.rth) /
                  healing_length(g.metal, g.w, g.t, g.rth),
              2.0, 1e-12);
}

TEST(ThermallyLongClassification, Thresholds) {
  EXPECT_TRUE(is_thermally_long(um(1000), um(20)));
  EXPECT_FALSE(is_thermally_long(um(100), um(20)));
}

TEST(FiniteLineProfile, EndsPinnedMiddleHot) {
  const Geometry g;
  const double p = 1.0;  // W/m
  const auto prof = finite_line_profile(g.metal, g.w, g.t, g.rth, um(500), p,
                                        kTrefK, kTrefK);
  EXPECT_NEAR(prof.t.front(), kTrefK, 1e-9);
  EXPECT_NEAR(prof.t.back(), kTrefK, 1e-9);
  EXPECT_GT(prof.t_peak, kTrefK);
  const double t_inf = kTrefK + p * g.rth;
  EXPECT_LT(prof.t_peak, t_inf + 1e-9);
  EXPECT_LT(prof.t_avg, prof.t_peak);
}

TEST(FiniteLineProfile, LongLineApproachesInfiniteLimit) {
  const Geometry g;
  const double p = 2.0;
  const double lambda = healing_length(g.metal, g.w, g.t, g.rth);
  const auto prof = finite_line_profile(g.metal, g.w, g.t, g.rth,
                                        40.0 * lambda, p, kTrefK, kTrefK);
  const double t_inf = kTrefK + p * g.rth;
  EXPECT_NEAR(prof.t_peak, t_inf, 1e-6 * (t_inf - kTrefK));
}

TEST(RiseFractions, LimitsAndMonotonicity) {
  const double lambda = um(20);
  // Very long line: fractions -> 1. Very short: -> 0.
  EXPECT_NEAR(peak_rise_fraction(um(2000), lambda), 1.0, 1e-6);
  EXPECT_LT(peak_rise_fraction(um(2), lambda), 0.01);
  EXPECT_NEAR(average_rise_fraction(um(4000), lambda), 1.0, 0.03);
  double prev = 0.0;
  for (double len_um : {10.0, 30.0, 100.0, 300.0, 1000.0}) {
    const double f = average_rise_fraction(um(len_um), lambda);
    EXPECT_GT(f, prev);
    prev = f;
  }
  // Peak rises faster than the average everywhere.
  EXPECT_GT(peak_rise_fraction(um(60), lambda),
            average_rise_fraction(um(60), lambda));
}

TEST(Fd1dSteady, MatchesAnalyticProfile) {
  const Geometry g;
  materials::Metal const_rho = g.metal;
  const_rho.tcr = 0.0;  // analytic profile assumes constant resistivity

  Line1DSpec spec;
  spec.metal = const_rho;
  spec.w_m = g.w;
  spec.t_m = g.t;
  spec.length = um(400);
  spec.rth_per_len = g.rth;
  spec.nodes = 401;

  const double j = MA_per_cm2(2.0);
  const auto fd = solve_steady_line(spec, j);
  ASSERT_TRUE(fd.converged);

  const double p = j * j * const_rho.resistivity(kTrefK) * g.w * g.t;
  const auto an = finite_line_profile(const_rho, g.w, g.t, g.rth, um(400), p,
                                      kTrefK, kTrefK, 401);
  EXPECT_NEAR(fd.t_peak, an.t_peak, 0.02 * (an.t_peak - kTrefK) + 1e-6);
  EXPECT_NEAR(fd.t_avg, an.t_avg, 0.02 * (an.t_avg - kTrefK) + 1e-6);
}

TEST(Fd1dSteady, TemperatureDependentRhoRunsHotter) {
  const Geometry g;
  Line1DSpec spec;
  spec.metal = g.metal;  // tcr > 0
  spec.w_m = g.w;
  spec.t_m = g.t;
  spec.length = um(400);
  spec.rth_per_len = g.rth;

  Line1DSpec spec_const = spec;
  spec_const.metal.tcr = 0.0;

  const double j = MA_per_cm2(4.0);
  EXPECT_GT(solve_steady_line(spec, j).t_peak,
            solve_steady_line(spec_const, j).t_peak);
}

TEST(Fd1dTransient, ApproachesSteadyState) {
  const Geometry g;
  Line1DSpec spec;
  spec.metal = g.metal;
  spec.w_m = g.w;
  spec.t_m = g.t;
  spec.length = um(200);
  spec.rth_per_len = g.rth;
  spec.nodes = 101;

  const double j = MA_per_cm2(3.0);
  const auto steady = solve_steady_line(spec, j);
  // Long transient with constant drive should settle to the steady peak.
  const auto tr = solve_transient_line(
      spec, [j](double) { return j; }, 2e-4, 4000);
  EXPECT_FALSE(tr.melted);
  EXPECT_NEAR(tr.t_peak.back(), steady.t_peak,
              0.02 * (steady.t_peak - kTrefK) + 1e-6);
}

TEST(Fd1dTransient, MeltDetection) {
  const Geometry g;
  Line1DSpec spec;
  spec.metal = materials::make_alcu();
  spec.w_m = um(0.5);
  spec.t_m = um(0.5);
  spec.length = um(100);
  spec.rth_per_len = g.rth;
  spec.nodes = 81;

  const double j = MA_per_cm2(80.0);  // far above the ESD critical density
  const auto tr = solve_transient_line(
      spec, [j](double) { return j; }, 400e-9, 2000);
  EXPECT_TRUE(tr.melted);
  EXPECT_GT(tr.melt_time, 0.0);
  EXPECT_LT(tr.melt_time, 400e-9);
}

}  // namespace
}  // namespace dsmt::thermal
