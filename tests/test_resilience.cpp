// Long-job resilience contract: monotonic deadlines, cooperative
// cancellation, and checkpoint/resume must compose with the determinism and
// fault-injection layers — a killed-then-resumed sweep is bitwise identical
// to an uninterrupted one at every thread count, an expired deadline
// surfaces as kDeadlineExceeded in the SolverDiag chain within a bounded
// wall time, and an inert RunContext changes no output bit.
//
// This suite mutates the global thread count and arms fault plans, so it
// lives in its own executable (label: resilience).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/atomic_file.h"
#include "core/checkpoint.h"
#include "core/run_context.h"
#include "core/signoff.h"
#include "core/status.h"
#include "core/variation.h"
#include "materials/dielectric.h"
#include "numeric/fault_injection.h"
#include "parallel/parallel_for.h"
#include "selfconsistent/sweep.h"
#include "tech/ntrs.h"
#include "thermal/impedance.h"

namespace dsmt {
namespace {

using core::CheckpointSpec;
using core::RunContext;
using core::ScopedRunContext;
using core::StatusCode;
using numeric::fault::FaultKind;
using numeric::fault::ScopedFault;

void expect_bits_equal(double a, double b, const std::string& what) {
  EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0)
      << what << ": " << a << " != " << b;
}

selfconsistent::Problem fig2_problem() {
  selfconsistent::Problem p;
  p.metal = materials::make_copper();
  p.metal.em.activation_energy_ev = 0.7;
  p.j0 = MA_per_cm2(0.6);
  const auto weff =
      thermal::effective_width(um(3.0), um(3.0), thermal::kPhiQuasi1D);
  const auto rth =
      thermal::rth_per_length_uniform(um(3.0), W_per_mK(1.15), weff);
  p.heating_coefficient =
      selfconsistent::heating_coefficient(um(3.0), um(0.5), rth);
  return p;
}

selfconsistent::TableSpec table_spec() {
  selfconsistent::TableSpec spec;
  spec.technology = tech::make_ntrs_100nm_cu();
  spec.gap_fills = materials::paper_dielectrics();
  spec.levels = {5, 6, 7, 8};
  spec.duty_cycles = {0.1, 1.0};
  spec.j0 = MA_per_cm2(0.6);
  return spec;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

std::size_t count_slot_lines(const std::string& path) {
  std::ifstream is(path);
  std::string line;
  std::size_t n = 0;
  while (std::getline(is, line))
    if (line.rfind("slot ", 0) == 0) ++n;
  return n;
}

void compare_tables(const std::vector<selfconsistent::TableCell>& ref,
                    const std::vector<selfconsistent::TableCell>& got,
                    const std::string& tag) {
  ASSERT_EQ(ref.size(), got.size()) << tag;
  for (std::size_t c = 0; c < ref.size(); ++c) {
    EXPECT_EQ(ref[c].level, got[c].level) << tag;
    EXPECT_EQ(ref[c].dielectric, got[c].dielectric) << tag;
    const std::string cell = tag + " cell " + std::to_string(c);
    expect_bits_equal(ref[c].sol.t_metal, got[c].sol.t_metal, cell);
    expect_bits_equal(ref[c].sol.delta_t, got[c].sol.delta_t, cell);
    expect_bits_equal(ref[c].sol.j_peak, got[c].sol.j_peak, cell);
    expect_bits_equal(ref[c].sol.j_rms, got[c].sol.j_rms, cell);
    expect_bits_equal(ref[c].sol.j_avg, got[c].sol.j_avg, cell);
  }
}

// ---------------------------------------------------------------------------
// Atomic file writer.

TEST(AtomicFile, CommitPublishesWholeContent) {
  const std::string path = temp_path("atomic_commit.txt");
  std::remove(path.c_str());
  core::AtomicFile file(path);
  file.stream() << "line one\nline two\n";
  EXPECT_FALSE(file.committed());
  file.commit();
  EXPECT_TRUE(file.committed());
  EXPECT_EQ(read_file(path), "line one\nline two\n");
  std::remove(path.c_str());
}

TEST(AtomicFile, AbandonedWriterLeavesTargetUntouched) {
  const std::string path = temp_path("atomic_abandon.txt");
  core::atomic_write_file(path, "original");
  {
    core::AtomicFile file(path);
    file.stream() << "half-written garbage";
    // No commit: simulates an exception unwinding an emitter mid-write.
  }
  EXPECT_EQ(read_file(path), "original");
  std::remove(path.c_str());
}

TEST(AtomicFile, DoubleCommitThrows) {
  const std::string path = temp_path("atomic_double.txt");
  core::AtomicFile file(path);
  file.stream() << "x";
  file.commit();
  EXPECT_THROW(file.commit(), std::logic_error);
  std::remove(path.c_str());
}

TEST(AtomicFile, OverwriteReplacesAtomically) {
  const std::string path = temp_path("atomic_replace.txt");
  core::atomic_write_file(path, "first");
  core::atomic_write_file(path, "second");
  EXPECT_EQ(read_file(path), "second");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// RunContext primitives.

TEST(RunContext, ExpiredDeadlineInterruptsSolveWithDiagChain) {
  RunContext ctx = RunContext::with_deadline_after(std::chrono::nanoseconds(0));
  ScopedRunContext scope(ctx);
  try {
    (void)selfconsistent::generate_design_rule_table(table_spec());
    FAIL() << "expected SolveError from the expired deadline";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.status(), StatusCode::kDeadlineExceeded);
    bool saw = false;
    for (const auto& ev : e.diag().chain)
      saw = saw || ev.status == StatusCode::kDeadlineExceeded;
    EXPECT_TRUE(saw) << e.diag().to_string();
  }
}

TEST(RunContext, PreCancelledTokenInterruptsSolve) {
  RunContext ctx;
  ctx.cancel().request_cancel();
  EXPECT_TRUE(ctx.cancel().cancel_requested());
  ScopedRunContext scope(ctx);
  try {
    (void)selfconsistent::sweep_duty_cycle(fig2_problem(), {0.1, 0.5, 1.0});
    FAIL() << "expected SolveError from the cancelled run";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.status(), StatusCode::kCancelled);
  }
}

TEST(RunContext, DeadlineBoundedRunReturnsWithinBudget) {
  parallel::set_thread_count(8);
  const auto start = std::chrono::steady_clock::now();
  RunContext ctx =
      RunContext::with_deadline_after(std::chrono::milliseconds(10));
  ScopedRunContext scope(ctx);
  bool interrupted = false;
  try {
    // Roughly a second of work uninterrupted — far beyond the 10 ms budget
    // on any machine, so the deadline must fire.
    const auto duties = selfconsistent::log_spaced(1e-4, 1.0, 500000);
    (void)selfconsistent::sweep_duty_cycle(fig2_problem(), duties);
  } catch (const SolveError& e) {
    interrupted = true;
    EXPECT_EQ(e.status(), StatusCode::kDeadlineExceeded);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_TRUE(interrupted);
  // Generous bound: the poll spacing is one root-finder iteration, so the
  // overshoot past the 20 ms budget must be far below seconds.
  EXPECT_LT(elapsed, 10.0);
  EXPECT_LT(ctx.seconds_remaining(), 0.0);
  parallel::set_thread_count(0);
}

TEST(RunContext, HeartbeatAdvancesWhileKernelsIterate) {
  RunContext ctx;
  ScopedRunContext scope(ctx);
  EXPECT_EQ(ctx.beats(), 0u);
  (void)selfconsistent::solve(fig2_problem());
  EXPECT_GT(ctx.beats(), 0u);
}

TEST(RunContext, CancelAfterChecksTripsExactlyOnce) {
  core::CancelToken token;
  token.cancel_after_checks(2);
  EXPECT_FALSE(token.observe());  // fuse 2 -> 1
  EXPECT_FALSE(token.observe());  // fuse 1 -> 0
  EXPECT_TRUE(token.observe());   // fuse 0 trips
  EXPECT_TRUE(token.cancel_requested());
  EXPECT_TRUE(token.observe());  // stays tripped
}

TEST(RunContext, InertContextChangesNoOutputBit) {
  parallel::set_thread_count(2);
  const auto bare = selfconsistent::generate_design_rule_table(table_spec());
  RunContext ctx;  // no deadline, no cancel, no checkpoint
  ScopedRunContext scope(ctx);
  const auto guarded = selfconsistent::generate_design_rule_table(table_spec());
  compare_tables(bare, guarded, "inert context");
  parallel::set_thread_count(0);
}

// ---------------------------------------------------------------------------
// Checkpoint file integrity.

TEST(CheckpointFile, HexfloatPayloadRoundTripsBitwise) {
  const std::string path = temp_path("ckpt_roundtrip.ckpt");
  std::remove(path.c_str());
  const std::vector<double> exotic = {1.0 / 3.0, -0.0, 5e-324,
                                      1.7976931348623157e308, 373.15};
  {
    core::SweepCheckpoint cp({path, 1}, "roundtrip", 42, 2);
    cp.store(1, exotic);
    cp.flush();
  }
  core::SweepCheckpoint cp({path, 1}, "roundtrip", 42, 2);
  EXPECT_FALSE(cp.has(0));
  ASSERT_TRUE(cp.has(1));
  const auto& got = cp.values(1);
  ASSERT_EQ(got.size(), exotic.size());
  for (std::size_t i = 0; i < exotic.size(); ++i)
    expect_bits_equal(exotic[i], got[i], "value " + std::to_string(i));
  std::remove(path.c_str());
}

TEST(CheckpointFile, FormatHeaderIsVersionGated) {
  const std::string path = temp_path("ckpt_header.ckpt");
  std::remove(path.c_str());
  {
    core::SweepCheckpoint cp({path, 1}, "hdr", 7, 1);
    cp.store(0, {1.0});
    cp.flush();
  }
  std::ifstream is(path);
  std::string first;
  std::getline(is, first);
  EXPECT_EQ(first, "dsmt-checkpoint v1");
  std::remove(path.c_str());
}

TEST(CheckpointFile, MismatchedIdentityThrows) {
  const std::string path = temp_path("ckpt_mismatch.ckpt");
  std::remove(path.c_str());
  {
    core::SweepCheckpoint cp({path, 1}, "job_a", 100, 4);
    cp.store(0, {1.0});
    cp.flush();
  }
  const CheckpointSpec spec{path, 1};
  EXPECT_THROW(core::SweepCheckpoint(spec, "job_b", 100, 4), SolveError);
  EXPECT_THROW(core::SweepCheckpoint(spec, "job_a", 101, 4), SolveError);
  EXPECT_THROW(core::SweepCheckpoint(spec, "job_a", 100, 5), SolveError);
  // The matching identity still loads.
  core::SweepCheckpoint ok(spec, "job_a", 100, 4);
  EXPECT_TRUE(ok.has(0));
  std::remove(path.c_str());
}

TEST(CheckpointFile, CorruptFileThrowsInsteadOfSilentlyRestarting) {
  const std::string path = temp_path("ckpt_corrupt.ckpt");
  const CheckpointSpec spec{path, 1};
  core::atomic_write_file(path, "not a checkpoint at all\n");
  EXPECT_THROW(core::SweepCheckpoint(spec, "job", 1, 2), SolveError);
  core::atomic_write_file(
      path, "dsmt-checkpoint v1\njob job\nconfig 0000000000000001\n"
            "slots 2\nslot 0 1 banana\n");
  EXPECT_THROW(core::SweepCheckpoint(spec, "job", 1, 2), SolveError);
  core::atomic_write_file(
      path, "dsmt-checkpoint v1\njob job\nconfig 0000000000000001\n"
            "slots 2\nslot 9 1 0x1p+0\n");
  EXPECT_THROW(core::SweepCheckpoint(spec, "job", 1, 2), SolveError);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Kill-then-resume chaos: cancel at randomized poll counts, resume, and
// require bitwise equality with the uninterrupted reference at 1, 2, and 8
// threads. Composes with the PR-2 fault injector below.

TEST(CheckpointResume, TableSweepKillThenResumeBitIdentical) {
  parallel::set_thread_count(1);
  // Probe run: collect the reference AND the total poll count, so the chaos
  // fuses below are guaranteed to trip mid-run on any machine.
  RunContext probe;
  std::vector<selfconsistent::TableCell> reference;
  {
    ScopedRunContext scope(probe);
    reference = selfconsistent::generate_design_rule_table(table_spec());
  }
  const std::uint64_t total_polls = probe.beats();
  ASSERT_GT(total_polls, 10u);

  int case_id = 0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    for (const std::uint64_t fuse :
         {std::uint64_t{3}, total_polls / 3, (2 * total_polls) / 3}) {
      const std::string tag = "threads=" + std::to_string(threads) +
                              " fuse=" + std::to_string(fuse);
      const std::string path =
          temp_path("ckpt_table_" + std::to_string(case_id++) + ".ckpt");
      std::remove(path.c_str());
      parallel::set_thread_count(threads);

      {  // Chaos run: cancelled mid-flight after `fuse` kernel polls.
        RunContext ctx;
        ctx.set_checkpoint({path, 1});
        ctx.cancel().cancel_after_checks(fuse);
        ScopedRunContext scope(ctx);
        EXPECT_THROW((void)selfconsistent::generate_design_rule_table(
                         table_spec()),
                     SolveError)
            << tag;
      }
      const std::size_t persisted = count_slot_lines(path);

      {  // Resume: skip persisted slots, recompute the rest.
        RunContext ctx;
        ctx.set_checkpoint({path, 1});
        ScopedRunContext scope(ctx);
        const auto resumed =
            selfconsistent::generate_design_rule_table(table_spec());
        compare_tables(reference, resumed, tag);
        // The run's checkpoint log agrees with what the file held.
        const auto log = ctx.checkpoint_log();
        ASSERT_EQ(log.size(), 1u) << tag;
        EXPECT_EQ(log[0].job, "design_rule_table") << tag;
        EXPECT_EQ(log[0].total_slots, reference.size()) << tag;
        EXPECT_EQ(log[0].completed, reference.size()) << tag;
        EXPECT_EQ(log[0].resumed, persisted) << tag;
      }
      std::remove(path.c_str());
    }
  }
  parallel::set_thread_count(0);
}

TEST(CheckpointResume, MonteCarloKillThenResumeBitIdentical) {
  const auto run_mc = [] {
    core::VariationSpec spec;
    return core::monte_carlo_jpeak(tech::make_ntrs_100nm_cu(), 8,
                                   materials::make_hsq(), 2.45, 0.1,
                                   MA_per_cm2(1.8), spec, 64);
  };
  parallel::set_thread_count(1);
  RunContext probe;
  std::optional<core::VariationResult> reference_holder;
  {
    ScopedRunContext scope(probe);
    reference_holder = run_mc();
  }
  const auto& reference = *reference_holder;
  const std::uint64_t total_polls = probe.beats();
  ASSERT_GT(total_polls, 10u);

  int case_id = 0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    for (const std::uint64_t fuse : {total_polls / 5, total_polls / 2}) {
      const std::string tag = "threads=" + std::to_string(threads) +
                              " fuse=" + std::to_string(fuse);
      const std::string path =
          temp_path("ckpt_mc_" + std::to_string(case_id++) + ".ckpt");
      std::remove(path.c_str());
      parallel::set_thread_count(threads);
      {
        RunContext ctx;
        ctx.set_checkpoint({path, 1});
        ctx.cancel().cancel_after_checks(fuse);
        ScopedRunContext scope(ctx);
        EXPECT_THROW((void)run_mc(), SolveError) << tag;
      }
      {
        RunContext ctx;
        ctx.set_checkpoint({path, 1});
        ScopedRunContext scope(ctx);
        const auto resumed = run_mc();
        ASSERT_EQ(reference.samples.size(), resumed.samples.size()) << tag;
        for (std::size_t s = 0; s < reference.samples.size(); ++s)
          expect_bits_equal(reference.samples[s], resumed.samples[s],
                            tag + " sample " + std::to_string(s));
        expect_bits_equal(reference.nominal, resumed.nominal, tag + " nominal");
        expect_bits_equal(reference.mean, resumed.mean, tag + " mean");
        expect_bits_equal(reference.stddev, resumed.stddev, tag + " stddev");
        expect_bits_equal(reference.p01, resumed.p01, tag + " p01");
        expect_bits_equal(reference.p99, resumed.p99, tag + " p99");
      }
      std::remove(path.c_str());
    }
  }
  parallel::set_thread_count(0);
}

TEST(CheckpointResume, NestedJ0SweepClaimsAtOuterGranularity) {
  const std::vector<double> j0s = {MA_per_cm2(0.6), MA_per_cm2(1.2),
                                   MA_per_cm2(1.8)};
  const auto duties = selfconsistent::log_spaced(1e-3, 1.0, 7);
  parallel::set_thread_count(1);
  RunContext probe;
  std::vector<std::vector<selfconsistent::DutyCyclePoint>> reference;
  {
    ScopedRunContext scope(probe);
    reference = selfconsistent::sweep_j0(fig2_problem(), j0s, duties);
  }
  ASSERT_GT(probe.beats(), 10u);

  const std::string path = temp_path("ckpt_j0.ckpt");
  std::remove(path.c_str());
  parallel::set_thread_count(2);
  {
    RunContext ctx;
    ctx.set_checkpoint({path, 1});
    ctx.cancel().cancel_after_checks(probe.beats() / 2);
    ScopedRunContext scope(ctx);
    EXPECT_THROW((void)selfconsistent::sweep_j0(fig2_problem(), j0s, duties),
                 SolveError);
  }
  {
    RunContext ctx;
    ctx.set_checkpoint({path, 1});
    ScopedRunContext scope(ctx);
    const auto resumed = selfconsistent::sweep_j0(fig2_problem(), j0s, duties);
    ASSERT_EQ(reference.size(), resumed.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(reference[i].size(), resumed[i].size());
      for (std::size_t k = 0; k < reference[i].size(); ++k) {
        const std::string tag =
            "point [" + std::to_string(i) + "][" + std::to_string(k) + "]";
        expect_bits_equal(reference[i][k].sc.j_peak, resumed[i][k].sc.j_peak,
                          tag + " j_peak");
        expect_bits_equal(reference[i][k].jpeak_thermal_only,
                          resumed[i][k].jpeak_thermal_only, tag + " jth");
      }
    }
    // The outer driver claimed the spec: one checkpoint, at j0 granularity,
    // proving the nested duty sweeps could not double-apply the same file.
    const auto log = ctx.checkpoint_log();
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0].job, "j0_sweep");
    EXPECT_EQ(log[0].total_slots, j0s.size());
  }
  std::remove(path.c_str());
  parallel::set_thread_count(0);
}

TEST(CheckpointResume, DeadlineKillThenResumeBitIdentical) {
  parallel::set_thread_count(1);
  const auto reference = selfconsistent::generate_design_rule_table(table_spec());
  const std::string path = temp_path("ckpt_deadline.ckpt");
  std::remove(path.c_str());
  parallel::set_thread_count(2);
  {
    RunContext ctx =
        RunContext::with_deadline_after(std::chrono::milliseconds(2));
    ctx.set_checkpoint({path, 1});
    ScopedRunContext scope(ctx);
    try {
      (void)selfconsistent::generate_design_rule_table(table_spec());
      // A fast machine may legitimately finish inside the budget.
    } catch (const SolveError& e) {
      EXPECT_EQ(e.status(), StatusCode::kDeadlineExceeded);
    }
  }
  {
    RunContext ctx;  // no deadline this time
    ctx.set_checkpoint({path, 1});
    ScopedRunContext scope(ctx);
    compare_tables(reference,
                   selfconsistent::generate_design_rule_table(table_spec()),
                   "deadline resume");
  }
  std::remove(path.c_str());
  parallel::set_thread_count(0);
}

// A fully checkpointed run must not invoke a single solver kernel on
// resume: with every slot restored, a fault plan poisoning ALL kernels
// never fires.
TEST(CheckpointResume, FullResumeRunsNoSolver) {
  parallel::set_thread_count(2);
  const std::string path = temp_path("ckpt_full.ckpt");
  std::remove(path.c_str());
  std::vector<selfconsistent::TableCell> first;
  {
    RunContext ctx;
    ctx.set_checkpoint({path, 4});
    ScopedRunContext scope(ctx);
    first = selfconsistent::generate_design_rule_table(table_spec());
  }
  {
    RunContext ctx;
    ctx.set_checkpoint({path, 4});
    ScopedRunContext scope(ctx);
    ScopedFault fault({FaultKind::kNanResidual, "", 1, 0.0, ""});
    const auto resumed = selfconsistent::generate_design_rule_table(table_spec());
    EXPECT_EQ(numeric::fault::injection_count(), 0);
    compare_tables(first, resumed, "full resume");
    // Restored cells carry their provenance in the diag chain.
    ASSERT_FALSE(resumed.front().sol.diag.chain.empty());
    EXPECT_NE(resumed.front().sol.diag.chain.back().note.find(
                  "restored from checkpoint"),
              std::string::npos);
  }
  std::remove(path.c_str());
  parallel::set_thread_count(0);
}

// Chaos composition: the PR-2 fault injector perturbs every Brent residual
// (deterministically) while cancellation kills the run mid-flight; resume
// must still match the uninterrupted run under the same fault plan.
TEST(CheckpointResume, ComposesWithFaultInjector) {
  const numeric::fault::FaultPlan plan{FaultKind::kPerturbResidual,
                                       "numeric/brent", 3, 10.0, ""};
  parallel::set_thread_count(1);
  RunContext probe;
  std::vector<selfconsistent::TableCell> reference;
  {
    ScopedRunContext scope(probe);
    ScopedFault fault(plan);
    reference = selfconsistent::generate_design_rule_table(table_spec());
  }
  ASSERT_GT(probe.beats(), 10u);
  const std::string path = temp_path("ckpt_chaos.ckpt");
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    std::remove(path.c_str());
    parallel::set_thread_count(threads);
    {
      RunContext ctx;
      ctx.set_checkpoint({path, 1});
      ctx.cancel().cancel_after_checks(probe.beats() / 3);
      ScopedRunContext scope(ctx);
      ScopedFault fault(plan);
      EXPECT_THROW(
          (void)selfconsistent::generate_design_rule_table(table_spec()),
          SolveError);
    }
    {
      RunContext ctx;
      ctx.set_checkpoint({path, 1});
      ScopedRunContext scope(ctx);
      ScopedFault fault(plan);
      compare_tables(reference,
                     selfconsistent::generate_design_rule_table(table_spec()),
                     "chaos threads=" + std::to_string(threads));
    }
  }
  std::remove(path.c_str());
  parallel::set_thread_count(0);
}

// ---------------------------------------------------------------------------
// JSON sign-off round-trip.

TEST(SignoffJson, RunKeyCarriesResilienceState) {
  core::SignoffReport report;
  report.technology = "unit-test";
  {
    // No ambient context: no run key at all.
    const std::string plain = report.to_json(0);
    EXPECT_EQ(plain.find("\"run\""), std::string::npos);
  }
  RunContext ctx =
      RunContext::with_deadline_after(std::chrono::seconds(3600));
  core::CheckpointStats stats;
  stats.job = "design_rule_table";
  stats.total_slots = 24;
  stats.completed = 24;
  stats.resumed = 7;
  stats.flushes = 3;
  ctx.note_checkpoint(stats);
  ScopedRunContext scope(ctx);
  const std::string json = report.to_json(0);
  EXPECT_NE(json.find("\"run\""), std::string::npos);
  EXPECT_NE(json.find("\"deadline_armed\": true"), std::string::npos);
  EXPECT_NE(json.find("\"deadline_remaining_s\""), std::string::npos);
  EXPECT_NE(json.find("\"cancelled\": false"), std::string::npos);
  EXPECT_NE(json.find("\"beats\""), std::string::npos);
  EXPECT_NE(json.find("\"checkpoints\""), std::string::npos);
  EXPECT_NE(json.find("\"job\": \"design_rule_table\""), std::string::npos);
  EXPECT_NE(json.find("\"resumed\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"flushes\": 3"), std::string::npos);
}

}  // namespace
}  // namespace dsmt
