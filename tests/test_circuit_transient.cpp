// MNA transient engine tests against closed-form circuit responses.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/rcline.h"
#include "circuit/transient.h"
#include "circuit/waveform.h"

namespace dsmt::circuit {
namespace {

TEST(Transient, ResistiveDividerDc) {
  Netlist nl;
  const NodeId in = nl.node("in"), mid = nl.node("mid");
  nl.add_vsource(in, kGround, dc(9.0));
  nl.add_resistor(in, mid, 2000.0);
  nl.add_resistor(mid, kGround, 1000.0);
  TransientOptions o{.t_stop = 1e-9, .dt = 1e-10};
  const auto r = run_transient(nl, o);
  EXPECT_NEAR(r.voltage(mid).back(), 3.0, 1e-6);  // gmin perturbs ~nV
}

TEST(Transient, RcChargingMatchesAnalytic) {
  Netlist nl;
  const NodeId in = nl.node("in"), out = nl.node("out");
  const double r_ohm = 1e3, c_f = 1e-12;  // tau = 1 ns
  // Step at t = 0.1 ns via a fast ramp.
  nl.add_vsource(in, kGround, pwl({0.0, 0.1e-9, 0.1001e-9, 1.0},
                                  {0.0, 0.0, 1.0, 1.0}));
  nl.add_resistor(in, out, r_ohm);
  nl.add_capacitor(out, kGround, c_f);
  TransientOptions o{.t_stop = 5e-9, .dt = 1e-12};
  const auto res = run_transient(nl, o);
  const auto v = res.voltage(out);
  const auto& t = res.time();
  for (std::size_t i = 0; i < t.size(); i += 200) {
    const double elapsed = t[i] - 0.1e-9;
    const double expected =
        elapsed <= 0 ? 0.0 : 1.0 - std::exp(-elapsed / (r_ohm * c_f));
    EXPECT_NEAR(v[i], expected, 5e-3);
  }
}

TEST(Transient, AmmeterReadsSeriesCurrent) {
  Netlist nl;
  const NodeId in = nl.node("in"), mid = nl.node("mid");
  nl.add_vsource(in, kGround, dc(5.0));
  const int amm = nl.add_ammeter(in, mid);
  nl.add_resistor(mid, kGround, 500.0);
  TransientOptions o{.t_stop = 1e-9, .dt = 1e-10};
  const auto r = run_transient(nl, o);
  EXPECT_NEAR(r.source_current(amm).back(), 0.01, 1e-9);  // 5V/500
}

TEST(Transient, EnergyConservationInRcDischarge) {
  // Capacitor discharging through a resistor: total charge delivered equals
  // the initial charge (trapezoidal rule conserves charge).
  Netlist nl;
  const NodeId a = nl.node("a"), b = nl.node("b");
  // Pre-charge via DC source through ammeter; source drops to 0 at t=1ns.
  nl.add_vsource(a, kGround, pwl({0.0, 1e-9, 1.001e-9, 1.0}, {2.0, 2.0, 0.0, 0.0}));
  const int amm = nl.add_ammeter(a, b);
  nl.add_resistor(b, kGround, 1e15);  // gmin path, negligible
  nl.add_resistor(a, b, 1.0);         // strong coupling for pre-charge
  nl.add_capacitor(b, kGround, 1e-12);
  TransientOptions o{.t_stop = 3e-9, .dt = 0.5e-12};
  const auto r = run_transient(nl, o);
  const auto v = r.voltage(b);
  EXPECT_NEAR(v[static_cast<std::size_t>(0.9e-9 / o.dt)], 2.0, 1e-3);
  EXPECT_LT(v.back(), 0.2);  // discharged through the source path
  (void)amm;
}

TEST(Transient, InverterLogicLevels) {
  Netlist nl;
  const NodeId vdd = nl.node("vdd"), in = nl.node("in"), out = nl.node("out");
  nl.add_vsource(vdd, kGround, dc(2.5));
  nl.add_vsource(in, kGround,
                 pulse(0.0, 2.5, 0.2e-9, 0.05e-9, 0.8e-9, 0.05e-9, 2e-9));
  MosfetParams n{MosType::kNmos, 0.5, 2.5, 3e-4, 1.3, 1.0, 0.02, 4.0};
  MosfetParams p{MosType::kPmos, 0.5, 2.5, 1.4e-4, 1.3, 1.0, 0.02, 8.0};
  nl.add_inverter(n, p, in, out, vdd, kGround);
  nl.add_capacitor(out, kGround, 20e-15);
  TransientOptions o{.t_stop = 2e-9, .dt = 1e-12};
  const auto r = run_transient(nl, o);
  const auto v = r.voltage(out);
  const auto& t = r.time();
  auto at = [&](double tq) { return v[static_cast<std::size_t>(tq / o.dt)]; };
  EXPECT_NEAR(at(0.15e-9), 2.5, 0.01);  // input low -> output high
  EXPECT_NEAR(at(0.9e-9), 0.0, 0.01);   // input high -> output low
  EXPECT_NEAR(at(1.9e-9), 2.5, 0.05);   // recovered high
  (void)t;
}

TEST(Transient, TrapezoidalSecondOrderAccuracy) {
  // Halving dt should reduce the RC waveform error by ~4x.
  auto run_with_dt = [&](double dt) {
    Netlist nl;
    const NodeId in = nl.node("in"), out = nl.node("out");
    nl.add_vsource(in, kGround, [](double t) {
      return std::sin(2.0 * M_PI * 1e9 * t);
    });
    nl.add_resistor(in, out, 1e3);
    nl.add_capacitor(out, kGround, 1e-12);
    TransientOptions o{.t_stop = 2e-9, .dt = dt};
    const auto r = run_transient(nl, o);
    return r.voltage(out).back();
  };
  const double ref = run_with_dt(0.125e-12);
  const double e1 = std::abs(run_with_dt(2e-12) - ref);
  const double e2 = std::abs(run_with_dt(1e-12) - ref);
  EXPECT_GT(e1 / e2, 2.8);
}

TEST(Transient, OptionsValidation) {
  Netlist nl;
  nl.add_resistor(nl.node("a"), kGround, 1.0);
  EXPECT_THROW(run_transient(nl, {.t_stop = 0.0, .dt = 1e-12}),
               std::invalid_argument);
  EXPECT_THROW(run_transient(nl, {.t_stop = 1e-9, .dt = -1.0}),
               std::invalid_argument);
}

TEST(RcLine, ElmoreDelayApproximation) {
  // Step into an RC line: the 50% delay at the far end is ~ 0.69 * (Rs*C +
  // 0.5*R*C + R*Cl) for a lumped approximation; just verify the scale and
  // monotonicity with segment count convergence.
  auto far_end_delay = [&](int segs) {
    Netlist nl;
    const NodeId in = nl.node("in"), head = nl.node("head"),
                 out = nl.node("out");
    nl.add_vsource(in, kGround,
                   pwl({0.0, 0.1e-9, 0.101e-9, 1.0}, {0.0, 0.0, 1.0, 1.0}));
    nl.add_resistor(in, head, 100.0);  // driver
    add_rc_line(nl, head, out, 5e3, 2e-10, 5e-3, segs);  // 25 Ohm? no: r*l=25
    TransientOptions o{.t_stop = 8e-9, .dt = 2e-12};
    const auto r = run_transient(nl, o);
    return crossing_time(r.time(), r.voltage(out), 0.5, 0.0, true) - 0.1e-9;
  };
  const double d10 = far_end_delay(10);
  const double d40 = far_end_delay(40);
  EXPECT_GT(d10, 0.0);
  // Segment-count convergence: 10 vs 40 segments within a few percent.
  EXPECT_NEAR(d10, d40, 0.05 * d40);
  // Scale: R_total*C_total = 25 * 1e-12... tau ~ Rs*C + R*C/2 = 0.1ns + ...
  EXPECT_LT(d40, 3e-9);
}

TEST(RcLine, TotalResistanceAndCapacitance) {
  Netlist nl;
  const NodeId a = nl.node("a"), b = nl.node("b");
  add_rc_line(nl, a, b, 1e4, 1e-10, 1e-3, 8);
  double g_total = 0.0;
  double c_total = 0.0;
  g_total = static_cast<double>(nl.resistors().size());
  for (const auto& c : nl.capacitors()) c_total += c.c;
  EXPECT_EQ(nl.resistors().size(), 8u);
  EXPECT_NEAR(c_total, 1e-10 * 1e-3, 1e-20);
  (void)g_total;
}

TEST(RcLine, Validation) {
  Netlist nl;
  EXPECT_THROW(add_rc_line(nl, nl.node("a"), nl.node("b"), 1.0, 1.0, 1.0, 0),
               std::invalid_argument);
  EXPECT_THROW(add_rc_line(nl, nl.node("a"), nl.node("b"), 1.0, 1.0, -1.0, 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::circuit
