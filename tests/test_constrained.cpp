// Thermally constrained repeater design tests.
#include <gtest/gtest.h>

#include "numeric/constants.h"
#include "repeater/constrained.h"
#include "tech/ntrs.h"

namespace dsmt::repeater {
namespace {

ConstrainedOptions fast(double j0_ma) {
  ConstrainedOptions o;
  o.j0 = dsmt::MA_per_cm2(j0_ma);
  o.sim.steps_per_period = 1200;
  o.sim.line_segments = 12;
  o.bisection_steps = 7;
  return o;
}

TEST(Constrained, GenerousLimitLeavesOptimumUntouched) {
  const auto tech = tech::make_ntrs_250nm_cu();
  const auto d = design_constrained_stage(tech, 6, 4.0,
                                          materials::make_oxide(), fast(0.6));
  EXPECT_FALSE(d.constrained);
  EXPECT_TRUE(d.feasible);
  EXPECT_DOUBLE_EQ(d.size_scale, 1.0);
  EXPECT_NEAR(d.delay_penalty, 0.0, 1e-12);
}

TEST(Constrained, TightLimitBacksOffTheDriver) {
  // An artificially strict EM rule forces the constraint to bind.
  const auto tech = tech::make_ntrs_250nm_cu();
  const auto d = design_constrained_stage(tech, 6, 4.0,
                                          materials::make_polyimide(),
                                          fast(0.02));
  ASSERT_TRUE(d.constrained);
  ASSERT_TRUE(d.feasible);
  EXPECT_LT(d.size_scale, 1.0);
  EXPECT_GT(d.size_scale, fast(0.02).size_floor);
  // The chosen design meets the limit.
  EXPECT_LE(d.sim.j_peak, d.limit.j_peak * 1.02);
  // Backing off costs per-unit-length delay.
  EXPECT_GT(d.delay_penalty, 0.0);
}

TEST(Constrained, ImpossibleLimitReportsInfeasible) {
  const auto tech = tech::make_ntrs_250nm_cu();
  const auto d = design_constrained_stage(tech, 6, 4.0,
                                          materials::make_polyimide(),
                                          fast(0.0005));
  EXPECT_TRUE(d.constrained);
  EXPECT_FALSE(d.feasible);
}

TEST(Constrained, DownsizedStageDrawsLessCurrent) {
  const auto tech = tech::make_ntrs_250nm_cu();
  const auto generous = design_constrained_stage(
      tech, 6, 4.0, materials::make_oxide(), fast(0.6));
  const auto strict = design_constrained_stage(
      tech, 6, 4.0, materials::make_oxide(), fast(0.02));
  if (strict.feasible && strict.constrained) {
    EXPECT_LT(strict.sim.j_peak, generous.sim.j_peak);
  }
}

}  // namespace
}  // namespace dsmt::repeater
