// Dense 3-D interconnect-array coupling tests (paper Fig. 8 / Table 7).
#include <gtest/gtest.h>

#include "numeric/constants.h"
#include "tech/ntrs.h"
#include "thermal/scenarios.h"

namespace dsmt::thermal {
namespace {

MeshOptions coarse() {
  MeshOptions m;
  m.h_min = 0.06e-6;
  m.h_max = 0.6e-6;
  return m;
}

ArraySpec paper_array() {
  ArraySpec spec;
  spec.technology = tech::make_ntrs_250nm_cu();
  spec.max_level = 4;
  spec.lines_per_level = 5;
  return spec;
}

TEST(ArraySection, StructureMatchesSpec) {
  const auto spec = paper_array();
  const auto arr = make_array_section(spec);
  EXPECT_EQ(arr.section.wire_count(), 4u * 5u);
  EXPECT_EQ(arr.wires.size(), 20u);
  // Center wires exist on every level.
  for (int level = 1; level <= 4; ++level)
    EXPECT_NO_THROW(arr.center_wire(level));
  EXPECT_THROW(arr.center_wire(5), std::out_of_range);
}

TEST(ArraySection, AllHotExceedsIsolated) {
  const auto arr = make_array_section(paper_array());
  const auto h = array_heating_coefficients(arr, 4, coarse());
  EXPECT_GT(h.h_all_hot, h.h_isolated);
  EXPECT_GT(h.h_isolated, 0.0);
  // Paper Table 7: all-hot heating is severalfold the isolated value
  // (enough to cut allowed j_peak by ~40%).
  EXPECT_GT(h.h_all_hot / h.h_isolated, 2.0);
  EXPECT_LT(h.h_all_hot / h.h_isolated, 30.0);
}

TEST(ArraySection, LowerLevelsRunHotterPerUnitHeating) {
  // With all lines heated, M1 (closest to silicon) has the smallest rise?
  // No: M1 is best heat-sunk, so its *self* coefficient is smallest.
  const auto arr = make_array_section(paper_array());
  const auto h1 = array_heating_coefficients(arr, 1, coarse());
  const auto h4 = array_heating_coefficients(arr, 4, coarse());
  EXPECT_LT(h1.h_isolated, h4.h_isolated);
  EXPECT_LT(h1.h_all_hot, h4.h_all_hot);
}

TEST(ArraySection, MoreNeighborsMoreCoupling) {
  ArraySpec narrow = paper_array();
  narrow.lines_per_level = 3;
  ArraySpec wide = paper_array();
  wide.lines_per_level = 9;
  const auto h_narrow =
      array_heating_coefficients(make_array_section(narrow), 4, coarse());
  const auto h_wide =
      array_heating_coefficients(make_array_section(wide), 4, coarse());
  EXPECT_GT(h_wide.h_all_hot, h_narrow.h_all_hot);
  // Isolated victim heating is insensitive to the neighbor count.
  EXPECT_NEAR(h_wide.h_isolated, h_narrow.h_isolated,
              0.15 * h_narrow.h_isolated);
}

TEST(ArraySection, RejectsBadSpec) {
  ArraySpec spec = paper_array();
  spec.lines_per_level = 0;
  EXPECT_THROW(make_array_section(spec), std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::thermal
