// Analytic thermal impedance / self-heating model tests (paper Eqs. 8-15).
#include <gtest/gtest.h>

#include <cmath>

#include "materials/metal.h"
#include "numeric/constants.h"
#include "thermal/impedance.h"

namespace dsmt::thermal {
namespace {

tech::DielectricStack uniform_oxide(double b) {
  tech::DielectricStack s;
  s.slabs.push_back({b, 1.15, false});
  return s;
}

TEST(EffectiveWidth, Quasi1DAndQuasi2D) {
  EXPECT_NEAR(effective_width(um(3.0), um(3.0), kPhiQuasi1D), um(5.64), 1e-12);
  EXPECT_NEAR(effective_width(um(0.35), um(1.2), kPhiQuasi2D), um(3.29),
              1e-12);
  EXPECT_THROW(effective_width(metres(0.0), um(1.0), 0.88),
               std::invalid_argument);
}

TEST(RthPerLength, UniformMatchesStackForm) {
  const auto b = um(3.0), weff = um(5.64);
  EXPECT_NEAR(rth_per_length(uniform_oxide(b), weff),
              rth_per_length_uniform(b, W_per_mK(1.15), weff), 1e-15);
}

TEST(RthPerLength, LayeredStackIsSeriesSum) {
  tech::DielectricStack s;
  s.slabs.push_back({um(1.0), 1.15, false});
  s.slabs.push_back({um(0.5), 0.25, true});
  const auto weff = um(4.0);
  const double expected = (um(1.0) / 1.15 + um(0.5) / 0.25) / weff;
  EXPECT_NEAR(rth_per_length(s, weff), expected, 1e-15);
}

TEST(ThetaLine, Figure5ScaleCheck) {
  // Quasi-2D model for W = 0.35 um, t_ox = 1.2 um, L = 1000 um gives a
  // whole-line impedance of a few hundred K/W.
  const auto weff = effective_width(um(0.35), um(1.2), kPhiQuasi2D);
  const double theta = theta_line(uniform_oxide(um(1.2)), weff, um(1000));
  EXPECT_GT(theta, 200.0);
  EXPECT_LT(theta, 500.0);
}

TEST(DeltaT, ScalesWithJSquared) {
  const auto cu = materials::make_copper();
  const auto rth = K_m_per_W(0.3);
  const double d1 = delta_t_at(MA_per_cm2(1.0), cu, kTrefK, um(1), um(1), rth);
  const double d2 = delta_t_at(MA_per_cm2(2.0), cu, kTrefK, um(1), um(1), rth);
  EXPECT_NEAR(d2 / d1, 4.0, 1e-12);
}

TEST(SelfHeating, ClosedFormSatisfiesFixedPoint) {
  const auto cu = materials::make_copper();
  const auto rth = K_m_per_W(0.4);
  const auto w = um(2), t = um(1);
  const auto j = MA_per_cm2(3.0);
  const auto sol = solve_self_heating(j, cu, w, t, rth, kTrefK);
  ASSERT_FALSE(sol.runaway);
  // Verify: delta_t == j^2 rho(T_m) t w rth at the solution temperature.
  const double dt_check = delta_t_at(j, cu, sol.t_metal, w, t, rth);
  EXPECT_NEAR(sol.delta_t, dt_check, 1e-9 * std::max(1.0, sol.delta_t.value()));
  EXPECT_GT(sol.delta_t, 0.0);
}

TEST(SelfHeating, RunawayFlaggedAtHugeCurrent) {
  const auto cu = materials::make_copper();
  const auto sol = solve_self_heating(MA_per_cm2(500.0), cu, um(2), um(1),
                                      K_m_per_W(0.4), kTrefK);
  EXPECT_TRUE(sol.runaway);
}

TEST(SelfHeating, ZeroCurrentNoRise) {
  const auto cu = materials::make_copper();
  const auto sol = solve_self_heating(A_per_m2(0.0), cu, um(2), um(1),
                                      K_m_per_W(0.4), kTrefK);
  EXPECT_DOUBLE_EQ(sol.delta_t, 0.0);
  EXPECT_DOUBLE_EQ(sol.t_metal, kTrefK);
}

// Property: jrms_for_temperature inverts the heating relation across a sweep
// of temperatures.
class JrmsInverse : public ::testing::TestWithParam<double> {};

TEST_P(JrmsInverse, RoundTrip) {
  const auto cu = materials::make_copper();
  const auto t_m = kTrefK + kelvin_delta(GetParam());
  const auto rth = K_m_per_W(0.35);
  const auto w = um(1.5), t = um(0.8);
  const auto j = jrms_for_temperature(cu, t_m, kTrefK, w, t, rth);
  const double dt = delta_t_at(j, cu, t_m, w, t, rth);
  EXPECT_NEAR(dt, t_m - kTrefK, 1e-9 * (t_m - kTrefK));
}

INSTANTIATE_TEST_SUITE_P(TemperatureRises, JrmsInverse,
                         ::testing::Values(0.5, 1.0, 5.0, 10.0, 25.0, 50.0,
                                           100.0, 200.0));

TEST(JrmsForTemperature, ZeroAtOrBelowReference) {
  const auto cu = materials::make_copper();
  EXPECT_DOUBLE_EQ(jrms_for_temperature(cu, kTrefK, kTrefK, um(1), um(1),
                                        K_m_per_W(0.3)),
                   0.0);
}

}  // namespace
}  // namespace dsmt::thermal
