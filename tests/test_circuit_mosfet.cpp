// Alpha-power-law MOSFET model tests.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/netlist.h"

namespace dsmt::circuit {
namespace {

MosfetParams nmos() {
  return {MosType::kNmos, 0.5, 2.5, 3e-4, 1.3, 1.0, 0.02, 1.0};
}
MosfetParams pmos() {
  return {MosType::kPmos, 0.5, 2.5, 1.4e-4, 1.3, 1.0, 0.02, 1.0};
}

TEST(Mosfet, CutoffOnlyLeaks) {
  const auto op = mosfet_evaluate(nmos(), 2.5, 0.3, 0.0);  // vgs < vt
  EXPECT_LT(std::abs(op.id), 1e-10);
}

TEST(Mosfet, FullOnSaturationCurrent) {
  // vgs = vdd, vds = vdd: Id = idsat * (1 + lambda (vds - vdsat)).
  const auto p = nmos();
  const auto op = mosfet_evaluate(p, 2.5, 2.5, 0.0);
  const double expected = p.idsat * (1.0 + p.lambda * (2.5 - p.vdsat0));
  EXPECT_NEAR(op.id, expected, 1e-3 * expected);
}

TEST(Mosfet, SizeScalesCurrentLinearly) {
  auto p = nmos();
  const double i1 = mosfet_evaluate(p, 2.5, 2.5, 0.0).id;
  p.size = 25.0;
  EXPECT_NEAR(mosfet_evaluate(p, 2.5, 2.5, 0.0).id, 25.0 * i1, 1e-9);
}

TEST(Mosfet, LinearRegionBelowSaturation) {
  const auto p = nmos();
  const double i_lin = mosfet_evaluate(p, 0.1, 2.5, 0.0).id;
  const double i_sat = mosfet_evaluate(p, 2.0, 2.5, 0.0).id;
  EXPECT_LT(i_lin, i_sat);
  EXPECT_GT(i_lin, 0.0);
  // Deep triode: current roughly proportional to vds.
  const double i_lin2 = mosfet_evaluate(p, 0.2, 2.5, 0.0).id;
  EXPECT_NEAR(i_lin2 / i_lin, 2.0, 0.25);
}

TEST(Mosfet, ContinuousAcrossVdsat) {
  const auto p = nmos();
  const double below = mosfet_evaluate(p, p.vdsat0 - 1e-6, 2.5, 0.0).id;
  const double above = mosfet_evaluate(p, p.vdsat0 + 1e-6, 2.5, 0.0).id;
  EXPECT_NEAR(below, above, 1e-6 * above);
}

TEST(Mosfet, SymmetricUnderTerminalSwap) {
  // Drain/source symmetry: id(vd, vg, vs) = -id(vs, vg, vd).
  const auto p = nmos();
  const double fwd = mosfet_evaluate(p, 1.5, 2.0, 0.5).id;
  const double rev = mosfet_evaluate(p, 0.5, 2.0, 1.5).id;
  EXPECT_NEAR(fwd, -rev, 1e-12);
}

TEST(Mosfet, PmosMirrorsNmos) {
  // PMOS with source at vdd conducting down: current flows INTO the drain
  // terminal is negative of the NMOS mirror.
  const auto op_p = mosfet_evaluate(pmos(), 0.0, 0.0, 2.5);  // on, vsd=2.5
  EXPECT_GT(-op_p.id, 1e-5);  // sources current out of the drain
  const auto off_p = mosfet_evaluate(pmos(), 0.0, 2.5, 2.5);  // vgs=0: off
  EXPECT_LT(std::abs(off_p.id), 1e-10);
}

TEST(Mosfet, AlphaPowerLawExponent) {
  // idsat(vgs) ~ (vgs - vt)^alpha: check the log-log slope.
  const auto p = nmos();
  const double i1 = mosfet_evaluate(p, 2.5, 1.5, 0.0).id;
  const double i2 = mosfet_evaluate(p, 2.5, 2.5, 0.0).id;
  const double slope = std::log(i2 / i1) / std::log((2.5 - p.vt) / (1.5 - p.vt));
  EXPECT_NEAR(slope, p.alpha, 0.08);  // lambda perturbs it slightly
}

TEST(Mosfet, DerivativesMatchSecantCheck) {
  const auto p = nmos();
  const double vd = 1.2, vg = 1.8, vs = 0.1;
  const auto op = mosfet_evaluate(p, vd, vg, vs);
  const double h = 1e-4;
  const double gm_ref = (mosfet_evaluate(p, vd, vg + h, vs).id -
                         mosfet_evaluate(p, vd, vg - h, vs).id) /
                        (2.0 * h);
  EXPECT_NEAR(op.gm, gm_ref, 1e-3 * std::abs(gm_ref) + 1e-12);
  EXPECT_GT(op.gm, 0.0);
  EXPECT_GE(op.gds, 0.0);
}

TEST(Netlist, NodeNamingAndGround) {
  Netlist nl;
  EXPECT_EQ(nl.node("0"), kGround);
  EXPECT_EQ(nl.node("gnd"), kGround);
  const NodeId a = nl.node("a");
  EXPECT_EQ(nl.node("a"), a);  // idempotent
  EXPECT_NE(nl.node("b"), a);
  EXPECT_NE(nl.internal_node(), a);
}

TEST(Netlist, ElementValidation) {
  Netlist nl;
  const NodeId a = nl.node("a");
  EXPECT_THROW(nl.add_resistor(a, kGround, 0.0), std::invalid_argument);
  EXPECT_THROW(nl.add_capacitor(a, kGround, -1e-15), std::invalid_argument);
  nl.add_capacitor(a, kGround, 0.0);  // zero cap silently dropped
  EXPECT_TRUE(nl.capacitors().empty());
}

}  // namespace
}  // namespace dsmt::circuit
