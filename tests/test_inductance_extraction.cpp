// Wire-inductance extraction and RLC-line builder tests.
#include <gtest/gtest.h>

#include "circuit/rcline.h"
#include "extraction/capmodel.h"
#include "numeric/constants.h"

namespace dsmt {
namespace {

TEST(WireInductance, TypicalMagnitudeAndTrends) {
  // On-chip wires run a few hundred pH/mm.
  const double l = extraction::wire_inductance_per_m(um(2.0), um(2.0),
                                                     um(1.6));
  EXPECT_GT(l * 1e6, 0.05);  // nH/mm
  EXPECT_LT(l * 1e6, 1.5);
  // Higher above the plane -> more inductance; wider -> less.
  EXPECT_GT(extraction::wire_inductance_per_m(um(2), um(2), um(5)), l);
  EXPECT_LT(extraction::wire_inductance_per_m(um(6), um(2), um(1.6)), l);
  EXPECT_THROW(extraction::wire_inductance_per_m(0.0, um(1), um(1)),
               std::invalid_argument);
}

TEST(RlcLine, TotalsAndTopology) {
  circuit::Netlist nl;
  const auto a = nl.node("a"), b = nl.node("b");
  circuit::add_rlc_line(nl, a, b, 1e4, 3e-7, 1e-10, 2e-3, 10);
  EXPECT_EQ(nl.resistors().size(), 10u);
  EXPECT_EQ(nl.inductors().size(), 10u);
  double l_total = 0.0, c_total = 0.0;
  for (const auto& ind : nl.inductors()) l_total += ind.l;
  for (const auto& c : nl.capacitors()) c_total += c.c;
  EXPECT_NEAR(l_total, 3e-7 * 2e-3, 1e-15);
  EXPECT_NEAR(c_total, 1e-10 * 2e-3, 1e-20);
}

TEST(RlcLine, Validation) {
  circuit::Netlist nl;
  EXPECT_THROW(
      circuit::add_rlc_line(nl, nl.node("a"), nl.node("b"), 1, 0, 1, 1, 4),
      std::invalid_argument);
  EXPECT_THROW(
      circuit::add_rlc_line(nl, nl.node("a"), nl.node("b"), 1, 1, 1, 1, 0),
      std::invalid_argument);
}

}  // namespace
}  // namespace dsmt
