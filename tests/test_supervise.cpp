// Process-supervision suite (ctest label `supervise`): the crash-contained
// worker pool of src/supervise/. Forks real worker children, kills them with
// armed crash faults (SIGABRT / SIGSEGV / allocation storm under an
// RLIMIT_AS rail), and asserts the contract the supervisor exists to prove:
// the parent survives every child death, every request gets exactly one
// typed terminal answer, a poison hash is quarantined after the configured
// crash threshold, and clean-lane replies stay byte-deterministic through
// the process boundary. Forks processes and arms process-global fault
// plans, so it lives in its own executable like the other chaos suites.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/atomic_file.h"
#include "core/run_context.h"
#include "core/status.h"
#include "numeric/fault_injection.h"
#include "report/json.h"
#include "service/request.h"
#include "service/server.h"
#include "supervise/pool.h"
#include "supervise/protocol.h"
#include "supervise/worker.h"

namespace dsmt::supervise {
namespace {

using core::StatusCode;
using numeric::fault::FaultKind;
using numeric::fault::FaultPlan;
using numeric::fault::ScopedFault;

service::Request wire_request(const std::string& id, double duty = 0.1,
                              double width_um = 0.5) {
  service::Request r;
  r.id = id;
  r.kind = service::RequestKind::kSelfConsistent;
  r.duty_cycle = duty;
  r.wire.width_um = width_um;
  r.wire.thickness_um = 0.9;
  r.wire.dielectric_um = 0.8;
  return r;
}

/// Pool config with every sleep disabled and no sign-off publication, so
/// the suite is fast and leaves no process-global registration behind.
SuperviseConfig quiet_pool(std::size_t workers) {
  SuperviseConfig c;
  c.workers = workers;
  c.service.sleep_on_backoff = false;
  c.service.publish_signoff = false;
  c.sleep_on_restart_backoff = false;
  c.publish_signoff = false;
  c.poll_interval_ms = 5;
  return c;
}

/// Crash plan for the worker-loop chaos hook: requests whose id contains
/// `key` die in the child by `kind` before the solve starts.
FaultPlan crash_plan(FaultKind kind, const std::string& key = "poison") {
  FaultPlan plan;
  plan.kind = kind;
  plan.kernel_substr = "supervise/worker";
  plan.key_substr = key;
  return plan;
}

report::Json payload_of(const ExecuteResult& result) {
  return report::Json::parse(frame_payload(result.frame));
}

std::string field_string(const report::Json& root, const char* key) {
  const report::Json* node = root.find(key);
  return node != nullptr ? node->as_string() : std::string{};
}

// --- IPC protocol -----------------------------------------------------------

TEST(SuperviseProtocol, CanonicalHashIsPureAndContentKeyed) {
  const service::Request a = wire_request("req-a");
  EXPECT_EQ(canonical_request_hash(a), canonical_request_hash(a));
  service::Request copy = a;
  EXPECT_EQ(canonical_request_hash(a), canonical_request_hash(copy));
  // Any content difference — id or physics — changes the key.
  copy.id = "req-b";
  EXPECT_NE(canonical_request_hash(a), canonical_request_hash(copy));
  service::Request hotter = a;
  hotter.duty_cycle = 0.2;
  EXPECT_NE(canonical_request_hash(a), canonical_request_hash(hotter));
}

TEST(SuperviseProtocol, MessageRoundTripAndStrictRejection) {
  const service::Request request = wire_request("round-trip");
  const std::string message = encode_request_message(7, request);

  std::uint64_t seq = 0;
  std::string frame;
  ASSERT_TRUE(split_message(message.data(), message.size(),
                            net::kDefaultMaxFrameBytes, seq, frame));
  EXPECT_EQ(seq, 7u);
  ASSERT_GE(frame.size(), net::kFrameHeaderBytes);
  EXPECT_EQ(frame.substr(0, 4), "DSM1");
  const service::Request decoded =
      service::request_from_json(report::Json::parse(frame_payload(frame)));
  EXPECT_EQ(decoded.id, "round-trip");
  EXPECT_EQ(canonical_request_hash(decoded), canonical_request_hash(request));

  // Short datagram: not even a sequence prefix.
  EXPECT_FALSE(split_message(message.data(), 4, net::kDefaultMaxFrameBytes,
                             seq, frame));
  // Corrupted magic right after the prefix.
  std::string bad_magic = message;
  bad_magic[kSeqPrefixBytes] = 'X';
  EXPECT_FALSE(split_message(bad_magic.data(), bad_magic.size(),
                             net::kDefaultMaxFrameBytes, seq, frame));
  // Declared length must match the datagram exactly (SEQPACKET boundary).
  EXPECT_FALSE(split_message(message.data(), message.size() - 1,
                             net::kDefaultMaxFrameBytes, seq, frame));
  // Payload over the configured cap is refused before any buffering.
  EXPECT_FALSE(split_message(message.data(), message.size(), 4, seq, frame));
}

// --- clean path --------------------------------------------------------------

TEST(WorkerPool, CleanRoundTripForwardsDeterministicWorkerBytes) {
  WorkerPool pool(quiet_pool(1));
  ASSERT_EQ(pool.live_workers(), 1u);

  const service::Request request = wire_request("clean-1");
  const ExecuteResult result = pool.execute(request, 3);
  ASSERT_EQ(result.status, StatusCode::kOk);
  const report::Json root = payload_of(result);
  EXPECT_EQ(field_string(root, "id"), "clean-1");
  EXPECT_EQ(field_string(root, "status"), "ok");

  const SuperviseStats stats = pool.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.replies, 1u);
  EXPECT_EQ(stats.crashes, 0u);
  EXPECT_EQ(stats.forks, 1u);

  // A second, independent fleet serving the same (request, seq) must echo
  // byte-identical reply frames: the worker runs the same deterministic
  // service and the parent forwards its bytes verbatim.
  WorkerPool other(quiet_pool(1));
  const ExecuteResult again = other.execute(request, 3);
  ASSERT_EQ(again.status, StatusCode::kOk);
  EXPECT_EQ(again.frame, result.frame);
}

// --- crash containment -------------------------------------------------------

TEST(WorkerPool, AbortCrashIsTypedContainedAndSurvivable) {
  SuperviseConfig config = quiet_pool(2);
  config.limits.child_fault = crash_plan(FaultKind::kCrashAbort);
  WorkerPool pool(config);

  EXPECT_EQ(pool.execute(wire_request("clean-a"), 1).status, StatusCode::kOk);

  const ExecuteResult crashed = pool.execute(wire_request("poison-a"), 2);
  EXPECT_EQ(crashed.status, StatusCode::kWorkerCrashed);
  const report::Json root = payload_of(crashed);
  EXPECT_EQ(field_string(root, "status"), "worker-crashed");
  EXPECT_NE(field_string(root, "error").find("worker crashed"),
            std::string::npos);

  // The front end survives and the next clean request is served (by the
  // remaining live worker or a lazily reforked slot).
  EXPECT_EQ(pool.execute(wire_request("clean-b"), 4).status, StatusCode::kOk);

  const SuperviseStats stats = pool.stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.replies, 2u);
  EXPECT_GE(stats.forks, 2u);
}

TEST(WorkerPool, SegvCrashContained) {
  SuperviseConfig config = quiet_pool(1);
  config.limits.child_fault = crash_plan(FaultKind::kCrashSegv);
  WorkerPool pool(config);
  // Only the status is asserted: under a sanitizer the invalid store dies
  // by the sanitizer's own trap rather than a raw SIGSEGV, and both are the
  // same event from the supervisor's point of view — a dead child.
  EXPECT_EQ(pool.execute(wire_request("poison-segv"), 1).status,
            StatusCode::kWorkerCrashed);
  EXPECT_EQ(pool.execute(wire_request("clean-after-segv"), 2).status,
            StatusCode::kOk);
  EXPECT_EQ(pool.stats().crashes, 1u);
  EXPECT_GE(pool.stats().restarts, 1u);
}

TEST(WorkerPool, OomCrashDiesInsideTheAddressSpaceRail) {
  SuperviseConfig config = quiet_pool(1);
  config.limits.child_fault = crash_plan(FaultKind::kCrashOom);
  // The rail bounds the allocation storm: the child dies at ~512 MiB
  // instead of dragging the whole machine through real memory pressure.
  config.limits.rlimit_as_bytes = std::uint64_t{512} << 20;
  WorkerPool pool(config);
  // Either the storm is SIGKILLed inside the rail or (under a sanitizer,
  // where RLIMIT_AS breaks shadow mapping) the child dies at startup; both
  // are a contained kWorkerCrashed, never a parent failure.
  EXPECT_EQ(pool.execute(wire_request("poison-oom"), 1).status,
            StatusCode::kWorkerCrashed);
  EXPECT_GE(pool.stats().crashes, 0u);  // startup death is not a solve crash
  EXPECT_EQ(pool.stats().requests, 1u);
}

// --- poison quarantine -------------------------------------------------------

TEST(WorkerPool, QuarantineServesParentAnalyticRungAfterThreshold) {
  SuperviseConfig config = quiet_pool(1);
  config.limits.child_fault = crash_plan(FaultKind::kCrashAbort);
  config.quarantine_threshold = 2;
  config.quarantine_analytic_bound = true;
  WorkerPool pool(config);

  const service::Request poison = wire_request("poison-q");
  EXPECT_EQ(pool.execute(poison, 1).status, StatusCode::kWorkerCrashed);
  EXPECT_EQ(pool.execute(poison, 2).status, StatusCode::kWorkerCrashed);

  // Third occurrence never reaches a worker: the parent answers from the
  // iteration-free analytic rung, degraded and conservative.
  const ExecuteResult refused = pool.execute(poison, 3);
  ASSERT_EQ(refused.status, StatusCode::kOk);
  const report::Json root = payload_of(refused);
  ASSERT_NE(root.find("degraded"), nullptr);
  EXPECT_TRUE(root.find("degraded")->as_bool());
  EXPECT_EQ(root.find("degradation_level")->as_integer(), 2);
  EXPECT_TRUE(root.find("conservative")->as_bool());
  const report::Json* solution = root.find("solution");
  ASSERT_NE(solution, nullptr);
  EXPECT_GT(solution->find("j_rms_MA_cm2")->as_number(), 0.0);

  const SuperviseStats stats = pool.stats();
  EXPECT_EQ(stats.crashes, 2u);
  EXPECT_EQ(stats.quarantined_hashes, 1u);
  EXPECT_EQ(stats.quarantine_refusals, 1u);

  // The quarantine table is published for ping frames and sign-off.
  const report::Json doc = pool.supervise_json();
  const report::Json* table = doc.find("quarantine");
  ASSERT_NE(table, nullptr);
  ASSERT_EQ(table->size(), 1u);
  EXPECT_TRUE(table->at(0).find("quarantined")->as_bool());
  EXPECT_EQ(table->at(0).find("crashes")->as_integer(), 2);

  // Clean traffic still flows on a fresh worker.
  EXPECT_EQ(pool.execute(wire_request("clean-q"), 4).status, StatusCode::kOk);
}

TEST(WorkerPool, QuarantineIsTypedErrorWithoutTheAnalyticRung) {
  SuperviseConfig config = quiet_pool(1);
  config.limits.child_fault = crash_plan(FaultKind::kCrashAbort);
  config.quarantine_threshold = 2;
  config.quarantine_analytic_bound = false;
  WorkerPool pool(config);

  const service::Request poison = wire_request("poison-e");
  EXPECT_EQ(pool.execute(poison, 1).status, StatusCode::kWorkerCrashed);
  EXPECT_EQ(pool.execute(poison, 2).status, StatusCode::kWorkerCrashed);

  const ExecuteResult refused = pool.execute(poison, 3);
  EXPECT_EQ(refused.status, StatusCode::kWorkerCrashed);
  EXPECT_NE(field_string(payload_of(refused), "error").find("quarantined"),
            std::string::npos);
  EXPECT_EQ(pool.stats().crashes, 2u);  // refusals do not reach workers
}

// --- datagram capacity -------------------------------------------------------

TEST(WorkerPool, OversizeRequestIsTypedRefusalNotACrash) {
  // A request whose encoded message exceeds the (clamped) payload cap must
  // never be offered to the kernel: SEQPACKET refuses it with EMSGSIZE on a
  // LIVE child, and mistaking that for a crash used to blocking-wait on a
  // worker that never died.
  SuperviseConfig config = quiet_pool(1);
  config.max_payload_bytes = 4096;
  WorkerPool pool(config);
  ASSERT_EQ(pool.payload_cap(), 4096u);

  const service::Request fat = wire_request(std::string(12 * 1024, 'x'));
  const ExecuteResult refused = pool.execute(fat, 1);
  EXPECT_EQ(refused.status, StatusCode::kInvalidInput);
  EXPECT_NE(field_string(payload_of(refused), "error")
                .find("datagram capacity"),
            std::string::npos);

  // The worker never saw the request and is still in service: the next
  // clean request is answered by the SAME child — no crash, no refork.
  EXPECT_EQ(pool.live_workers(), 1u);
  EXPECT_EQ(pool.execute(wire_request("small-after-fat"), 2).status,
            StatusCode::kOk);

  const SuperviseStats stats = pool.stats();
  EXPECT_EQ(stats.oversize_refusals, 1u);
  EXPECT_EQ(stats.crashes, 0u);
  EXPECT_EQ(stats.restarts, 0u);
  EXPECT_EQ(stats.forks, 1u);
}

TEST(WorkerPool, OversizeReplyKeepsResultsAndElidesOnlyTheDiag) {
  // Fatten the reply's diag chain deterministically: exhausting the child's
  // solver iterations drives the retry schedule and the degradation ladder,
  // which append several records (plus backoff_ns) to a still-kOk response.
  SuperviseConfig config = quiet_pool(1);
  config.limits.child_fault.kind = FaultKind::kExhaustIterations;
  config.limits.child_fault.kernel_substr = "selfconsistent";
  config.limits.child_fault.at_iteration = 1;

  const service::Request request = wire_request("fat-diag");
  std::size_t full_payload = 0;
  {
    WorkerPool wide(config);
    const ExecuteResult full = wide.execute(request, 9);
    ASSERT_EQ(full.status, StatusCode::kOk);
    ASSERT_GT(full.frame.size(), net::kFrameHeaderBytes);
    full_payload = full.frame.size() - net::kFrameHeaderBytes;
  }

  // One byte under the full reply: the worker must elide the diag chain,
  // NOT the numeric results, and NOT report a hollow kOk or a crash.
  SuperviseConfig tight = config;
  tight.max_payload_bytes = full_payload - 1;
  WorkerPool pool(tight);
  const ExecuteResult elided = pool.execute(request, 9);
  ASSERT_EQ(elided.status, StatusCode::kOk);
  const report::Json root = payload_of(elided);
  EXPECT_EQ(field_string(root, "id"), "fat-diag");
  const report::Json* solution = root.find("solution");
  ASSERT_NE(solution, nullptr);
  EXPECT_GT(solution->find("j_rms_MA_cm2")->as_number(), 0.0);
  EXPECT_NE(elided.frame.find("diag chain elided"), std::string::npos);

  const SuperviseStats stats = pool.stats();
  EXPECT_EQ(stats.replies, 1u);
  EXPECT_EQ(stats.crashes, 0u);
}

// --- deadline kills vs quarantine --------------------------------------------

TEST(WorkerPool, ReplyDeadlineKillCountsTowardQuarantine) {
  // kCrashStall wedges the child in an endless sleep: only the supervised
  // reply deadline — measured from the successful send, so provably spent
  // inside the worker — can resolve it, and that kill DOES indict the hash.
  SuperviseConfig config = quiet_pool(1);
  config.limits.child_fault = crash_plan(FaultKind::kCrashStall);
  config.reply_deadline_ns = 80ull * 1000 * 1000;
  config.quarantine_threshold = 2;
  config.quarantine_analytic_bound = true;
  WorkerPool pool(config);

  const service::Request poison = wire_request("poison-stall");
  const ExecuteResult first = pool.execute(poison, 1);
  EXPECT_EQ(first.status, StatusCode::kDeadlineExceeded);
  EXPECT_NE(field_string(payload_of(first), "error").find("reply deadline"),
            std::string::npos);
  // The second attempt exercises the lazy refork (through the fork broker,
  // from this thread — which is not the thread the pool was built on).
  EXPECT_EQ(pool.execute(poison, 2).status, StatusCode::kDeadlineExceeded);

  // Two pool-deadline kills reach the threshold: the parent's analytic rung
  // answers without any worker (or any 80 ms wait).
  const ExecuteResult refused = pool.execute(poison, 3);
  ASSERT_EQ(refused.status, StatusCode::kOk);
  EXPECT_TRUE(payload_of(refused).find("degraded")->as_bool());

  const SuperviseStats stats = pool.stats();
  EXPECT_EQ(stats.deadline_kills, 2u);
  EXPECT_EQ(stats.crashes, 2u);
  EXPECT_EQ(stats.quarantined_hashes, 1u);
  EXPECT_EQ(stats.quarantine_refusals, 1u);
}

TEST(WorkerPool, AmbientDeadlineKillDoesNotQuarantine) {
  // An ambient (caller-budget) expiry may have burnt its budget queueing or
  // in restart backoff before the child ever started: the worker is killed
  // so the lane frees, but the request's hash is NOT indicted — two queue
  // delays must never add up to a permanent quarantine of a valid request.
  SuperviseConfig config = quiet_pool(1);
  config.limits.child_fault = crash_plan(FaultKind::kCrashStall);
  config.quarantine_threshold = 1;  // a single counted kill would quarantine
  WorkerPool pool(config);

  const service::Request poison = wire_request("poison-ambient");
  {
    const core::RunContext context =
        core::RunContext::with_deadline_after(std::chrono::milliseconds(60));
    core::ScopedRunContext scope(context);
    const ExecuteResult killed = pool.execute(poison, 1);
    EXPECT_EQ(killed.status, StatusCode::kDeadlineExceeded);
    EXPECT_NE(field_string(payload_of(killed), "error").find("interrupted"),
              std::string::npos);
  }

  const SuperviseStats stats = pool.stats();
  EXPECT_EQ(stats.deadline_kills, 1u);
  EXPECT_EQ(stats.crashes, 0u);
  EXPECT_EQ(stats.quarantined_hashes, 0u);
  const report::Json doc = pool.supervise_json();
  const report::Json* table = doc.find("quarantine");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->size(), 0u);

  // Unquarantined and off the ambient clock, a clean request flows again
  // through a freshly reforked worker.
  EXPECT_EQ(pool.execute(wire_request("clean-after-ambient"), 2).status,
            StatusCode::kOk);
}

// --- concurrency -------------------------------------------------------------

TEST(WorkerPool, ConcurrentStormAnswersEveryRequestExactlyOnce) {
  SuperviseConfig config = quiet_pool(3);
  config.limits.child_fault = crash_plan(FaultKind::kCrashAbort);
  config.quarantine_threshold = 2;
  WorkerPool pool(config);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 30;
  std::vector<std::vector<StatusCode>> results(kThreads);
  std::vector<int> clean_failures(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Two poison identities shared across all threads, so their hashes
        // accrue crashes fleet-wide and quarantine mid-storm.
        const bool poison = i % 5 == 0;
        const service::Request request =
            poison ? wire_request("poison-" + std::to_string(i / 5 % 2))
                   : wire_request("clean-" + std::to_string(t) + "-" +
                                  std::to_string(i));
        const ExecuteResult result = pool.execute(
            request, static_cast<std::uint64_t>(t * kPerThread + i));
        EXPECT_FALSE(result.frame.empty());
        results[t].push_back(result.status);
        if (!poison && result.status != StatusCode::kOk) ++clean_failures[t];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::size_t total = 0;
  for (int t = 0; t < kThreads; ++t) {
    total += results[t].size();
    EXPECT_EQ(clean_failures[t], 0) << "thread " << t;
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kThreads * kPerThread));

  const SuperviseStats stats = pool.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kThreads * kPerThread));
  // Both poison hashes end up quarantined; racing lanes may land a few
  // extra crashes past the threshold before the table closes.
  EXPECT_EQ(stats.quarantined_hashes, 2u);
  EXPECT_GE(stats.crashes, 2u);
  EXPECT_GE(stats.quarantine_refusals, 1u);
}

TEST(WorkerPool, ShutdownRefusesNewWorkAndIsIdempotent) {
  WorkerPool pool(quiet_pool(2));
  EXPECT_EQ(pool.live_workers(), 2u);
  pool.shutdown();
  pool.shutdown();  // idempotent
  EXPECT_EQ(pool.live_workers(), 0u);
  const ExecuteResult refused = pool.execute(wire_request("late"), 1);
  EXPECT_EQ(refused.status, StatusCode::kCancelled);
  EXPECT_FALSE(refused.frame.empty());
}

// --- crash-safe artifacts under process death --------------------------------

TEST(AtomicFileCrash, KilledWriterNeverTearsTheTarget) {
  const std::string path = ::testing::TempDir() + "dsmt_atomic_kill.txt";
  const std::string old_content =
      "OLD:" + std::string(64 * 1024, 'a') + "\nEND\n";
  const std::string new_content =
      "NEW:" + std::string(64 * 1024, 'b') + "\nEND\n";
  core::atomic_write_file(path, old_content);

  for (int round = 0; round < 5; ++round) {
    const ::pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // CHILD: hammer the target with atomic rewrites until killed. Never
      // unwind back into gtest.
      for (int i = 0; i < 100000; ++i) {
        try {
          core::atomic_write_file(path, new_content);
        } catch (...) {
          ::_exit(7);
        }
      }
      ::_exit(0);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2 + 3 * round));
    (void)::kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);

    // Whatever instant the SIGKILL landed, the target is one complete
    // generation — never a torn intermediate, never the temp file.
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream content;
    content << in.rdbuf();
    const std::string seen = content.str();
    EXPECT_TRUE(seen == old_content || seen == new_content)
        << "round " << round << ": torn file of " << seen.size() << " bytes";
  }
  (void)std::remove(path.c_str());
}

// --- allocation failure at the service boundary ------------------------------

TEST(ServiceAdmission, BadAllocDuringSolveIsShedAsOverload) {
  // kThrowBadAlloc makes the solver's residual filter throw std::bad_alloc;
  // the service must classify it as overload (shed, retry elsewhere), not
  // as bad input, and must not mask memory pressure with the ladder.
  FaultPlan plan;
  plan.kind = FaultKind::kThrowBadAlloc;
  plan.kernel_substr = "numeric/";
  ScopedFault fault(plan);

  service::ServerConfig config;
  config.sleep_on_backoff = false;
  config.publish_signoff = false;
  service::Server server(config);
  const service::Response resp = server.handle(wire_request("heap-gone"), 1);
  EXPECT_EQ(resp.status, StatusCode::kRejectedOverload);
  EXPECT_NE(resp.error.find("allocation failure"), std::string::npos);
  EXPECT_EQ(server.metrics().shed, 1u);
}

}  // namespace
}  // namespace dsmt::supervise
