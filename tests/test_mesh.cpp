// Graded-axis mesh helper tests.
#include <gtest/gtest.h>

#include "numeric/mesh.h"

namespace dsmt::numeric {
namespace {

TEST(GradedAxis, CoversDomainAndHitsBreakpoints) {
  const auto edges = graded_axis({0.3e-6, 0.7e-6}, 0.0, 2e-6, 0.05e-6,
                                 0.5e-6);
  EXPECT_DOUBLE_EQ(edges.front(), 0.0);
  EXPECT_DOUBLE_EQ(edges.back(), 2e-6);
  // Breakpoints appear as edges.
  bool has_03 = false, has_07 = false;
  for (double e : edges) {
    if (std::abs(e - 0.3e-6) < 1e-15) has_03 = true;
    if (std::abs(e - 0.7e-6) < 1e-15) has_07 = true;
  }
  EXPECT_TRUE(has_03);
  EXPECT_TRUE(has_07);
  // Strictly increasing, cells within the grading bounds (with slack for
  // interval subdivision rounding).
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_GT(edges[i], edges[i - 1]);
    EXPECT_LE(edges[i] - edges[i - 1], 0.5e-6 * 1.0001);
  }
}

TEST(GradedAxis, DropsOutOfDomainAndCoincidentPoints) {
  const auto edges =
      graded_axis({-1.0, 0.5e-6, 0.5e-6 + 1e-12, 9.0}, 0.0, 1e-6, 0.1e-6,
                  0.5e-6);
  EXPECT_DOUBLE_EQ(edges.front(), 0.0);
  EXPECT_DOUBLE_EQ(edges.back(), 1e-6);
  for (std::size_t i = 1; i < edges.size(); ++i)
    EXPECT_GT(edges[i] - edges[i - 1], 1e-9);  // no near-duplicate edges
}

TEST(AxisCells, CentersAndSizes) {
  const auto cells = axis_cells({0.0, 1.0, 3.0});
  ASSERT_EQ(cells.center.size(), 2u);
  EXPECT_DOUBLE_EQ(cells.center[0], 0.5);
  EXPECT_DOUBLE_EQ(cells.size[1], 2.0);
}

}  // namespace
}  // namespace dsmt::numeric
