// General-waveform self-consistent evaluation tests (Hunter Part II).
#include <gtest/gtest.h>

#include <cmath>

#include "numeric/constants.h"
#include "selfconsistent/waveform.h"
#include "tech/ntrs.h"
#include "thermal/impedance.h"

namespace dsmt::selfconsistent {
namespace {

Problem base_problem() {
  Problem p;
  p.metal = materials::make_copper();
  p.j0 = MA_per_cm2(0.6);
  const auto weff =
      thermal::effective_width(um(3.0), um(3.0), thermal::kPhiQuasi1D);
  const auto rth = thermal::rth_per_length_uniform(um(3.0), W_per_mK(1.15), weff);
  p.heating_coefficient = heating_coefficient(um(3.0), um(0.5), rth);
  return p;
}

std::pair<std::vector<double>, std::vector<double>> rectangular(
    double r, double amplitude, int n = 20001) {
  std::vector<double> t(n), j(n);
  for (int i = 0; i < n; ++i) {
    t[i] = static_cast<double>(i) / (n - 1);
    j[i] = (t[i] <= r) ? amplitude : 0.0;
  }
  return {t, j};
}

TEST(ScWaveform, ShapeOfRectangle) {
  auto [t, j] = rectangular(0.25, MA_per_cm2(2.0));
  const auto s = measure_shape(t, j);
  EXPECT_NEAR(s.duty_effective, 0.25, 0.01);
  EXPECT_NEAR(s.peak, MA_per_cm2(2.0), 1.0);
  EXPECT_NEAR(s.avg_abs_over_peak, 0.25, 0.01);
}

TEST(ScWaveform, RectangleMatchesDutyCycleSolve) {
  // Evaluating a rectangular waveform must reproduce the classic Eq. 13
  // solve at the same r.
  auto [t, j] = rectangular(0.1, MA_per_cm2(1.0));
  const auto v = evaluate_waveform(base_problem(), t, j);
  Problem p = base_problem();
  p.duty_cycle = 0.1;
  const auto direct = solve(p);
  EXPECT_NEAR(v.limit.j_peak, direct.j_peak, 0.02 * direct.j_peak);
}

TEST(ScWaveform, MarginScalesInverselyWithAmplitude) {
  auto [t1, j1] = rectangular(0.1, MA_per_cm2(1.0));
  auto [t2, j2] = rectangular(0.1, MA_per_cm2(2.0));
  const auto v1 = evaluate_waveform(base_problem(), t1, j1);
  const auto v2 = evaluate_waveform(base_problem(), t2, j2);
  EXPECT_NEAR(v1.amplitude_margin / v2.amplitude_margin, 2.0, 0.02);
}

TEST(ScWaveform, PassFailBoundary) {
  // A waveform exactly at the limit has margin 1; scaled above, it fails.
  auto [t, j] = rectangular(0.1, MA_per_cm2(1.0));
  const auto v = evaluate_waveform(base_problem(), t, j);
  std::vector<double> j_at_limit(j.size());
  for (std::size_t i = 0; i < j.size(); ++i)
    j_at_limit[i] = j[i] * v.amplitude_margin * 1.05;
  const auto v_over = evaluate_waveform(base_problem(), t, j_at_limit);
  EXPECT_FALSE(v_over.pass);
  EXPECT_NEAR(v_over.amplitude_margin, 1.0 / 1.05, 0.02);
}

TEST(ScWaveform, BipolarTriangleHasHigherREff) {
  // Triangular bipolar pulse: rms/peak ratio differs from a rectangle;
  // r_eff must reflect the true heating.
  const int n = 20001;
  std::vector<double> t(n), j(n);
  for (int i = 0; i < n; ++i) {
    t[i] = static_cast<double>(i) / (n - 1);
    // Two triangular lobes of opposite sign, each of width 0.2.
    const double x = t[i];
    if (x < 0.2)
      j[i] = MA_per_cm2(1.0) * (1.0 - std::abs(x - 0.1) / 0.1);
    else if (x >= 0.5 && x < 0.7)
      j[i] = -MA_per_cm2(1.0) * (1.0 - std::abs(x - 0.6) / 0.1);
    else
      j[i] = 0.0;
  }
  const auto s = measure_shape(t, j);
  // Each triangle contributes peak^2*width/3: r_eff = 2*0.2/3 = 0.1333.
  EXPECT_NEAR(s.duty_effective, 2.0 * 0.2 / 3.0, 0.005);
  const auto v = evaluate_waveform(base_problem(), t, j);
  EXPECT_TRUE(v.limit.converged);
}

TEST(ScWaveform, BipolarRecoveryRaisesTheLimit) {
  // A symmetric bipolar square wave: same heating as its unipolar |j|
  // counterpart, but EM recovery grants a higher allowed amplitude.
  const int n = 20001;
  std::vector<double> t(n), j(n);
  for (int i = 0; i < n; ++i) {
    t[i] = static_cast<double>(i) / (n - 1);
    const double x = t[i];
    if (x < 0.1)
      j[i] = MA_per_cm2(1.0);
    else if (x >= 0.5 && x < 0.6)
      j[i] = -MA_per_cm2(1.0);
    else
      j[i] = 0.0;
  }
  const auto unipolar = evaluate_waveform(base_problem(), t, j);
  const auto partial = evaluate_waveform_bipolar(base_problem(), t, j, 0.5);
  const auto full = evaluate_waveform_bipolar(base_problem(), t, j, 1.0);
  EXPECT_GT(partial.amplitude_margin, unipolar.amplitude_margin);
  EXPECT_GT(full.amplitude_margin, partial.amplitude_margin);
  // gamma = 0 still credits polarity separation (each lobe damages only
  // its own direction), so it sits above the conservative |j| treatment
  // but below any nonzero recovery.
  const auto none = evaluate_waveform_bipolar(base_problem(), t, j, 0.0);
  EXPECT_GT(none.amplitude_margin, unipolar.amplitude_margin);
  EXPECT_LE(none.amplitude_margin, partial.amplitude_margin * 1.0001);
  // Even with full recovery the thermal side still caps the amplitude.
  EXPECT_TRUE(std::isfinite(full.limit.j_peak));
  EXPECT_GT(full.limit.t_metal, base_problem().t_ref);
}

TEST(ScWaveform, RejectsDegenerateInput) {
  EXPECT_THROW(measure_shape({0.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(measure_shape({0.0, 1.0}, {0.0, 0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::selfconsistent
