// Material property tests, including the paper's Table 1 values.
#include <gtest/gtest.h>

#include "materials/dielectric.h"
#include "materials/metal.h"
#include "numeric/constants.h"

namespace dsmt::materials {
namespace {

TEST(Metal, ResistivityLinearInTemperature) {
  const Metal cu = make_copper();
  const double rho_ref = cu.resistivity(cu.t_ref);
  EXPECT_DOUBLE_EQ(rho_ref, cu.rho_ref);
  const double rho_150 = cu.resistivity(cu.t_ref + 50.0);
  EXPECT_NEAR(rho_150 / rho_ref, 1.0 + 50.0 * cu.tcr, 1e-12);
}

TEST(Metal, PaperCopperModel) {
  // Fig. 2 caption: rho = 1.67 uOhm-cm at T_ref with TCR 6.8e-3 / degC.
  const Metal cu = make_copper();
  EXPECT_DOUBLE_EQ(cu.rho_ref, dsmt::uohm_cm(1.67));
  EXPECT_DOUBLE_EQ(cu.tcr, 6.8e-3);
  EXPECT_DOUBLE_EQ(cu.t_ref, dsmt::kTrefK);
}

TEST(Metal, ResistivityClampedAtLowTemperature) {
  const Metal cu = make_copper();
  EXPECT_GT(cu.resistivity(1.0), 0.0);
}

TEST(Metal, AlCuMeltsBeforeCopper) {
  EXPECT_LT(make_alcu().t_melt, make_copper().t_melt);
}

TEST(Metal, AlCuMoreResistiveThanCopper) {
  const double t = dsmt::kTrefK;
  EXPECT_GT(make_alcu().resistivity(t), make_copper().resistivity(t));
}

TEST(Metal, SheetResistance) {
  const Metal cu = make_copper();
  // 1 um film: R_sheet = rho / t.
  EXPECT_NEAR(cu.sheet_resistance(1e-6, cu.t_ref), cu.rho_ref / 1e-6, 1e-12);
  EXPECT_THROW(cu.sheet_resistance(0.0, cu.t_ref), std::invalid_argument);
}

TEST(Metal, LookupByName) {
  EXPECT_EQ(metal_by_name("cu").name, "Cu");
  EXPECT_EQ(metal_by_name("Cu").name, "Cu");
  EXPECT_EQ(metal_by_name("ALCU").name, "AlCu");
  EXPECT_EQ(metal_by_name("w").name, "W");
  EXPECT_THROW(metal_by_name("unobtainium"), std::out_of_range);
}

TEST(Metal, EmDefaults) {
  const Metal alcu = make_alcu();
  EXPECT_DOUBLE_EQ(alcu.em.activation_energy_ev, 0.7);  // paper Section 2.2
  EXPECT_DOUBLE_EQ(alcu.em.current_exponent, 2.0);
  EXPECT_DOUBLE_EQ(alcu.em.design_rule_javg, dsmt::MA_per_cm2(0.6));
}

TEST(Dielectric, PaperTable1ThermalConductivities) {
  EXPECT_DOUBLE_EQ(make_oxide().k_thermal, 1.15);      // PETEOS
  EXPECT_DOUBLE_EQ(make_hsq().k_thermal, 0.60);        // HSQ
  EXPECT_DOUBLE_EQ(make_polyimide().k_thermal, 0.25);  // polyimide
}

TEST(Dielectric, LowKHasLowerPermittivityThanOxide) {
  const double k_ox = make_oxide().rel_permittivity;
  EXPECT_LT(make_hsq().rel_permittivity, k_ox);
  EXPECT_LT(make_polyimide().rel_permittivity, k_ox);
  EXPECT_LT(make_aerogel().rel_permittivity, k_ox);
}

TEST(Dielectric, LookupByName) {
  EXPECT_EQ(dielectric_by_name("sio2").name, "Oxide");
  EXPECT_EQ(dielectric_by_name("HSQ").name, "HSQ");
  EXPECT_EQ(dielectric_by_name("pi").name, "Polyimide");
  EXPECT_THROW(dielectric_by_name("vacuumite"), std::out_of_range);
}

TEST(Dielectric, PaperSetOrder) {
  const auto d = paper_dielectrics();
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0].name, "Oxide");
  EXPECT_EQ(d[1].name, "HSQ");
  EXPECT_EQ(d[2].name, "Polyimide");
}

// Property: every registered metal has physically sane parameters.
class MetalInvariants : public ::testing::TestWithParam<const char*> {};

TEST_P(MetalInvariants, PhysicallySane) {
  const Metal m = metal_by_name(GetParam());
  EXPECT_GT(m.rho_ref, 1e-9);
  EXPECT_LT(m.rho_ref, 1e-6);
  EXPECT_GT(m.tcr, 0.0);
  EXPECT_GT(m.k_thermal, 50.0);
  EXPECT_GT(m.c_volumetric, 1e6);
  EXPECT_GT(m.t_melt, 600.0);
  EXPECT_GT(m.latent_heat, 1e8);
  EXPECT_GT(m.em.activation_energy_ev, 0.3);
  EXPECT_GT(m.em.design_rule_javg, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllMetals, MetalInvariants,
                         ::testing::Values("cu", "alcu", "al", "w"));

class DielectricInvariants : public ::testing::TestWithParam<const char*> {};

TEST_P(DielectricInvariants, PhysicallySane) {
  const Dielectric d = dielectric_by_name(GetParam());
  EXPECT_GE(d.rel_permittivity, 1.0);
  EXPECT_GT(d.k_thermal, 0.0);
  EXPECT_LT(d.k_thermal, 2.0);
}

INSTANTIATE_TEST_SUITE_P(AllDielectrics, DielectricInvariants,
                         ::testing::Values("oxide", "hsq", "polyimide", "fsg",
                                           "aerogel", "air"));

}  // namespace
}  // namespace dsmt::materials
