// Table / CSV reporting tests, plus the JSON schema of solver diagnostics
// and run resilience state.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/run_context.h"
#include "core/status.h"
#include "report/diagnostics.h"
#include "report/table.h"

namespace dsmt::report {
namespace {

TEST(Table, AlignedRendering) {
  Table t({"Metal", "j_peak"});
  t.add_row({"M5", "1.25"});
  t.add_row({"M6", "0.99"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Metal"), std::string::npos);
  EXPECT_NE(s.find("M6"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  // All lines share the header width (alignment check).
  std::istringstream is(s);
  std::string line, header;
  std::getline(is, header);
  std::getline(is, line);  // rule
  EXPECT_GE(line.size(), header.size() - 1);
}

TEST(Table, RowCountMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumericRowsAndCsv) {
  Table t({"x", "y"});
  t.add_row_values({1.23456, 2.0}, 2);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("x,y"), std::string::npos);
  EXPECT_NE(csv.find("1.23,2.00"), std::string::npos);
}

TEST(Table, CsvQuotesCommas) {
  Table t({"name"});
  t.add_row({"a,b"});
  EXPECT_NE(t.to_csv().find("\"a,b\""), std::string::npos);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(1.0, 0), "1");
}

TEST(WriteCsv, RoundTripThroughFile) {
  const std::string path = ::testing::TempDir() + "/dsmt_report_test.csv";
  write_csv(path, {"t", "v"}, {{0.0, 1.0, 2.0}, {5.0, 6.0, 7.0}});
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header, "t,v");
  int rows = 0;
  std::string line;
  while (std::getline(is, line)) ++rows;
  EXPECT_EQ(rows, 3);
  std::remove(path.c_str());
}

TEST(WriteCsv, RaggedDataThrows) {
  EXPECT_THROW(write_csv("/tmp/x.csv", {"a", "b"}, {{1.0}, {1.0, 2.0}}),
               std::invalid_argument);
  EXPECT_THROW(write_csv("/tmp/x.csv", {"a"}, {}), std::invalid_argument);
}

TEST(WriteCsv, FailedWriteLeavesNoPartialFile) {
  // The staged write may not leave a half-written target when the
  // destination directory does not exist.
  const std::string path = ::testing::TempDir() + "/no_such_dir/out.csv";
  EXPECT_THROW(write_csv(path, {"t"}, {{1.0}}), std::runtime_error);
  std::ifstream is(path);
  EXPECT_FALSE(is.good());
}

TEST(DiagJson, InterruptionStatusNamesAreStable) {
  // The JSON schema is consumed by downstream tooling: the status strings
  // for the resilience codes are part of the contract.
  EXPECT_STREQ(core::status_name(core::StatusCode::kDeadlineExceeded),
               "deadline-exceeded");
  EXPECT_STREQ(core::status_name(core::StatusCode::kCancelled), "cancelled");
  EXPECT_TRUE(core::is_interruption(core::StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(core::is_interruption(core::StatusCode::kCancelled));
  EXPECT_FALSE(core::is_interruption(core::StatusCode::kOk));

  core::SolverDiag diag;
  diag.kernel = "numeric/brent";
  diag.record("numeric/brent", core::StatusCode::kDeadlineExceeded, 12, 0.5,
              "run interrupted");
  const std::string json = diag_to_json(diag).dump(2);
  EXPECT_NE(json.find("\"status\": \"deadline-exceeded\""), std::string::npos);
  EXPECT_NE(json.find("\"note\": \"run interrupted\""), std::string::npos);
}

TEST(RunJson, SchemaCarriesDeadlineHeartbeatAndCheckpoints) {
  core::RunContext ctx =
      core::RunContext::with_deadline_after(std::chrono::hours(1));
  core::CheckpointStats stats;
  stats.job = "duty_cycle_sweep";
  stats.total_slots = 33;
  stats.completed = 20;
  stats.resumed = 11;
  stats.flushes = 2;
  ctx.note_checkpoint(stats);
  const std::string json = run_to_json(ctx).dump(2);
  EXPECT_NE(json.find("\"deadline_armed\": true"), std::string::npos);
  EXPECT_NE(json.find("\"deadline_remaining_s\""), std::string::npos);
  EXPECT_NE(json.find("\"cancelled\": false"), std::string::npos);
  EXPECT_NE(json.find("\"beats\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"job\": \"duty_cycle_sweep\""), std::string::npos);
  EXPECT_NE(json.find("\"total_slots\": 33"), std::string::npos);
  EXPECT_NE(json.find("\"completed\": 20"), std::string::npos);
  EXPECT_NE(json.find("\"resumed\": 11"), std::string::npos);
  EXPECT_NE(json.find("\"flushes\": 2"), std::string::npos);

  core::RunContext bare;
  bare.cancel().request_cancel();
  const std::string cancelled = run_to_json(bare).dump(2);
  EXPECT_NE(cancelled.find("\"deadline_armed\": false"), std::string::npos);
  EXPECT_EQ(cancelled.find("\"deadline_remaining_s\""), std::string::npos);
  EXPECT_NE(cancelled.find("\"cancelled\": true"), std::string::npos);
}

}  // namespace
}  // namespace dsmt::report
