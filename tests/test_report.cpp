// Table / CSV reporting tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "report/table.h"

namespace dsmt::report {
namespace {

TEST(Table, AlignedRendering) {
  Table t({"Metal", "j_peak"});
  t.add_row({"M5", "1.25"});
  t.add_row({"M6", "0.99"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Metal"), std::string::npos);
  EXPECT_NE(s.find("M6"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  // All lines share the header width (alignment check).
  std::istringstream is(s);
  std::string line, header;
  std::getline(is, header);
  std::getline(is, line);  // rule
  EXPECT_GE(line.size(), header.size() - 1);
}

TEST(Table, RowCountMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumericRowsAndCsv) {
  Table t({"x", "y"});
  t.add_row_values({1.23456, 2.0}, 2);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("x,y"), std::string::npos);
  EXPECT_NE(csv.find("1.23,2.00"), std::string::npos);
}

TEST(Table, CsvQuotesCommas) {
  Table t({"name"});
  t.add_row({"a,b"});
  EXPECT_NE(t.to_csv().find("\"a,b\""), std::string::npos);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(1.0, 0), "1");
}

TEST(WriteCsv, RoundTripThroughFile) {
  const std::string path = ::testing::TempDir() + "/dsmt_report_test.csv";
  write_csv(path, {"t", "v"}, {{0.0, 1.0, 2.0}, {5.0, 6.0, 7.0}});
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header, "t,v");
  int rows = 0;
  std::string line;
  while (std::getline(is, line)) ++rows;
  EXPECT_EQ(rows, 3);
  std::remove(path.c_str());
}

TEST(WriteCsv, RaggedDataThrows) {
  EXPECT_THROW(write_csv("/tmp/x.csv", {"a", "b"}, {{1.0}, {1.0, 2.0}}),
               std::invalid_argument);
  EXPECT_THROW(write_csv("/tmp/x.csv", {"a"}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::report
