// Tests for the dimensional type system in core/units.h: factory round-trips,
// constexpr arithmetic, affine temperature algebra, and the compile-time
// guarantees (zero overhead, no implicit raw-double injection).
#include "core/units.h"

#include <gtest/gtest.h>

#include <type_traits>
#include <utility>

namespace dsmt {
namespace {

// ---- zero-overhead guarantees (compile-time; listed here so the test file
// documents them even though units.h static_asserts them already) ------------
static_assert(sizeof(units::Kelvin) == sizeof(double));
static_assert(sizeof(units::CurrentDensity) == sizeof(double));
static_assert(sizeof(units::HeatingCoefficient) == sizeof(double));
static_assert(std::is_trivially_copyable_v<units::Metres>);

// ---- no silent injection of raw or wrongly-dimensioned values --------------
static_assert(!std::is_convertible_v<double, units::Kelvin>);
static_assert(!std::is_convertible_v<double, units::CurrentDensity>);
static_assert(!std::is_convertible_v<units::Kelvin, units::CurrentDensity>);
static_assert(!std::is_convertible_v<units::CelsiusDelta, units::Kelvin>);
static_assert(!std::is_convertible_v<units::Metres, units::Seconds>);
// ... but typed -> double decay (the interop shim) is allowed.
static_assert(std::is_convertible_v<units::Kelvin, double>);

// Absolute temperatures have no typed operator+(Kelvin, Kelvin): summing two
// temperature *points* is meaningless, so the expression falls through the
// interop shim and produces a raw double, never another Kelvin.  Difference-
// like quantities keep their type under addition.
static_assert(std::is_same_v<decltype(std::declval<units::Kelvin>() +
                                      std::declval<units::Kelvin>()),
                             double>);
static_assert(std::is_same_v<decltype(std::declval<units::CelsiusDelta>() +
                                      std::declval<units::CelsiusDelta>()),
                             units::CelsiusDelta>);
static_assert(std::is_same_v<decltype(std::declval<units::Metres>() +
                                      std::declval<units::Metres>()),
                             units::Metres>);

// ---- constexpr arithmetic and dimension algebra ----------------------------
// Eq. 15 of the paper: H = t_m * W_m * R'_th, fully evaluated at compile time.
constexpr auto kH = um(1.0) * um(2.0) * K_m_per_W(3.0);
static_assert(std::is_same_v<std::remove_const_t<decltype(kH)>,
                             units::HeatingCoefficient>);
static_assert(kH.value() == 1e-6 * 2e-6 * 3.0);

// Eq. 9: dT = j^2 rho H has temperature dimension.
constexpr auto kDt = MA_per_cm2(1.0) * MA_per_cm2(1.0) * uohm_cm(3.0) * kH;
static_assert(std::is_same_v<std::remove_const_t<decltype(kDt)>,
                             units::CelsiusDelta>);

// Like-for-like ratios collapse to Dimensionless.
static_assert(std::is_same_v<decltype(um(4.0) / um(2.0)),
                             units::Dimensionless>);
static_assert((um(4.0) / um(2.0)).value() == 2.0);

TEST(Units, FactoryRoundTrips) {
  EXPECT_DOUBLE_EQ(um(1.0).value(), 1e-6);
  EXPECT_DOUBLE_EQ(nm(1.0).value(), 1e-9);
  EXPECT_DOUBLE_EQ(to_um(um(0.8).value()), 0.8);

  EXPECT_DOUBLE_EQ(MA_per_cm2(1.0).value(), 1e10);
  EXPECT_DOUBLE_EQ(to_MA_per_cm2(MA_per_cm2(0.6).value()), 0.6);

  EXPECT_DOUBLE_EQ(uohm_cm(3.3).value(), 3.3e-8);
  EXPECT_DOUBLE_EQ(ns(1.0).value(), 1e-9);
  EXPECT_DOUBLE_EQ(ps(1.0).value(), 1e-12);
  EXPECT_DOUBLE_EQ(seconds(2.5).value(), 2.5);
  EXPECT_DOUBLE_EQ(fF(1.0), 1e-15);
  EXPECT_DOUBLE_EQ(pF(1.0), 1e-12);
}

TEST(Units, TemperatureAffineAlgebra) {
  const units::Kelvin t0 = celsius_to_kelvin(100.0);
  EXPECT_DOUBLE_EQ(t0.value(), 373.15);
  EXPECT_DOUBLE_EQ(kelvin_to_celsius(t0.value()), 100.0);

  // point + delta = point; point - point = delta.
  const units::Kelvin hot = t0 + kelvin_delta(30.0);
  EXPECT_DOUBLE_EQ(hot.value(), 403.15);
  const units::CelsiusDelta dt = hot - t0;
  EXPECT_DOUBLE_EQ(dt.value(), 30.0);
  EXPECT_DOUBLE_EQ((hot - dt).value(), t0.value());
  EXPECT_DOUBLE_EQ((kelvin_delta(30.0) + t0).value(), hot.value());
}

TEST(Units, ScalarArithmetic) {
  auto l = um(2.0);
  l *= 3.0;
  EXPECT_DOUBLE_EQ(l.value(), 6e-6);
  l /= 2.0;
  EXPECT_DOUBLE_EQ(l.value(), 3e-6);
  l += um(1.0);
  EXPECT_DOUBLE_EQ(l.value(), 4e-6);
  l -= um(4.0);
  EXPECT_DOUBLE_EQ(l.value(), 0.0);
  EXPECT_DOUBLE_EQ((-um(5.0)).value(), -5e-6);
  EXPECT_DOUBLE_EQ((2.0 * um(5.0)).value(), 1e-5);
  EXPECT_DOUBLE_EQ((um(5.0) / 5.0).value(), 1e-6);
}

TEST(Units, ComparisonsAndOrdering) {
  EXPECT_LT(um(1.0), um(2.0));
  EXPECT_DOUBLE_EQ(um(1.0).value(), nm(1000.0).value());
  EXPECT_GT(MA_per_cm2(0.7), MA_per_cm2(0.6));
  EXPECT_LE(kelvin(300.0), kelvin(300.0));
}

TEST(Units, DivisionBuildsInverseDimensions) {
  // 1 / R'_th has dimension W/(K*m); multiplying back is dimensionless.
  const auto g = 1.0 / K_m_per_W(4.0);
  const auto unity = g * K_m_per_W(4.0);
  static_assert(std::is_same_v<std::remove_const_t<decltype(unity)>,
                               units::Dimensionless>);
  EXPECT_DOUBLE_EQ(unity.value(), 1.0);
}

TEST(Units, InteropShimDecaysToDouble) {
  // Typed values flow into double-based legacy code without .value().
  const double raw = um(3.0);
  EXPECT_DOUBLE_EQ(raw, 3e-6);
  const auto ratio = um(3.0) / metres(raw);  // and back in via a factory
  EXPECT_DOUBLE_EQ(ratio.value(), 1.0);
}

TEST(Units, ToStringCarriesUnitSuffix) {
  EXPECT_NE(units::to_string(kTrefK).find("K"), std::string::npos);
  EXPECT_NE(units::to_string(um(2.0)).find("um"), std::string::npos);
  EXPECT_NE(units::to_string(um(0.8)).find("nm"), std::string::npos);
  EXPECT_NE(units::to_string(MA_per_cm2(0.6)).find("MA/cm^2"),
            std::string::npos);
}

TEST(Units, ReferenceTemperatureMatchesPaper) {
  // The DAC-99 analysis is anchored at a 100 degC chip temperature.
  EXPECT_DOUBLE_EQ(kTrefK.value(), 373.15);
  EXPECT_DOUBLE_EQ((kTrefK - celsius_to_kelvin(0.0)).value(), 100.0);
}

}  // namespace
}  // namespace dsmt
