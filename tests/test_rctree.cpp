// RC-tree Elmore analysis tests, validated against the MNA engine.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/rctree.h"
#include "circuit/transient.h"
#include "circuit/waveform.h"

namespace dsmt::circuit {
namespace {

TEST(RcTree, DownstreamCapacitanceAccumulates) {
  RcTree tree(100.0);
  const auto a = tree.add_segment(0, 1e4, 1e-10, 1e-3);   // 10 Ohm? no: 10 Ohm=1e4*1e-3
  const auto b = tree.add_segment(a, 1e4, 1e-10, 2e-3);   // branch 1
  const auto c = tree.add_segment(a, 1e4, 1e-10, 1e-3);   // branch 2
  tree.add_load(b, 50e-15);
  tree.add_load(c, 20e-15);
  const auto cap = tree.downstream_capacitance();
  // Node c subtree: wire 0.1 pF + 20 fF load.
  EXPECT_NEAR(cap[c], 1e-10 * 1e-3 + 20e-15, 1e-20);
  // Root sees everything: wire (1+2+1) mm * 0.1 pF/mm + loads.
  EXPECT_NEAR(cap[0], 4e-13 + 70e-15, 1e-19);
  EXPECT_GT(cap[a], cap[b]);
}

TEST(RcTree, SingleLineMatchesClosedFormElmore) {
  // One segment: delay = Rs(C+CL) + R(C/2 + CL) — the delay.h formula.
  const double rs = 200.0, r = 1e4, c = 1.5e-10, len = 2e-3, cl = 10e-15;
  RcTree tree(rs);
  const auto end = tree.add_segment(0, r, c, len);
  tree.add_load(end, cl);
  const double expected =
      rs * (c * len + cl) + r * len * (0.5 * c * len + cl);
  EXPECT_NEAR(tree.elmore_delays()[end], expected, 1e-9 * expected);
}

TEST(RcTree, BranchesShareUpstreamDelay) {
  RcTree tree(100.0);
  const auto trunk = tree.add_segment(0, 1e4, 1e-10, 1e-3);
  const auto left = tree.add_segment(trunk, 1e4, 1e-10, 1e-3);
  const auto right = tree.add_segment(trunk, 1e4, 1e-10, 3e-3);
  const auto d = tree.elmore_delays();
  EXPECT_GT(d[right], d[left]);   // longer branch is slower
  EXPECT_GT(d[left], d[trunk]);   // downstream of the trunk
  EXPECT_DOUBLE_EQ(tree.critical_delay(), d[right]);
}

TEST(RcTree, LoadOnOneBranchSlowsTheOther) {
  // Elmore couples branches through shared upstream resistance.
  RcTree a(100.0);
  const auto ta = a.add_segment(0, 1e4, 1e-10, 1e-3);
  const auto la = a.add_segment(ta, 1e4, 1e-10, 1e-3);
  a.add_segment(ta, 1e4, 1e-10, 1e-3);
  const double d_before = a.elmore_delays()[la];

  RcTree b(100.0);
  const auto tb = b.add_segment(0, 1e4, 1e-10, 1e-3);
  const auto lb = b.add_segment(tb, 1e4, 1e-10, 1e-3);
  const auto rb = b.add_segment(tb, 1e4, 1e-10, 1e-3);
  b.add_load(rb, 100e-15);  // heavy sibling
  EXPECT_GT(b.elmore_delays()[lb], d_before);
}

TEST(RcTree, ElmoreUpperBoundsSimulatedT50OnTree) {
  // Three-sink tree; simulate and compare per-sink.
  RcTree tree(150.0);
  const auto trunk = tree.add_segment(0, 2e4, 1.2e-10, 1.5e-3);
  const auto s1 = tree.add_segment(trunk, 2e4, 1.2e-10, 1e-3);
  const auto s2 = tree.add_segment(trunk, 2e4, 1.2e-10, 2.5e-3);
  const auto mid = tree.add_segment(trunk, 2e4, 1.2e-10, 0.5e-3);
  const auto s3 = tree.add_segment(mid, 2e4, 1.2e-10, 0.8e-3);
  tree.add_load(s1, 15e-15);
  tree.add_load(s2, 15e-15);
  tree.add_load(s3, 30e-15);
  const auto elmore = tree.elmore_delays();

  Netlist nl;
  const NodeId in = nl.node("in");
  const auto ids = tree.emit_netlist(nl, in, 10);
  const double tau = tree.critical_delay();
  nl.add_vsource(in, kGround,
                 pwl({0.0, 0.02 * tau, 0.02 * tau + tau * 1e-3, 1.0},
                     {0.0, 0.0, 1.0, 1.0}));
  TransientOptions o;
  o.t_stop = 10.0 * tau;
  o.dt = o.t_stop / 8000;
  const auto res = run_transient(nl, o);

  for (std::size_t sink : {s1, s2, s3}) {
    const double t50 =
        crossing_time(res.time(), res.voltage(ids[sink]), 0.5, 0.0, true) -
        0.02 * tau;
    ASSERT_GT(t50, 0.0);
    EXPECT_GT(elmore[sink], t50);        // Elmore is an upper bound
    EXPECT_LT(elmore[sink], 2.5 * t50);  // but not a wild one
  }
}

TEST(RcTree, Validation) {
  RcTree tree(100.0);
  EXPECT_THROW(tree.add_segment(5, 1.0, 1.0, 1.0), std::out_of_range);
  EXPECT_THROW(tree.add_segment(0, -1.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(tree.add_segment(0, 1.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(tree.add_load(9, 1e-15), std::out_of_range);
  EXPECT_THROW(tree.add_load(0, -1e-15), std::invalid_argument);
  EXPECT_THROW(RcTree(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::circuit
