// Sensitivity and Monte-Carlo variation tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/sensitivity.h"
#include "core/variation.h"
#include "numeric/constants.h"
#include "tech/ntrs.h"

namespace dsmt::core {
namespace {

TEST(Sensitivity, SignsMatchPhysics) {
  const auto sens = design_rule_sensitivities(
      tech::make_ntrs_100nm_cu(), 8, materials::make_hsq(), 2.45, 0.1,
      MA_per_cm2(1.8));
  auto find = [&](const std::string& name) -> const Sensitivity& {
    for (const auto& s : sens)
      if (s.parameter == name) return s;
    throw std::runtime_error("missing " + name);
  };
  // More heating -> lower j_peak; better cooling -> higher j_peak.
  EXPECT_LT(find("metal thickness t_m").s_jpeak, 0.0);
  // Stack thickness is a near-wash in the quasi-2D model: a thicker stack
  // insulates more (sum t/K grows) but also spreads more (W_eff = W + phi b
  // grows), and with low-k gap-fill slabs held fixed the spreading slightly
  // wins. Assert the near-cancellation rather than a sign.
  EXPECT_LT(std::abs(find("stack thickness b").s_jpeak), 0.3);
  EXPECT_GT(find("gap-fill K_th").s_jpeak, 0.0);
  EXPECT_GT(find("ILD K_th").s_jpeak, 0.0);
  EXPECT_GT(find("spreading phi").s_jpeak, 0.0);
  EXPECT_LT(find("resistivity rho_ref").s_jpeak, 0.0);
  // Stronger EM rule -> higher j_peak (sublinearly).
  EXPECT_GT(find("design-rule j0").s_jpeak, 0.3);
  EXPECT_LT(find("design-rule j0").s_jpeak, 1.01);
  // Larger duty cycle -> lower j_peak (roughly -1..-0.5 power).
  EXPECT_LT(find("duty cycle r").s_jpeak, -0.3);
  // Better gap-fill conduction cools the wire at its operating point.
  EXPECT_LT(find("gap-fill K_th").s_tmetal, 0.0);
}

TEST(Sensitivity, Validation) {
  EXPECT_THROW(design_rule_sensitivities(tech::make_ntrs_100nm_cu(), 8,
                                         materials::make_hsq(), 2.45, 0.1,
                                         MA_per_cm2(1.8), 0.9),
               std::invalid_argument);
}

TEST(Variation, DistributionCentersOnNominal) {
  VariationSpec spec;
  const auto res = monte_carlo_jpeak(tech::make_ntrs_100nm_cu(), 8,
                                     materials::make_hsq(), 2.45, 0.1,
                                     MA_per_cm2(1.8), spec, 400);
  EXPECT_EQ(res.samples.size(), 400u);
  EXPECT_NEAR(res.mean, res.nominal, 0.05 * res.nominal);
  EXPECT_NEAR(res.p50, res.nominal, 0.05 * res.nominal);
  EXPECT_LT(res.p01, res.p50);
  EXPECT_LT(res.p50, res.p99);
  // The 1% corner costs a meaningful but bounded margin.
  EXPECT_GT(res.p01, 0.7 * res.nominal);
  EXPECT_LT(res.p01, res.nominal);
}

TEST(Variation, WiderVariationWidensDistribution) {
  VariationSpec tight;
  tight.width = tight.thickness = tight.stack = tight.k_thermal = 0.02;
  VariationSpec wide;
  wide.width = wide.thickness = wide.stack = wide.k_thermal = 0.10;
  const auto rt = monte_carlo_jpeak(tech::make_ntrs_100nm_cu(), 8,
                                    materials::make_hsq(), 2.45, 0.1,
                                    MA_per_cm2(1.8), tight, 300);
  const auto rw = monte_carlo_jpeak(tech::make_ntrs_100nm_cu(), 8,
                                    materials::make_hsq(), 2.45, 0.1,
                                    MA_per_cm2(1.8), wide, 300);
  EXPECT_GT(rw.stddev, 2.0 * rt.stddev);
  EXPECT_LT(rw.p01, rt.p01);
}

TEST(Variation, DeterministicSeeding) {
  VariationSpec spec;
  const auto a = monte_carlo_jpeak(tech::make_ntrs_100nm_cu(), 8,
                                   materials::make_hsq(), 2.45, 0.1,
                                   MA_per_cm2(1.8), spec, 50);
  const auto b = monte_carlo_jpeak(tech::make_ntrs_100nm_cu(), 8,
                                   materials::make_hsq(), 2.45, 0.1,
                                   MA_per_cm2(1.8), spec, 50);
  for (std::size_t i = 0; i < a.samples.size(); ++i)
    EXPECT_DOUBLE_EQ(a.samples[i], b.samples[i]);
  spec.seed = 999;
  const auto c = monte_carlo_jpeak(tech::make_ntrs_100nm_cu(), 8,
                                   materials::make_hsq(), 2.45, 0.1,
                                   MA_per_cm2(1.8), spec, 50);
  EXPECT_NE(a.samples[0], c.samples[0]);
}

TEST(Variation, Validation) {
  EXPECT_THROW(monte_carlo_jpeak(tech::make_ntrs_100nm_cu(), 8,
                                 materials::make_hsq(), 2.45, 0.1,
                                 MA_per_cm2(1.8), {}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::core
