// Failure injection and extreme-input robustness: parsers must throw (never
// crash) on garbage, and the solvers must stay finite and ordered at the
// edges of their legal domains.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "circuit/deck.h"
#include "numeric/constants.h"
#include "selfconsistent/solver.h"
#include "tech/techfile.h"
#include "thermal/impedance.h"

namespace dsmt {
namespace {

TEST(Robustness, DeckParserThrowsOnGarbageNeverCrashes) {
  const char* cases[] = {
      "",                     // empty -> missing .end is fine? no cards: ok
      "\x01\x02\x03",         // binary junk card
      "R",                    // bare element
      "R1 a",                 // missing node
      "R1 a 0 1k extra",      // trailing token (swallowed? must not crash)
      "V1 a 0 PULSE(",        // unterminated args
      "V1 a 0 PULSE(1 2 3 4 5 6 7",  // unterminated paren
      "M1 a b",               // missing terminals
      "M1 a b c nmos vt",     // key without value
      ".tran x y",            // non-numeric tran
      "C1 a 0 1f\n.tran 1p\n.end",  // missing tstop
      "R1 a 0 1k\n.frobnicate\n.end",
  };
  for (const char* text : cases) {
    try {
      circuit::parse_deck(text);
    } catch (const std::exception&) {
      // throwing is the expected failure mode
    }
  }
  SUCCEED();
}

TEST(Robustness, TechfileParserThrowsOnGarbageNeverCrashes) {
  const char* cases[] = {
      "tech",
      "tech x\nfeature_um -1\nend",
      "tech x\nlayer one w_um 1\nend",
      "tech x\nlayer 1 w_um nope pitch_um 2 t_um 1 ild_um 1\nend",
      "device vdd 1\nend",
      "tech x\nmetal\nend",
      "tech x\nlayer 1 w_um 1 pitch_um 2 t_um 1 ild_um 1 bogus 3\nend",
  };
  for (const char* text : cases) {
    try {
      tech::parse_techfile(text);
    } catch (const std::exception&) {
    }
  }
  SUCCEED();
}

/// Asserts parse_techfile rejects `text` with a std::runtime_error whose
/// message carries the offending line number ("techfile:N:") and, when
/// `fragment` is non-empty, the expected description.
void ExpectTechfileError(const std::string& text, int line,
                         const std::string& fragment) {
  try {
    (void)tech::parse_techfile(text);
    FAIL() << "expected parse_techfile to throw on: " << text;
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("techfile:" + std::to_string(line) + ":"),
              std::string::npos)
        << "wrong line number in: " << what;
    if (!fragment.empty())
      EXPECT_NE(what.find(fragment), std::string::npos)
          << "missing '" << fragment << "' in: " << what;
  }
}

TEST(Robustness, TechfileRejectsTruncatedLines) {
  ExpectTechfileError("tech x\nlayer 1 w_um\nend\n", 2,
                      "layer: missing value for w_um");
  ExpectTechfileError("tech x\ndevice vdd\nend\n", 2,
                      "device: missing value for vdd");
  ExpectTechfileError("tech\nend\n", 1, "tech: missing name");
  ExpectTechfileError("tech x\nmetal\nend\n", 2, "metal: missing name");
}

TEST(Robustness, TechfileRejectsOutOfOrderLayers) {
  ExpectTechfileError(
      "tech x\n"
      "layer 3 w_um 1 pitch_um 2 t_um 1 ild_um 1\n"
      "layer 2 w_um 1 pitch_um 2 t_um 1 ild_um 1\n"
      "end\n",
      3, "layer: levels must be ascending");
  // Equal levels are just as wrong as descending ones.
  ExpectTechfileError(
      "tech x\n"
      "layer 2 w_um 1 pitch_um 2 t_um 1 ild_um 1\n"
      "layer 2 w_um 1 pitch_um 2 t_um 1 ild_um 1\n"
      "end\n",
      3, "layer: levels must be ascending");
}

TEST(Robustness, TechfileRejectsNonFiniteValues) {
  // Whether the stream rejects the token or the isfinite guard catches it,
  // the error must carry the right line number.
  ExpectTechfileError("tech x\nfeature_um nan\nend\n", 2, "feature_um");
  ExpectTechfileError("tech x\nfeature_um inf\nend\n", 2, "feature_um");
  ExpectTechfileError("tech x\ndevice vdd nan\nend\n", 2, "device:");
  ExpectTechfileError(
      "tech x\nlayer 1 w_um inf pitch_um 2 t_um 1 ild_um 1\nend\n", 2,
      "layer:");
}

TEST(Robustness, TechfileRejectsDuplicateKeys) {
  ExpectTechfileError(
      "tech x\nlayer 1 w_um 1 w_um 2 pitch_um 2 t_um 1 ild_um 1\nend\n", 2,
      "layer: duplicate key w_um");
  ExpectTechfileError("tech x\ndevice vdd 1 vdd 2\nend\n", 2,
                      "device: duplicate key vdd");
  ExpectTechfileError("tech x\ntech y\nend\n", 2,
                      "duplicate 'tech' directive");
  ExpectTechfileError("tech x\nfeature_um 1\nfeature_um 2\nend\n", 3,
                      "duplicate 'feature_um' directive");
}

TEST(Robustness, SolverRejectsIllegalProblems) {
  const auto make_valid = [] {
    selfconsistent::Problem p;
    p.metal = materials::make_copper();
    p.j0 = MA_per_cm2(0.6);
    p.duty_cycle = 0.1;
    const auto weff =
        thermal::effective_width(um(3.0), um(3.0), thermal::kPhiQuasi1D);
    p.heating_coefficient = selfconsistent::heating_coefficient(
        um(3.0), um(0.5),
        thermal::rth_per_length_uniform(um(3.0), W_per_mK(1.15), weff));
    return p;
  };
  ASSERT_NO_THROW((void)selfconsistent::solve(make_valid()));

  // Negative / zero / super-unity duty cycle.
  for (double r : {-0.5, 0.0, 1.5}) {
    auto p = make_valid();
    p.duty_cycle = r;
    EXPECT_THROW((void)selfconsistent::solve(p), std::invalid_argument) << r;
  }
  // Default-constructed (zero) heating coefficient: the thermal feedback
  // term would silently vanish, so the solver must refuse to run.
  {
    auto p = make_valid();
    p.heating_coefficient = units::HeatingCoefficient{};
    EXPECT_THROW((void)selfconsistent::solve(p), std::invalid_argument);
  }
  // Non-finite or non-positive design-rule density.
  for (double j : {std::nan(""), -1.0, 0.0,
                   std::numeric_limits<double>::infinity()}) {
    auto p = make_valid();
    p.j0 = A_per_m2(j);
    EXPECT_THROW((void)selfconsistent::solve(p), std::invalid_argument) << j;
  }
  // Non-physical reference temperature.
  {
    auto p = make_valid();
    p.t_ref = units::Kelvin{-1.0};
    EXPECT_THROW((void)selfconsistent::solve(p), std::invalid_argument);
  }
}

TEST(Robustness, SolverStaysFiniteAtExtremeDutyCycles) {
  selfconsistent::Problem p;
  p.metal = materials::make_copper();
  p.j0 = MA_per_cm2(0.6);
  const auto weff =
      thermal::effective_width(um(3.0), um(3.0), thermal::kPhiQuasi1D);
  p.heating_coefficient = selfconsistent::heating_coefficient(
      um(3.0), um(0.5), thermal::rth_per_length_uniform(um(3.0), W_per_mK(1.15), weff));
  for (double r : {1e-6, 1e-5, 0.999999, 1.0}) {
    p.duty_cycle = r;
    const auto s = selfconsistent::solve(p);
    EXPECT_TRUE(std::isfinite(s.j_peak)) << r;
    EXPECT_TRUE(std::isfinite(s.t_metal)) << r;
    EXPECT_GT(s.j_peak, 0.0) << r;
  }
}

TEST(Robustness, SolverHandlesExtremeGeometry) {
  selfconsistent::Problem p;
  p.metal = materials::make_copper();
  p.j0 = MA_per_cm2(0.6);
  p.duty_cycle = 0.1;
  // Nanoscale line over a thin stack and a huge bus over a thick one.
  for (const auto& [w, t, b] :
       {std::tuple{nm(30), nm(60), nm(100)},
        std::tuple{um(20.0), um(5.0), um(50.0)}}) {
    const auto weff = thermal::effective_width(w, b, 2.45);
    p.heating_coefficient = selfconsistent::heating_coefficient(
        w, t, thermal::rth_per_length_uniform(b, W_per_mK(1.15), weff));
    const auto s = selfconsistent::solve(p);
    EXPECT_TRUE(s.converged);
    EXPECT_GT(s.j_peak, 0.0);
    EXPECT_LT(s.t_metal, p.metal.t_melt);
  }
}

TEST(Robustness, SolverHandlesExtremeJ0) {
  selfconsistent::Problem p;
  p.metal = materials::make_copper();
  p.duty_cycle = 0.1;
  const auto weff =
      thermal::effective_width(um(1.0), um(3.0), thermal::kPhiQuasi1D);
  p.heating_coefficient = selfconsistent::heating_coefficient(
      um(1.0), um(0.5), thermal::rth_per_length_uniform(um(3.0), W_per_mK(1.15), weff));
  // Tiny j0: EM-dominated, nearly no heating.
  p.j0 = MA_per_cm2(1e-4);
  const auto weak = selfconsistent::solve(p);
  EXPECT_NEAR(weak.j_peak, selfconsistent::jpeak_em_only(p),
              0.01 * selfconsistent::jpeak_em_only(p));
  // Enormous j0: thermally clamped far below the EM-only line.
  p.j0 = MA_per_cm2(1e4);
  const auto strong = selfconsistent::solve(p);
  EXPECT_TRUE(strong.converged);
  EXPECT_LT(strong.j_peak, 0.05 * selfconsistent::jpeak_em_only(p));
  EXPECT_LT(strong.t_metal, p.metal.t_melt);
}

TEST(Robustness, SelfHeatingRunawayIsFlaggedNotInf) {
  const auto cu = materials::make_copper();
  for (double j_ma : {1e2, 1e3, 1e4}) {
    const auto sol = thermal::solve_self_heating(MA_per_cm2(j_ma), cu, um(1),
                                                 um(1), K_m_per_W(1.0), kTrefK);
    EXPECT_TRUE(std::isfinite(sol.t_metal));
    if (sol.runaway) EXPECT_DOUBLE_EQ(sol.t_metal, cu.t_melt);
  }
}

}  // namespace
}  // namespace dsmt
