// Electromigration model tests (Black's equation, bipolar recovery).
#include <gtest/gtest.h>

#include <cmath>

#include "em/black.h"
#include "em/bipolar.h"
#include "numeric/constants.h"

namespace dsmt::em {
namespace {

materials::EmParameters alcu_em() { return materials::make_alcu().em; }

TEST(Black, TtfScalesAsJToMinusN) {
  const auto em = alcu_em();
  const double t1 = time_to_failure(1.0, em, MA_per_cm2(1.0), kTrefK);
  const double t2 = time_to_failure(1.0, em, MA_per_cm2(2.0), kTrefK);
  EXPECT_NEAR(t1 / t2, 4.0, 1e-9);  // n = 2
}

TEST(Black, HotterMetalFailsSooner) {
  const auto em = alcu_em();
  const auto j = MA_per_cm2(1.0);
  EXPECT_GT(time_to_failure(1.0, em, j, kTrefK),
            time_to_failure(1.0, em, j, kTrefK + kelvin_delta(30.0)));
}

TEST(Black, LifetimeRatioConsistentWithTtf) {
  const auto em = alcu_em();
  const auto j0 = MA_per_cm2(0.6), j1 = MA_per_cm2(1.1);
  const auto t0 = kTrefK, t1 = kTrefK + kelvin_delta(17.0);
  const double expected = time_to_failure(1.0, em, j1, t1) /
                          time_to_failure(1.0, em, j0, t0);
  EXPECT_NEAR(lifetime_ratio(em, j1, t1, j0, t0), expected, 1e-12);
}

TEST(Black, JavgMaxEqualsJ0AtReference) {
  const auto em = alcu_em();
  const auto j0 = MA_per_cm2(0.6);
  EXPECT_NEAR(javg_max_at_temperature(em, j0, kTrefK, kTrefK), j0, 1e-9);
}

TEST(Black, JavgMaxFallsWithTemperature) {
  const auto em = alcu_em();
  const auto j0 = MA_per_cm2(0.6);
  double prev = j0;
  for (double dt : {10.0, 30.0, 60.0, 120.0}) {
    const double j = javg_max_at_temperature(em, j0, kTrefK, kTrefK + kelvin_delta(dt));
    EXPECT_LT(j, prev);
    prev = j;
  }
}

TEST(Black, JavgMaxPreservesLifetime) {
  // The reduced j at the hot temperature must give exactly the reference
  // lifetime — the defining property of Eq. 12.
  const auto em = alcu_em();
  const auto j0 = MA_per_cm2(0.6);
  const auto t_hot = kTrefK + kelvin_delta(42.0);
  const auto j_hot = javg_max_at_temperature(em, j0, kTrefK, t_hot);
  EXPECT_NEAR(lifetime_ratio(em, j_hot, t_hot, j0, kTrefK), 1.0, 1e-10);
}

// Property: temperature_for_javg inverts javg_max_at_temperature.
class EmInverse : public ::testing::TestWithParam<double> {};

TEST_P(EmInverse, RoundTrip) {
  const auto em = alcu_em();
  const auto j0 = MA_per_cm2(0.6);
  const auto t_hot = kTrefK + kelvin_delta(GetParam());
  const auto j = javg_max_at_temperature(em, j0, kTrefK, t_hot);
  EXPECT_NEAR(temperature_for_javg(em, j, j0, kTrefK), t_hot, 1e-6 * t_hot);
}

INSTANTIATE_TEST_SUITE_P(Rises, EmInverse,
                         ::testing::Values(1.0, 5.0, 20.0, 50.0, 150.0));

TEST(Black, DesignRuleJ0FromAcceleratedTest) {
  const auto em = alcu_em();
  // Accelerated test: 2 MA/cm^2 at 200 degC failed in 1000 h; goal 10 yr at
  // 100 degC. j0 must be positive and below the test current.
  const auto j0 = design_rule_j0(em, MA_per_cm2(2.0),
                                   celsius_to_kelvin(200.0), 1000.0 * 3600.0,
                                   10.0 * 365.25 * 86400.0, kTrefK);
  EXPECT_GT(j0, 0.0);
  // The 100 degC derating (x10 lifetime) nearly cancels the 1000 h -> 10 yr
  // scaling (x9.4 on sqrt), so j0 lands close to the test current.
  EXPECT_NEAR(j0, MA_per_cm2(2.13), MA_per_cm2(0.05));
  // Self-consistency: with that j0 at T_ref, the lifetime ratio to the test
  // condition equals goal/test.
  EXPECT_NEAR(lifetime_ratio(em, j0, kTrefK, MA_per_cm2(2.0),
                             celsius_to_kelvin(200.0)),
              10.0 * 365.25 * 86400.0 / (1000.0 * 3600.0), 1e-6 * 87660.0);
}

TEST(Lognormal, MedianAndQuantileOrdering) {
  EXPECT_NEAR(lognormal_quantile_time(100.0, 0.5, 0.5), 100.0, 1e-9);
  const double t001 = lognormal_quantile_time(100.0, 0.5, 0.001);
  const double t50 = lognormal_quantile_time(100.0, 0.5, 0.5);
  const double t99 = lognormal_quantile_time(100.0, 0.5, 0.99);
  EXPECT_LT(t001, t50);
  EXPECT_LT(t50, t99);
  // 0.1% quantile at sigma 0.5: exp(0.5 * -3.09) ~ 0.213 of the median.
  EXPECT_NEAR(t001 / t50, std::exp(0.5 * -3.0902), 1e-3);
}

TEST(Bipolar, UnipolarIdentities) {
  // Paper Eqs. 4-5.
  EXPECT_DOUBLE_EQ(javg_unipolar(MA_per_cm2(10.0), 0.1), MA_per_cm2(1.0));
  EXPECT_NEAR(jrms_unipolar(MA_per_cm2(10.0), 0.1),
              MA_per_cm2(10.0) * std::sqrt(0.1), 1e-3);
  // j_avg = sqrt(r) j_rms (Eq. 6 companion).
  const double jp = MA_per_cm2(8.0), r = 0.25;
  EXPECT_NEAR(javg_from_jrms(jrms_unipolar(jp, r), r), javg_unipolar(jp, r),
              1e-6);
  EXPECT_THROW(javg_unipolar(1.0, 1.5), std::invalid_argument);
}

TEST(Bipolar, GammaZeroRecoversDominantPolarityAverage) {
  std::vector<double> t{0.0, 1.0, 2.0, 3.0, 4.0};
  std::vector<double> j{2.0, 2.0, -1.0, -1.0, 2.0};
  // positive integral: 2*2 + last segment ... compute via function with
  // gamma=0: forward = max(pos, neg).
  const double eff0 = effective_javg_bipolar(t, j, 0.0);
  EXPECT_GT(eff0, 0.0);
  const double eff1 = effective_javg_bipolar(t, j, 1.0);
  EXPECT_LT(eff1, eff0);  // recovery strictly reduces effective stress
}

TEST(Bipolar, SymmetricWaveformFullRecoveryGivesZero) {
  std::vector<double> t{0.0, 1.0, 2.0, 3.0, 4.0};
  std::vector<double> j{1.0, 1.0, -1.0, -1.0, 1.0};
  EXPECT_NEAR(effective_javg_bipolar(t, j, 1.0), 0.0, 1e-12);
  EXPECT_TRUE(std::isinf(bipolar_immunity_factor(t, j, 1.0)));
}

TEST(Bipolar, ImmunityFactorAtLeastOne) {
  std::vector<double> t{0.0, 1.0, 2.0, 3.0};
  std::vector<double> j{3.0, 3.0, -1.0, 2.0};
  for (double gamma : {0.0, 0.5, 0.9}) {
    EXPECT_GE(bipolar_immunity_factor(t, j, gamma), 1.0);
  }
}

TEST(Bipolar, ZeroCrossingSplitExact) {
  // Linear ramp from +1 to -1 over [0,2]: pos area 0.5, neg area 0.5.
  std::vector<double> t{0.0, 2.0};
  std::vector<double> j{1.0, -1.0};
  EXPECT_NEAR(effective_javg_bipolar(t, j, 0.0), 0.25, 1e-12);
  EXPECT_NEAR(effective_javg_bipolar(t, j, 1.0), 0.0, 1e-12);
}

TEST(Bipolar, RejectsBadInputs) {
  std::vector<double> t{0.0, 1.0};
  std::vector<double> j{1.0, 1.0};
  EXPECT_THROW(effective_javg_bipolar(t, j, -0.1), std::invalid_argument);
  EXPECT_THROW(effective_javg_bipolar({0.0}, {1.0}, 0.5),
               std::invalid_argument);
  EXPECT_THROW(effective_javg_bipolar({1.0, 0.0}, {1.0, 1.0}, 0.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::em
