// SPICE-deck parser tests.
#include <gtest/gtest.h>

#include "circuit/deck.h"

namespace dsmt::circuit {
namespace {

TEST(SpiceNumber, PlainAndSuffixed) {
  EXPECT_DOUBLE_EQ(parse_spice_number("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(parse_spice_number("10k"), 1e4);
  EXPECT_DOUBLE_EQ(parse_spice_number("1.2n"), 1.2e-9);
  EXPECT_DOUBLE_EQ(parse_spice_number("3meg"), 3e6);
  EXPECT_DOUBLE_EQ(parse_spice_number("100f"), 1e-13);
  EXPECT_DOUBLE_EQ(parse_spice_number("5p"), 5e-12);
  EXPECT_DOUBLE_EQ(parse_spice_number("2u"), 2e-6);
  EXPECT_DOUBLE_EQ(parse_spice_number("7m"), 7e-3);
  EXPECT_DOUBLE_EQ(parse_spice_number("-1.5"), -1.5);
  EXPECT_THROW(parse_spice_number("abc"), std::invalid_argument);
  EXPECT_THROW(parse_spice_number("1x"), std::invalid_argument);
  EXPECT_THROW(parse_spice_number(""), std::invalid_argument);
}

TEST(Deck, RcDividerParsesAndRuns) {
  const std::string text = R"(
* simple divider
VIN in 0 DC 9
R1 in mid 2k
R2 mid 0 1k
.tran 0.1n 1n
.end
)";
  Deck deck = parse_deck(text);
  ASSERT_TRUE(deck.has_tran);
  EXPECT_EQ(deck.netlist.resistors().size(), 2u);
  const auto res = run_transient(deck.netlist, deck.tran);
  EXPECT_NEAR(res.voltage(deck.node("mid")).back(), 3.0, 1e-6);
}

TEST(Deck, PulseSourceShape) {
  const std::string text = R"(
VCK clk 0 PULSE(0 1.8 1n 0.1n 0.1n 0.5n 2n)
R1 clk 0 1k
.end
)";
  Deck deck = parse_deck(text);
  ASSERT_EQ(deck.netlist.vsources().size(), 1u);
  const auto& v = deck.netlist.vsources()[0].v;
  EXPECT_DOUBLE_EQ(v(0.0), 0.0);
  EXPECT_DOUBLE_EQ(v(1.3e-9), 1.8);    // high
  EXPECT_DOUBLE_EQ(v(1.9e-9), 0.0);    // low again
  EXPECT_DOUBLE_EQ(v(3.3e-9), 1.8);    // periodic
}

TEST(Deck, PwlWithCommasAndSplitTokens) {
  const std::string text =
      "VX a 0 PWL(0 0, 1n 1, 2n 0)\nR1 a 0 1k\n.end\n";
  Deck deck = parse_deck(text);
  const auto& v = deck.netlist.vsources()[0].v;
  EXPECT_DOUBLE_EQ(v(0.5e-9), 0.5);
  EXPECT_DOUBLE_EQ(v(1.5e-9), 0.5);
}

TEST(Deck, InverterDeckSwitches) {
  const std::string text = R"(
VDD vdd 0 DC 2.5
VIN in 0 PWL(0 0, 0.2n 0, 0.25n 2.5, 1n 2.5)
MN out in 0 nmos vt=0.5 vdd=2.5 idsat=3m alpha=1.3 vdsat0=1.0 size=4
MP out in vdd pmos vt=0.5 vdd=2.5 idsat=1.4m alpha=1.3 vdsat0=1.0 size=8
CL out 0 20f
.tran 1p 1n
.end
)";
  Deck deck = parse_deck(text);
  EXPECT_EQ(deck.netlist.mosfets().size(), 2u);
  const auto res = run_transient(deck.netlist, deck.tran);
  const auto v = res.voltage(deck.node("out"));
  EXPECT_NEAR(v.front(), 2.5, 0.01);  // input low at t=0
  EXPECT_NEAR(v.back(), 0.0, 0.01);   // switched low
}

TEST(Deck, SourceIndexLookup) {
  const std::string text = "VDD a 0 DC 1\nVPROBE a b DC 0\nR1 b 0 1k\n.end\n";
  Deck deck = parse_deck(text);
  EXPECT_EQ(deck.source_index("vdd"), 0);
  EXPECT_EQ(deck.source_index("VPROBE"), 1);
  EXPECT_EQ(deck.source_index("nope"), -1);
  const auto res = run_transient(deck.netlist, {.t_stop = 1e-10, .dt = 1e-11});
  EXPECT_NEAR(res.source_current(1).back(), 1e-3, 1e-9);
}

TEST(Deck, ErrorsCarryLineNumbers) {
  try {
    parse_deck("R1 a 0 1k\nQ1 a b c\n.end\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("deck:2"), std::string::npos);
  }
  EXPECT_THROW(parse_deck("R1 a 0\n.end\n"), std::runtime_error);
  EXPECT_THROW(parse_deck("R1 a 0 -5\n.end\n"), std::runtime_error);
  EXPECT_THROW(parse_deck("V1 a 0 PULSE(1 2 3)\n.end\n"), std::runtime_error);
  EXPECT_THROW(parse_deck("V1 a 0 SIN(0 1 1k)\n.end\n"), std::runtime_error);
  EXPECT_THROW(parse_deck("M1 a b c jfet vt=1\n.end\n"), std::runtime_error);
  EXPECT_THROW(parse_deck(".tran 1n\n.end\n"), std::runtime_error);
}

TEST(Deck, CommentsAndCaseInsensitivity) {
  const std::string text =
      "* top comment\n"
      "r1 A 0 1K * trailing\n"
      "C1 A 0 1p\n"
      ".END\n";
  Deck deck = parse_deck(text);
  EXPECT_EQ(deck.netlist.resistors().size(), 1u);
  EXPECT_EQ(deck.netlist.capacitors().size(), 1u);
}

}  // namespace
}  // namespace dsmt::circuit
