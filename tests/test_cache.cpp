// Result-cache integrity suite (ctest label `cache`): the durable
// content-addressed solve cache of src/cache/. Proves the contract the
// cache exists to keep: a warm hit's reply bytes are identical to the cold
// solve's at every thread count and through both the in-process and the
// supervised (--isolate parent) paths; a flipped bit ANYWHERE in a segment
// file is quarantined, never served; torn tails are truncated and the file
// stays appendable; a foreign schema stamp refuses the whole file; and a
// stampede of identical requests coalesces onto one leader. Mutates the
// global thread count and forks worker children, so it gets its own
// executable like the other chaos suites.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cache/entry.h"
#include "cache/segment.h"
#include "cache/solve_cache.h"
#include "cache/warm.h"
#include "parallel/parallel_for.h"
#include "service/degrade.h"
#include "service/request.h"
#include "service/server.h"
#include "supervise/pool.h"
#include "supervise/protocol.h"

namespace dsmt::cache {
namespace {

struct ThreadCountGuard {
  ~ThreadCountGuard() { parallel::set_thread_count(0); }
};

/// A fresh cache directory under the test temp root; any segment left by a
/// previous run of the same test is removed so replay starts clean.
std::string cache_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "dsmt_cache_" + name;
  ::mkdir(dir.c_str(), 0755);
  std::remove((dir + "/solve.dsc").c_str());
  std::remove((dir + "/solve.dsc.refused").c_str());
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

service::Request wire_request(const std::string& id, double duty = 0.1,
                              double width_um = 0.5) {
  service::Request r;
  r.id = id;
  r.kind = service::RequestKind::kSelfConsistent;
  r.duty_cycle = duty;
  r.wire.width_um = width_um;
  r.wire.thickness_um = 0.9;
  r.wire.dielectric_um = 0.8;
  return r;
}

CachedSolve sample_value(int i) {
  CachedSolve v;
  v.t_metal_k = 373.15 + i;
  v.delta_t_k = 4.25 + 0.5 * i;
  v.j_peak_A_m2 = 1.0e10 + 1.0e7 * i;
  v.j_rms_A_m2 = 3.0e9 + 1.0e6 * i;
  v.j_avg_A_m2 = 1.0e9 + 1.0e5 * i;
  v.residual = 1.0e-13 / (1 + i);
  v.iterations = 7 + i;
  return v;
}

bool bitwise_equal(const CachedSolve& a, const CachedSolve& b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

service::ServerConfig quiet_config() {
  service::ServerConfig c;
  c.sleep_on_backoff = false;
  c.publish_signoff = false;
  return c;
}

supervise::SuperviseConfig quiet_pool(std::size_t workers) {
  supervise::SuperviseConfig c;
  c.workers = workers;
  c.service.sleep_on_backoff = false;
  c.service.publish_signoff = false;
  c.sleep_on_restart_backoff = false;
  c.publish_signoff = false;
  c.poll_interval_ms = 5;
  return c;
}

// --- codec ------------------------------------------------------------------

TEST(Codec, PayloadRoundTripsBitwise) {
  const CachedSolve value = sample_value(3);
  const std::string key = "{\"duty_cycle\":0.25}";
  const std::string payload = encode_payload(key, value);
  std::string decoded_key;
  CachedSolve decoded;
  ASSERT_TRUE(decode_payload(payload, decoded_key, decoded));
  EXPECT_EQ(decoded_key, key);
  EXPECT_TRUE(bitwise_equal(decoded, value));
}

TEST(Codec, PayloadRejectsTruncationAndPadding) {
  const std::string payload = encode_payload("k", sample_value(0));
  std::string key;
  CachedSolve value;
  for (std::size_t cut = 0; cut < payload.size(); ++cut)
    EXPECT_FALSE(decode_payload(payload.substr(0, cut), key, value)) << cut;
  EXPECT_FALSE(decode_payload(payload + "x", key, value));
}

TEST(Codec, CanonicalKeyIgnoresRequestId) {
  service::Request a = wire_request("first");
  service::Request b = wire_request("second");
  EXPECT_EQ(canonical_key(a), canonical_key(b));
  b.duty_cycle = 0.11;
  EXPECT_NE(canonical_key(a), canonical_key(b));
}

// --- segment recovery -------------------------------------------------------

TEST(Segment, PersistsAcrossReconstruction) {
  SolveCacheConfig cfg;
  cfg.dir = cache_dir("persist");
  std::vector<std::string> keys;
  {
    SolveCache cache(cfg);
    for (int i = 0; i < 5; ++i) {
      keys.push_back("key-" + std::to_string(i));
      cache.publish(keys.back(), sample_value(i));
    }
    EXPECT_EQ(cache.stats().inserts, 5u);
  }
  SolveCache reloaded(cfg);
  const CacheStats s = reloaded.stats();
  EXPECT_EQ(s.loaded, 5u);
  EXPECT_EQ(s.entries, 5u);
  EXPECT_EQ(s.inserts, 0u);  // replayed entries are "loaded", not inserts
  for (int i = 0; i < 5; ++i) {
    CachedSolve hit;
    ASSERT_TRUE(reloaded.lookup(keys[static_cast<std::size_t>(i)], hit));
    EXPECT_TRUE(bitwise_equal(hit, sample_value(i)));
  }
}

TEST(Segment, EveryPossibleBitFlipIsQuarantinedNeverServed) {
  SolveCacheConfig cfg;
  cfg.dir = cache_dir("bitflip");
  std::vector<std::string> keys;
  {
    SolveCache cache(cfg);
    for (int i = 0; i < 4; ++i) {
      keys.push_back("bf-key-" + std::to_string(i));
      cache.publish(keys.back(), sample_value(i));
    }
  }
  const std::string path = cfg.dir + "/solve.dsc";
  const std::string pristine = read_file(path);
  ASSERT_GT(pristine.size(), 4u * kRecordHeaderBytes);

  // Flip one bit at EVERY byte position in turn. Whatever the flip hits —
  // magic, version, stamp, length, checksum, key, value — a lookup must
  // either miss (the caller then solves for real) or hit with the exact
  // original value. A served-but-wrong value is the one forbidden outcome.
  std::size_t served = 0, quarantined_files = 0;
  for (std::size_t pos = 0; pos < pristine.size(); ++pos) {
    std::string corrupt = pristine;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x10);
    write_file(path, corrupt);
    SolveCache cache(cfg);
    const CacheStats s = cache.stats();
    if (s.corrupt_quarantined > 0 || s.refused_stamp ||
        s.torn_truncated > 0)
      ++quarantined_files;
    for (int i = 0; i < 4; ++i) {
      CachedSolve hit;
      if (cache.lookup(keys[static_cast<std::size_t>(i)], hit)) {
        ASSERT_TRUE(bitwise_equal(hit, sample_value(i)))
            << "corrupted value served: flipped byte " << pos;
        ++served;
      }
    }
    // The cache must stay usable after any corruption: a fresh publish
    // and verified read-back must work.
    cache.publish("fresh", sample_value(9));
    CachedSolve fresh;
    ASSERT_TRUE(cache.lookup("fresh", fresh)) << "flipped byte " << pos;
    ASSERT_TRUE(bitwise_equal(fresh, sample_value(9)));
  }
  // Sanity: the sweep really did both things — served verified survivors
  // and detected damage (every flip lands in some record's span).
  EXPECT_GT(served, 0u);
  EXPECT_EQ(quarantined_files, pristine.size());
  write_file(path, pristine);
}

TEST(Segment, TornTailIsTruncatedAndFileStaysAppendable) {
  SolveCacheConfig cfg;
  cfg.dir = cache_dir("torn");
  {
    SolveCache cache(cfg);
    for (int i = 0; i < 3; ++i)
      cache.publish("torn-" + std::to_string(i), sample_value(i));
  }
  const std::string path = cfg.dir + "/solve.dsc";
  const std::string pristine = read_file(path);
  // Tear the last record mid-payload, as a crash between write and fsync
  // would.
  write_file(path, pristine.substr(0, pristine.size() - 10));
  {
    SolveCache cache(cfg);
    const CacheStats s = cache.stats();
    EXPECT_EQ(s.loaded, 2u);
    EXPECT_EQ(s.torn_truncated, 1u);
    EXPECT_GT(s.bytes_truncated, 0u);
    // The repaired file accepts appends at the truncated end.
    cache.publish("torn-replacement", sample_value(5));
  }
  SolveCache reloaded(cfg);
  EXPECT_EQ(reloaded.stats().loaded, 3u);
  EXPECT_EQ(reloaded.stats().torn_truncated, 0u);
  CachedSolve hit;
  EXPECT_TRUE(reloaded.lookup("torn-replacement", hit));
  EXPECT_TRUE(bitwise_equal(hit, sample_value(5)));
}

TEST(Segment, ForeignSchemaStampRefusesWholeFile) {
  SolveCacheConfig cfg;
  cfg.dir = cache_dir("stamp");
  cfg.schema_stamp = 0x1111;
  {
    SolveCache cache(cfg);
    cache.publish("stamped", sample_value(1));
  }
  SolveCacheConfig other = cfg;
  other.schema_stamp = 0x2222;
  SolveCache refused(other);
  const CacheStats s = refused.stats();
  EXPECT_TRUE(s.refused_stamp);
  EXPECT_EQ(s.loaded, 0u);
  CachedSolve hit;
  EXPECT_FALSE(refused.lookup("stamped", hit));
  // The foreign file was set aside, not deleted, and the new-stamp cache
  // starts its own segment in its place.
  struct stat st;
  EXPECT_EQ(::stat((cfg.dir + "/solve.dsc.refused").c_str(), &st), 0);
  refused.publish("restamped", sample_value(2));
  SolveCache reloaded(other);
  EXPECT_EQ(reloaded.stats().loaded, 1u);
  EXPECT_FALSE(reloaded.stats().refused_stamp);
}

// --- single-flight coalescing ----------------------------------------------

TEST(SingleFlight, StampedeElectsOneLeaderAndCoalescesWaiters) {
  SolveCache cache(SolveCacheConfig{});  // memory-only
  constexpr int kThreads = 8;
  std::atomic<int> leads{0}, hits{0}, solves{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      CachedSolve out;
      switch (cache.acquire("stampede", out)) {
        case Acquire::kLead:
          ++leads;
          // Hold the flight long enough for the others to park.
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          cache.publish("stampede", sample_value(4));
          break;
        case Acquire::kHit:
          EXPECT_TRUE(bitwise_equal(out, sample_value(4)));
          ++hits;
          break;
        case Acquire::kSolve:
          ++solves;
          break;
      }
    });
  }
  go.store(true);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(leads.load(), 1);
  EXPECT_EQ(leads.load() + hits.load() + solves.load(), kThreads);
  // The default 2 s wait budget dwarfs the 50 ms hold: every waiter
  // coalesces instead of giving up.
  EXPECT_EQ(hits.load(), kThreads - 1);
  EXPECT_GE(cache.stats().coalesced, static_cast<std::uint64_t>(
                                         hits.load() > 0 ? 1 : 0));
}

TEST(SingleFlight, AbandonPromotesAWaiterInsteadOfWedgingIt) {
  SolveCache cache(SolveCacheConfig{});
  CachedSolve out;
  ASSERT_EQ(cache.acquire("abandoned", out), Acquire::kLead);
  std::atomic<bool> waiter_done{false};
  std::thread waiter([&] {
    CachedSolve theirs;
    const Acquire got = cache.acquire("abandoned", theirs);
    // The promoted waiter becomes the new leader (or solves on its own if
    // its budget expired first — never an unanswered wedge).
    EXPECT_NE(got, Acquire::kHit);
    if (got == Acquire::kLead) cache.abandon("abandoned");
    waiter_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  cache.abandon("abandoned");
  waiter.join();
  EXPECT_TRUE(waiter_done.load());
}

TEST(SingleFlight, WaiterBudgetExpiryDissolvesIntoIndependentSolve) {
  SolveCacheConfig cfg;
  cfg.wait_budget_ns = 20'000'000;  // 20 ms
  cfg.poll_interval_ms = 2;
  SolveCache cache(cfg);
  CachedSolve out;
  ASSERT_EQ(cache.acquire("wedged", out), Acquire::kLead);
  // The leader never publishes; the waiter must give up and solve.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(cache.acquire("wedged", out), Acquire::kSolve);
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_LT(waited, std::chrono::seconds(2));
  cache.abandon("wedged");
}

// --- eviction ---------------------------------------------------------------

TEST(Eviction, FifoBoundsResidencyPerShard) {
  SolveCacheConfig cfg;
  cfg.shards = 1;
  cfg.max_entries = 4;
  SolveCache cache(cfg);
  for (int i = 0; i < 10; ++i)
    cache.publish("evict-" + std::to_string(i), sample_value(i));
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 4u);
  EXPECT_EQ(s.evictions, 6u);
  // Oldest gone, newest resident.
  CachedSolve hit;
  EXPECT_FALSE(cache.lookup("evict-0", hit));
  EXPECT_TRUE(cache.lookup("evict-9", hit));
}

// --- end-to-end byte identity ----------------------------------------------

std::vector<service::Request> identity_requests() {
  std::vector<service::Request> batch;
  for (int i = 0; i < 8; ++i)
    batch.push_back(wire_request("ident-" + std::to_string(i),
                                 0.05 + 0.01 * i));
  service::Request cell;
  cell.id = "ident-cell";
  cell.kind = service::RequestKind::kTableCell;
  cell.technology = "NTRS-250nm-Cu";
  cell.level = 2;
  cell.duty_cycle = 1.0;
  batch.push_back(cell);
  return batch;
}

std::vector<std::string> serve_bytes(service::Server& server,
                                     const std::vector<service::Request>& rs) {
  std::vector<std::string> bytes;
  bytes.reserve(rs.size());
  for (std::size_t i = 0; i < rs.size(); ++i)
    bytes.push_back(service::response_to_json(server.handle(rs[i], i))
                        .dump(-1));
  return bytes;
}

TEST(ByteIdentity, WarmHitEqualsColdSolveAcrossThreadCounts) {
  ThreadCountGuard guard;
  const std::vector<service::Request> requests = identity_requests();
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    parallel::set_thread_count(threads);
    // Cold reference: no cache attached at all.
    service::Server bare(quiet_config());
    const std::vector<std::string> cold = serve_bytes(bare, requests);

    service::ServerConfig cfg = quiet_config();
    cfg.solve_cache = std::make_shared<SolveCache>(SolveCacheConfig{});
    service::Server cached(cfg);
    // First pass misses (and publishes); second pass hits.
    const std::vector<std::string> miss_pass = serve_bytes(cached, requests);
    const std::vector<std::string> hit_pass = serve_bytes(cached, requests);
    EXPECT_EQ(cold, miss_pass) << "threads=" << threads;
    EXPECT_EQ(cold, hit_pass) << "threads=" << threads;
    const CacheStats s = cfg.solve_cache->stats();
    EXPECT_GT(s.hits, 0u) << "threads=" << threads;
    EXPECT_EQ(s.corrupt_quarantined, 0u);
  }
}

TEST(ByteIdentity, SupervisedParentCacheHitEqualsWorkerSolvedBytes) {
  // The same requests through two supervised pools: one plain, one whose
  // parent shares a pre-warmed cache and answers from it without leasing a
  // worker. The client-visible frames must be identical.
  const std::vector<service::Request> requests = identity_requests();

  supervise::WorkerPool plain(quiet_pool(1));
  std::vector<std::string> worker_frames;
  for (std::size_t i = 0; i < requests.size(); ++i)
    worker_frames.push_back(plain.execute(requests[i], i).frame);
  plain.shutdown();

  supervise::SuperviseConfig cfg = quiet_pool(1);
  cfg.solve_cache = std::make_shared<SolveCache>(SolveCacheConfig{});
  const WarmReport warmed = warm_cache(*cfg.solve_cache, requests);
  ASSERT_EQ(warmed.inserted, requests.size());
  supervise::WorkerPool warmed_pool(cfg);
  std::vector<std::string> cached_frames;
  for (std::size_t i = 0; i < requests.size(); ++i)
    cached_frames.push_back(warmed_pool.execute(requests[i], i).frame);
  const supervise::SuperviseStats stats = warmed_pool.stats();
  warmed_pool.shutdown();

  EXPECT_EQ(worker_frames, cached_frames);
  EXPECT_EQ(stats.cache_hits, requests.size());
}

TEST(ByteIdentity, WarmedLatticeCoversTheLoadgenStream) {
  // The --warm-cache lattice must actually hit for the duty sweep the
  // loadgen (and the benchmarks) replay — a warm miss would silently turn
  // the warm-hit benchmark into a cold one.
  SolveCache cache(SolveCacheConfig{});
  const WarmReport report = warm_hot_lattice(cache);
  EXPECT_EQ(report.requested, report.solved);
  EXPECT_EQ(report.solved, report.inserted);
  for (int i = 0; i < 40; ++i) {
    service::Request r;  // the loadgen request, id aside
    r.id = "load-0-" + std::to_string(i);
    r.kind = service::RequestKind::kSelfConsistent;
    r.duty_cycle = 0.05 + 0.01 * (i % 40);
    CachedSolve hit;
    EXPECT_TRUE(cache.lookup(canonical_key(r), hit)) << i;
  }
}

// --- observability ----------------------------------------------------------

TEST(Observability, ServiceJsonReportsReferenceAndSolveSections) {
  service::ServerConfig cfg = quiet_config();
  cfg.solve_cache = std::make_shared<SolveCache>(SolveCacheConfig{});
  service::Server server(cfg);
  const std::vector<service::Request> requests = identity_requests();
  for (std::size_t i = 0; i < requests.size(); ++i)
    (void)server.handle(requests[i], i);

  const report::Json doc = server.service_json();
  const report::Json* cache_node = doc.find("cache");
  ASSERT_NE(cache_node, nullptr);
  const report::Json* reference = cache_node->find("reference");
  ASSERT_NE(reference, nullptr);
  for (const char* field : {"families", "points", "lookups", "hits"})
    EXPECT_NE(reference->find(field), nullptr) << field;
  const report::Json* solve = cache_node->find("solve");
  ASSERT_NE(solve, nullptr);
  for (const char* field :
       {"hits", "misses", "coalesced", "inserts", "evictions",
        "corrupt_quarantined", "entries", "bytes", "loaded",
        "torn_truncated", "refused_stamp", "durable"})
    EXPECT_NE(solve->find(field), nullptr) << field;

  // Without an attached solve cache the reference section still reports.
  service::Server bare(quiet_config());
  const report::Json bare_doc = bare.service_json();
  const report::Json* bare_cache = bare_doc.find("cache");
  ASSERT_NE(bare_cache, nullptr);
  EXPECT_NE(bare_cache->find("reference"), nullptr);
}

TEST(Observability, ReferenceCacheCountsLookupsAndHits) {
  service::ReferenceCache reference;
  // Two points bracketing duty 0.2; the conservative probe returns the
  // r' >= r one and must now be COUNTED (rung-1 hits used to be invisible
  // in sign-off).
  reference.insert("family", 0.1, to_solution(sample_value(1)));
  reference.insert("family", 0.3, to_solution(sample_value(2)));
  service::ReferencePoint out;
  ASSERT_TRUE(reference.conservative_at("family", 0.2, out));
  EXPECT_EQ(reference.lookups(), 1u);
  EXPECT_EQ(reference.hits(), 1u);
  service::ReferencePoint missing;
  EXPECT_FALSE(reference.conservative_at("missing-family", 0.2, missing));
  EXPECT_EQ(reference.lookups(), 2u);
  EXPECT_EQ(reference.hits(), 1u);
}

}  // namespace
}  // namespace dsmt::cache
