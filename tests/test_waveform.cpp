// Waveform generator and measurement tests — the paper's current-density
// definitions (Eqs. 1-3) and effective duty cycle.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/waveform.h"

namespace dsmt::circuit {
namespace {

TEST(Pulse, ShapeAndPeriodicity) {
  const auto p = pulse(0.0, 1.0, 1e-9, 0.1e-9, 0.5e-9, 0.1e-9, 2e-9);
  EXPECT_DOUBLE_EQ(p(0.0), 0.0);                 // before delay
  EXPECT_DOUBLE_EQ(p(1.05e-9), 0.5);             // mid rise
  EXPECT_DOUBLE_EQ(p(1.3e-9), 1.0);              // high
  EXPECT_NEAR(p(1.65e-9), 0.5, 1e-9);            // mid fall
  EXPECT_DOUBLE_EQ(p(1.9e-9), 0.0);              // low
  EXPECT_DOUBLE_EQ(p(3.3e-9), p(1.3e-9));        // periodic
  EXPECT_THROW(pulse(0, 1, 0, 1e-9, 1.5e-9, 1e-9, 2e-9),
               std::invalid_argument);  // longer than period
}

TEST(Pwl, InterpolatesAndClamps) {
  const auto f = pwl({0.0, 1.0, 2.0}, {0.0, 10.0, 0.0});
  EXPECT_DOUBLE_EQ(f(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(f(0.5), 5.0);
  EXPECT_DOUBLE_EQ(f(1.5), 5.0);
  EXPECT_DOUBLE_EQ(f(3.0), 0.0);
}

TEST(DoubleExponential, PeakNormalized) {
  const auto f = double_exponential(2.0, 10e-9, 150e-9);
  double peak = 0.0;
  for (int i = 0; i < 5000; ++i) peak = std::max(peak, f(i * 0.2e-9));
  EXPECT_NEAR(peak, 2.0, 1e-3);
  EXPECT_DOUBLE_EQ(f(0.0), 0.0);
  EXPECT_THROW(double_exponential(1.0, 10e-9, 5e-9), std::invalid_argument);
}

// Property (paper Eqs. 4-5): a rectangular unipolar pulse train of duty r
// has j_avg = r j_peak, j_rms = sqrt(r) j_peak, r_eff = r.
class RectangularDuty : public ::testing::TestWithParam<double> {};

TEST_P(RectangularDuty, CurrentDensityIdentities) {
  const double r = GetParam();
  const double period = 1.0;
  const int n = 200001;
  std::vector<double> t(n), y(n);
  for (int i = 0; i < n; ++i) {
    t[i] = period * i / (n - 1);
    y[i] = (t[i] <= r * period) ? 1.0 : 0.0;
  }
  const auto s = measure(t, y);
  EXPECT_NEAR(s.peak, 1.0, 1e-12);
  EXPECT_NEAR(s.average, r, 2e-3);
  EXPECT_NEAR(s.rms, std::sqrt(r), 2e-3);
  EXPECT_NEAR(s.duty_effective, r, 5e-3);
}

INSTANTIATE_TEST_SUITE_P(DutyCycles, RectangularDuty,
                         ::testing::Values(0.05, 0.1, 0.12, 0.25, 0.5, 0.9));

TEST(Measure, BipolarWaveformUsesAbsolutePeak) {
  std::vector<double> t{0.0, 1.0, 2.0, 3.0, 4.0};
  std::vector<double> y{0.0, 2.0, 0.0, -3.0, 0.0};
  const auto s = measure(t, y);
  EXPECT_DOUBLE_EQ(s.peak, 3.0);
  EXPECT_GT(s.average_abs, std::abs(s.average));
}

TEST(Window, RestrictsAndInterpolatesEnds) {
  std::vector<double> t{0.0, 1.0, 2.0, 3.0};
  std::vector<double> y{0.0, 10.0, 20.0, 30.0};
  auto [tw, yw] = window(t, y, 0.5, 2.5);
  EXPECT_DOUBLE_EQ(tw.front(), 0.5);
  EXPECT_DOUBLE_EQ(yw.front(), 5.0);
  EXPECT_DOUBLE_EQ(tw.back(), 2.5);
  EXPECT_DOUBLE_EQ(yw.back(), 25.0);
  for (std::size_t i = 1; i < tw.size(); ++i) EXPECT_GT(tw[i], tw[i - 1]);
}

TEST(CrossingTime, RisingAndFalling) {
  std::vector<double> t{0.0, 1.0, 2.0, 3.0};
  std::vector<double> v{0.0, 1.0, 0.0, 1.0};
  EXPECT_NEAR(crossing_time(t, v, 0.5, 0.0, true), 0.5, 1e-12);
  EXPECT_NEAR(crossing_time(t, v, 0.5, 1.0, false), 1.5, 1e-12);
  EXPECT_NEAR(crossing_time(t, v, 0.5, 2.0, true), 2.5, 1e-12);
  EXPECT_DOUBLE_EQ(crossing_time(t, v, 2.0, 0.0, true), -1.0);  // never
}

TEST(RiseTime, TenToNinety) {
  // Linear ramp 0 -> 1 over [0, 1]: 10-90% spans 0.8.
  std::vector<double> t, v;
  for (int i = 0; i <= 100; ++i) {
    t.push_back(i / 100.0);
    v.push_back(i / 100.0);
  }
  EXPECT_NEAR(rise_time_10_90(t, v, 0.0, 1.0), 0.8, 1e-9);
  // Flat line never rises.
  std::vector<double> flat(t.size(), 0.0);
  EXPECT_DOUBLE_EQ(rise_time_10_90(t, flat, 0.0, 1.0), -1.0);
}

}  // namespace
}  // namespace dsmt::circuit
