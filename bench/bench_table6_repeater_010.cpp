// Table 6: optimized interconnect and buffer parameters with the resulting
// RMS and peak current densities — 0.1 um Cu technology with a low-k
// insulator (k = 2.0 per the paper's caption), j_o = 0.6 MA/cm^2. The
// thermal limits use HSQ gap-fill to reflect the low-k flow.
#include <cstdio>

#include "core/engine.h"
#include "repeater_table_common.h"

int main() {
  std::printf("== Table 6: optimal repeaters, 0.1 um Cu, k = 2.0 ==\n");
  dsmt::benchharness::print_repeater_table(dsmt::tech::make_ntrs_100nm_cu(),
                                           2.0, 0.6);

  // The paper's margin-shrink observation: same layers, thermal limit with
  // low-k gap-fill instead of oxide.
  using namespace dsmt;
  core::EngineOptions opts;
  opts.sim.steps_per_period = 3000;
  core::DesignRuleEngine engine(tech::make_ntrs_100nm_cu(), MA_per_cm2(0.6),
                                opts);
  const auto ox = engine.check_layer(8, 2.0, materials::make_oxide());
  const auto pi = engine.check_layer(8, 2.0, materials::make_polyimide());
  std::printf(
      "\nMargin on M8 with oxide thermal stack:     %.2fx\n"
      "Margin on M8 with polyimide gap-fill:      %.2fx (shrinks, as the\n"
      "paper warns for low-k dielectrics)\n",
      ox.jpeak_margin, pi.jpeak_margin);
  return 0;
}
