// Fig. 1 / Eqs. 1-5: current-density definitions on a unipolar pulsed
// waveform. Regenerates the j_avg = r j_peak and j_rms = sqrt(r) j_peak
// identities from sampled waveforms.
#include <cmath>
#include <cstdio>

#include "circuit/waveform.h"
#include "report/table.h"

int main() {
  std::printf("== Fig. 1 / Eqs. 1-5: unipolar waveform current densities ==\n");
  std::printf("Sampled rectangular pulse trains, one period each.\n\n");

  dsmt::report::Table table({"duty r", "peak", "avg (meas)", "avg (r*pk)",
                             "rms (meas)", "rms (sqrt(r)*pk)", "r_eff"});
  for (double r : {0.01, 0.05, 0.1, 0.12, 0.25, 0.5, 1.0}) {
    const int n = 100001;
    std::vector<double> t(n), y(n);
    for (int i = 0; i < n; ++i) {
      t[i] = static_cast<double>(i) / (n - 1);
      y[i] = (t[i] <= r) ? 1.0 : 0.0;
    }
    const auto s = dsmt::circuit::measure(t, y);
    table.add_row({dsmt::report::fmt(r, 2), dsmt::report::fmt(s.peak, 3),
                   dsmt::report::fmt(s.average, 4),
                   dsmt::report::fmt(r * s.peak, 4),
                   dsmt::report::fmt(s.rms, 4),
                   dsmt::report::fmt(std::sqrt(r) * s.peak, 4),
                   dsmt::report::fmt(s.duty_effective, 4)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Check: measured averages/RMS match the Eq. 4-5 identities and the\n"
      "effective duty cycle r_eff = (rms/peak)^2 recovers r.\n");
  return 0;
}
