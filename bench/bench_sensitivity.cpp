// Extension harness: sensitivity tornado + Monte-Carlo process corner of
// the self-consistent design rule. Documents which reconstructed-techfile
// parameters actually move the answer (see EXPERIMENTS.md's caveat on the
// garbled Table 8) and the statistical margin manufacturing variation
// consumes.
#include <cstdio>

#include "core/sensitivity.h"
#include "core/variation.h"
#include "numeric/constants.h"
#include "report/table.h"
#include "tech/ntrs.h"

using namespace dsmt;

int main() {
  const auto technology = tech::make_ntrs_100nm_cu();
  const int level = technology.top_level();
  const auto gap_fill = materials::make_hsq();
  const double j0 = MA_per_cm2(1.8);

  std::printf("== Sensitivity of the M%d design rule (%s, HSQ) ==\n\n", level,
              technology.name.c_str());
  const auto sens = core::design_rule_sensitivities(technology, level,
                                                    gap_fill, 2.45, 0.1, j0);
  report::Table st({"parameter", "d(ln j_peak)/d(ln p)", "dT_m/d(ln p) [K]"});
  for (const auto& s : sens)
    st.add_row({s.parameter, report::fmt(s.s_jpeak, 3),
                report::fmt(s.s_tmetal, 2)});
  std::printf("%s\n", st.to_string().c_str());

  std::printf("== Monte-Carlo process variation (1000 samples) ==\n\n");
  core::VariationSpec vspec;
  const auto var = core::monte_carlo_jpeak(technology, level, gap_fill, 2.45,
                                           0.1, j0, vspec, 1000);
  report::Table vt({"statistic", "j_peak [MA/cm2]", "vs nominal"});
  auto row = [&](const char* name, double v) {
    vt.add_row({name, report::fmt(to_MA_per_cm2(v), 3),
                report::fmt(v / var.nominal, 3)});
  };
  row("nominal", var.nominal);
  row("mean", var.mean);
  row("p01 (corner)", var.p01);
  row("p50", var.p50);
  row("p99", var.p99);
  std::printf("%s\n", vt.to_string().c_str());
  std::printf(
      "Reading: the design rule is most sensitive to the EM inputs (j0, Q)\n"
      "and the duty cycle; geometry uncertainties largely cancel through\n"
      "the spreading model, which is why the paper's *trends* are robust to\n"
      "our Table-8 reconstruction. Process variation costs the p01 corner\n"
      "~%.0f%% of nominal j_peak.\n",
      100.0 * (1.0 - var.p01 / var.nominal));
  return 0;
}
