// Ablation: does wire inductance change the paper's answers?
//
// The paper models global lines as distributed RC. At GHz clocks and
// multi-mm repeatered spans, is that justified? This harness extracts the
// microstrip inductance of the top-layer wire, simulates the same driver +
// line + load with RC and RLC ladders, and compares delay, overshoot, and
// the current-density observables that feed the thermal analysis.
#include <cmath>
#include <cstdio>

#include "circuit/rcline.h"
#include "circuit/transient.h"
#include "circuit/waveform.h"
#include "extraction/wire_rc.h"
#include "numeric/constants.h"
#include "repeater/optimizer.h"
#include "report/table.h"
#include "tech/ntrs.h"

using namespace dsmt;
using namespace dsmt::circuit;

namespace {

struct RunResult {
  double t50 = 0.0;
  double overshoot = 0.0;
  double i_peak = 0.0;
  double i_rms = 0.0;
};

RunResult run_line(bool with_l, double rs, double r, double l, double c,
                   double len, double c_load) {
  Netlist nl;
  const NodeId in = nl.node("in"), head = nl.node("head"),
               out = nl.node("out");
  const double tau = rs * (c * len + c_load) + r * len * (0.5 * c * len + c_load);
  nl.add_vsource(in, kGround,
                 pwl({0.0, 0.05 * tau, 0.05 * tau + 2e-12, 1.0},
                     {0.0, 0.0, 1.0, 1.0}));
  nl.add_resistor(in, head, rs);
  if (with_l)
    add_rlc_line(nl, head, out, r, l, c, len, 40);
  else
    add_rc_line(nl, head, out, r, c, len, 40);
  nl.add_capacitor(out, kGround, c_load);

  TransientOptions o;
  o.t_stop = 14.0 * tau;
  o.dt = o.t_stop / 9000;
  const auto res = run_transient(nl, o);
  RunResult rr;
  rr.t50 = crossing_time(res.time(), res.voltage(out), 0.5, 0.0, true) -
           0.05 * tau;
  for (double v : res.voltage(out)) rr.overshoot = std::max(rr.overshoot, v);
  // Driver output current (through the source resistor).
  const auto vh = res.voltage(head);
  const auto vi = res.voltage(in);
  std::vector<double> i(vh.size());
  for (std::size_t k = 0; k < vh.size(); ++k) i[k] = (vi[k] - vh[k]) / rs;
  const auto stats = measure(res.time(), i);
  rr.i_peak = stats.peak;
  rr.i_rms = stats.rms;
  return rr;
}

}  // namespace

int main() {
  const auto technology = tech::make_ntrs_100nm_cu();
  const int level = technology.top_level();
  const auto& layer = technology.layer(level);
  const auto rc = extraction::extract_wire_rc(technology, level, 2.0, kTrefK);
  const double l_per_m = extraction::wire_inductance_per_m(
      layer.width, layer.thickness, layer.ild_below);
  const auto opt = repeater::optimize(technology.device, rc.r_per_m,
                                      rc.c_per_m);
  const double rs = technology.device.r0 / opt.s_opt;
  const double c_load = technology.device.cg * opt.s_opt;

  std::printf("== Ablation: wire inductance on %s M%d ==\n",
              technology.name.c_str(), level);
  std::printf(
      "r = %.1f Ohm/mm, l = %.2f nH/mm, c = %.1f fF/mm; damping ratio\n"
      "R_total/(2 Z0) = %.1f at l_opt (%.2f mm)\n\n",
      rc.r_per_m * 1e-3, l_per_m * 1e6, rc.c_per_m * 1e12,
      rc.r_per_m * opt.l_opt / (2.0 * std::sqrt(l_per_m / rc.c_per_m)),
      opt.l_opt * 1e3);

  report::Table table({"length", "model", "t50 [ps]", "overshoot",
                       "I_peak [mA]", "I_rms [mA]"});
  for (double frac : {0.25, 1.0, 3.0}) {
    const double len = frac * opt.l_opt;
    const auto rc_run = run_line(false, rs, rc.r_per_m, l_per_m, rc.c_per_m,
                                 len, c_load);
    const auto rlc_run = run_line(true, rs, rc.r_per_m, l_per_m, rc.c_per_m,
                                  len, c_load);
    char label[32];
    std::snprintf(label, sizeof label, "%.2f l_opt", frac);
    table.add_row({label, "RC", report::fmt(rc_run.t50 * 1e12, 1),
                   report::fmt(rc_run.overshoot, 3),
                   report::fmt(rc_run.i_peak * 1e3, 2),
                   report::fmt(rc_run.i_rms * 1e3, 2)});
    table.add_row({label, "RLC", report::fmt(rlc_run.t50 * 1e12, 1),
                   report::fmt(rlc_run.overshoot, 3),
                   report::fmt(rlc_run.i_peak * 1e3, 2),
                   report::fmt(rlc_run.i_rms * 1e3, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: the fat low-k top-layer wire at l_opt is only moderately\n"
      "damped, so inductance is visible: it adds time-of-flight delay and\n"
      "ringing, and it *halves* the peak current (L limits di/dt). The\n"
      "heating observable j_rms shifts by less than ~10%%, and the lower\n"
      "I_peak means the paper's RC treatment is *conservative* for the\n"
      "thermal/EM analysis — its design rules remain safe bounds. At 3x\n"
      "l_opt (resistance-dominated) the two models converge on delay.\n");
  return 0;
}
