// Fig. 5: effective thermal impedance of level-1 AlCu lines (t_ox = 1.2 um,
// L = 1000 um) vs line width, for standard-oxide and HSQ gap-fill flows,
// plus the extraction of the quasi-2D heat-spreading parameter phi
// (Eq. 14; the paper extracted phi = 2.45 from the W = 0.35 um point).
//
// The measurement is replaced by the 2-D heterogeneous finite-volume solve
// of the same cross-section (see DESIGN.md, substitutions).
#include <cstdio>

#include "numeric/constants.h"
#include "report/table.h"
#include "thermal/impedance.h"
#include "thermal/scenarios.h"
#include "thermal/thermometry.h"

using namespace dsmt;

int main() {
  std::printf("== Fig. 5: theta(W) for M1 AlCu, oxide vs HSQ gap-fill ==\n");
  std::printf("t_ox = 1.2 um, t_m = 0.6 um, L = 1000 um (FD cross-section)\n\n");

  const double kLength = um(1000);
  report::Table table({"W [um]", "theta oxide [K/W]", "theta HSQ [K/W]",
                       "HSQ/oxide", "phi (extracted)"});
  double phi_035 = 0.0;
  for (double w_um : {0.35, 0.6, 1.0, 1.5, 2.0, 2.5, 3.1}) {
    thermal::SingleLineSpec spec;
    spec.width = um(w_um);
    const double rth_ox = thermal::solve_rth_per_length(spec);
    spec.gap_fill = materials::make_hsq();
    const double rth_hsq = thermal::solve_rth_per_length(spec);
    const double phi =
        thermal::extract_phi(rth_ox, spec.width, spec.t_ox_below, 1.15);
    if (w_um == 0.35) phi_035 = phi;
    table.add_row({report::fmt(w_um, 2), report::fmt(rth_ox / kLength, 1),
                   report::fmt(rth_hsq / kLength, 1),
                   report::fmt(rth_hsq / rth_ox, 3), report::fmt(phi, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper: theta falls with W; the HSQ gap-fill flow runs ~20%% higher at\n"
      "W = 0.35 um; phi extracted from the narrowest line = 2.45.\n"
      "Measured phi(W = 0.35 um) = %.2f.\n\n",
      phi_035);

  // The paper's data came from electrical thermometry (TCR-based R-vs-P
  // sweeps). Close the loop by running that *procedure* virtually on the
  // W = 0.35 um line, with instrument noise, and recovering theta.
  thermal::ThermometrySetup meas;
  meas.metal = materials::make_alcu();
  meas.w_m = um(0.35);
  meas.t_m = um(0.6);
  meas.length = kLength;
  {
    thermal::SingleLineSpec spec;
    spec.width = meas.w_m;
    meas.rth_per_len = thermal::solve_rth_per_length(spec);
  }
  const auto sweep = thermal::simulate_sweep(meas, 8e-3, 25, 0.0005);
  const auto ext = thermal::extract_theta(meas, sweep);
  std::printf(
      "Virtual measurement (R-vs-P sweep, 0.05%% instrument noise):\n"
      "  true theta = %.1f K/W, extracted = %.1f K/W (R^2 = %.4f)\n"
      "  -> the Fig. 5 extraction procedure recovers the FD ground truth.\n",
      meas.rth_per_len / kLength, ext.theta, ext.fit_r_squared);
  return 0;
}
