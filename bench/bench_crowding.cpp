// Extension harness: current crowding at layout bends and its EM cost.
//
// Black's TTF goes as j^-2, so a corner that multiplies the local current
// density by k costs k^2 in local lifetime — the reason EM sign-off cares
// about layout shape, not just the design-rule j. The harness sweeps bend
// geometries with the 2-D sheet-current solver.
#include <cmath>
#include <cstdio>

#include "em/black.h"
#include "em/crowding.h"
#include "materials/metal.h"
#include "numeric/constants.h"
#include "report/table.h"

using namespace dsmt;

int main() {
  std::printf("== Current crowding at bends (sheet-current FD solve) ==\n\n");

  em::CrowdingOptions opts;
  opts.cell = 0.04e-6;

  const auto em_params = materials::make_copper().em;
  report::Table table({"shape", "R [squares]", "crowding k",
                       "local TTF penalty (k^n)"});
  {
    const auto s = em::solve_straight_strip(um(1.0), um(5.0), opts);
    table.add_row({"straight 1x5 um", report::fmt(s.resistance_squares, 2),
                   report::fmt(s.crowding_factor, 2),
                   report::fmt(std::pow(s.crowding_factor,
                                        em_params.current_exponent),
                               2)});
  }
  for (double leg_um : {2.0, 4.0, 8.0}) {
    const auto s = em::solve_l_bend(um(1.0), um(leg_um), opts);
    char label[40];
    std::snprintf(label, sizeof label, "L-bend 1 um, legs %.0f um", leg_um);
    table.add_row({label, report::fmt(s.resistance_squares, 2),
                   report::fmt(s.crowding_factor, 2),
                   report::fmt(std::pow(s.crowding_factor,
                                        em_params.current_exponent),
                               2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: a right-angle bend concentrates ~1.5-2.5x the nominal sheet\n"
      "density at the inner corner (grid-resolution dependent: the corner\n"
      "is mildly singular; 2.8x at this 40 nm cell), i.e. a ~8x local EM\n"
      "lifetime penalty on top\n"
      "of the self-consistent design rule — why mitered/rounded corners\n"
      "and via arrays matter in EM-critical routing.\n");
  return 0;
}
