// Ablation: layered-stack (Eq. 15) vs homogeneous-oxide thermal modeling.
//
// The paper generalizes b_ox/(K_ox W_eff) to a per-slab sum so low-k
// gap-fill layers can be represented. This ablation quantifies the error a
// homogeneous model makes for each gap-fill choice, and how it propagates
// into the design-rule current density.
#include <cstdio>

#include "numeric/constants.h"
#include "report/table.h"
#include "selfconsistent/sweep.h"
#include "tech/ntrs.h"
#include "thermal/impedance.h"

using namespace dsmt;

int main() {
  const auto technology = tech::make_ntrs_100nm_cu();
  const int level = technology.top_level();
  const double j0 = MA_per_cm2(1.8);

  std::printf("== Ablation: Eq. 15 layered stack vs homogeneous oxide ==\n");
  std::printf("(M%d signal line, r = 0.1, j0 = 1.8 MA/cm2)\n\n", level);

  const auto& layer = technology.layer(level);
  report::Table table({"gap-fill", "K_eff [W/m*K]", "R'th layered",
                       "R'th homog-ox", "j_peak layered", "j_peak homog",
                       "error"});
  for (const auto& gf : {materials::make_oxide(), materials::make_hsq(),
                         materials::make_polyimide(),
                         materials::make_aerogel()}) {
    const auto stack = technology.stack_below(level, gf);
    const auto b = metres(stack.total_thickness());
    const auto weff = thermal::effective_width(metres(layer.width), b, 2.45);
    const auto rth_layered = thermal::rth_per_length(stack, weff);
    const auto rth_homog = thermal::rth_per_length_uniform(
        b, materials::make_oxide().k_thermal, weff);

    auto solve_with = [&](units::ThermalResistancePerLength rth) {
      selfconsistent::Problem p;
      p.metal = technology.metal;
      p.j0 = A_per_m2(j0);
      p.duty_cycle = 0.1;
      p.heating_coefficient = selfconsistent::heating_coefficient(
          metres(layer.width), metres(layer.thickness), rth);
      return selfconsistent::solve(p);
    };
    const auto s_layered = solve_with(rth_layered);
    const auto s_homog = solve_with(rth_homog);
    table.add_row(
        {gf.name, report::fmt(stack.effective_conductivity(), 3),
         report::fmt(rth_layered, 3), report::fmt(rth_homog, 3),
         report::fmt(to_MA_per_cm2(s_layered.j_peak), 2),
         report::fmt(to_MA_per_cm2(s_homog.j_peak), 2),
         report::fmt(100.0 * (s_homog.j_peak / s_layered.j_peak - 1.0), 1) +
             "%"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: for the oxide flow the two models agree by construction;\n"
      "for low-k gap-fill the homogeneous model overestimates the allowed\n"
      "current (it ignores the poorly conducting slabs) — the error grows\n"
      "as K_th falls, which is exactly why the paper introduces Eq. 15.\n");
  return 0;
}
