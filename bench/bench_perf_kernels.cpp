// Google-benchmark micro-benchmarks of the numeric kernels that dominate the
// reproduction harnesses: scalar root solves, dense LU, sparse CG.
#include <benchmark/benchmark.h>

#include <cmath>
#include <random>

#include "numeric/dense.h"
#include "numeric/roots.h"
#include "numeric/sparse.h"

namespace {

void BM_BrentTranscendental(benchmark::State& state) {
  for (auto _ : state) {
    auto r = dsmt::numeric::brent(
        [](double x) { return std::exp(1.0 / x) - x; }, 0.5, 4.0);
    benchmark::DoNotOptimize(r.root);
  }
}
BENCHMARK(BM_BrentTranscendental);

void BM_DenseLuSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  dsmt::numeric::Matrix a(n, n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = dist(rng);
    for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
    a(i, i) += static_cast<double>(n);  // diagonally dominant
  }
  for (auto _ : state) {
    auto x = dsmt::numeric::solve_dense(a, b);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_DenseLuSolve)->Arg(32)->Arg(128);

void BM_SparseCgLaplace(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));  // grid side
  const std::size_t nn = n * n;
  dsmt::numeric::SparseBuilder builder(nn);
  auto idx = [n](std::size_t i, std::size_t j) { return i * n + j; };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      builder.add(idx(i, j), idx(i, j), 4.0);
      if (i > 0) builder.add(idx(i, j), idx(i - 1, j), -1.0);
      if (i + 1 < n) builder.add(idx(i, j), idx(i + 1, j), -1.0);
      if (j > 0) builder.add(idx(i, j), idx(i, j - 1), -1.0);
      if (j + 1 < n) builder.add(idx(i, j), idx(i, j + 1), -1.0);
    }
  }
  dsmt::numeric::CsrMatrix a(builder);
  std::vector<double> b(nn, 1.0), x(nn, 0.0);
  for (auto _ : state) {
    std::fill(x.begin(), x.end(), 0.0);
    auto res = dsmt::numeric::conjugate_gradient(a, b, x, {1e-8, 10000});
    benchmark::DoNotOptimize(res.iterations);
  }
}
BENCHMARK(BM_SparseCgLaplace)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
