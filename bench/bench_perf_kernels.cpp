// Google-benchmark micro-benchmarks of the numeric kernels that dominate the
// reproduction harnesses: scalar root solves, dense LU, sparse CG — plus
// serial-vs-N-thread timings of the parallel sweep drivers.
#include <benchmark/benchmark.h>

#include <cmath>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "core/run_context.h"
#include "core/variation.h"
#include "numeric/dense.h"
#include "numeric/roots.h"
#include "numeric/sparse.h"
#include "parallel/parallel_for.h"
#include "selfconsistent/batch.h"
#include "selfconsistent/solver.h"
#include "selfconsistent/sweep.h"
#include "tech/ntrs.h"

namespace {

void BM_BrentTranscendental(benchmark::State& state) {
  for (auto _ : state) {
    auto r = dsmt::numeric::brent(
        [](double x) { return std::exp(1.0 / x) - x; }, 0.5, 4.0);
    benchmark::DoNotOptimize(r.root);
  }
}
BENCHMARK(BM_BrentTranscendental);

void BM_DenseLuSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  dsmt::numeric::Matrix a(n, n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = dist(rng);
    for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
    a(i, i) += static_cast<double>(n);  // diagonally dominant
  }
  for (auto _ : state) {
    auto x = dsmt::numeric::solve_dense(a, b);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_DenseLuSolve)->Arg(32)->Arg(128);

void BM_SparseCgLaplace(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));  // grid side
  const std::size_t nn = n * n;
  dsmt::numeric::SparseBuilder builder(nn);
  auto idx = [n](std::size_t i, std::size_t j) { return i * n + j; };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      builder.add(idx(i, j), idx(i, j), 4.0);
      if (i > 0) builder.add(idx(i, j), idx(i - 1, j), -1.0);
      if (i + 1 < n) builder.add(idx(i, j), idx(i + 1, j), -1.0);
      if (j > 0) builder.add(idx(i, j), idx(i, j - 1), -1.0);
      if (j + 1 < n) builder.add(idx(i, j), idx(i, j + 1), -1.0);
    }
  }
  dsmt::numeric::CsrMatrix a(builder);
  std::vector<double> b(nn, 1.0), x(nn, 0.0);
  for (auto _ : state) {
    std::fill(x.begin(), x.end(), 0.0);
    auto res = dsmt::numeric::conjugate_gradient(a, b, x, {1e-8, 10000});
    benchmark::DoNotOptimize(res.iterations);
  }
}
BENCHMARK(BM_SparseCgLaplace)->Arg(32)->Arg(64);

// Thread-scaling benchmarks: Arg is the thread count handed to the pool.
// The 1-thread row is the serial baseline (parallel_for falls through to a
// plain loop); higher rows measure the same bit-identical computation under
// the static-block fan-out, so row ratios read directly as speedup.

// Duty-cycle grid for the table-sweep pair: range(1) is the point count of
// a log-spaced r sweep, the axis the paper's design-rule tables are plotted
// over. Denser duty grids are where the batch solver's structural sharing
// (one prototype per (gap fill, level), bracket evaluations memoized across
// a duty run) has more lanes to amortize over.
std::vector<double> bench_duty_grid(std::int64_t points) {
  if (points == 4) return {0.01, 0.1, 0.5, 1.0};
  return dsmt::selfconsistent::log_spaced(0.005, 1.0, static_cast<int>(points));
}

void BM_DesignRuleTableSweep(benchmark::State& state) {
  dsmt::parallel::set_thread_count(static_cast<std::size_t>(state.range(0)));
  dsmt::selfconsistent::TableSpec spec;
  spec.technology = dsmt::tech::make_ntrs_100nm_cu();
  spec.gap_fills = dsmt::materials::paper_dielectrics();
  spec.levels = {1, 2, 3, 4, 5, 6, 7, 8};
  spec.duty_cycles = bench_duty_grid(state.range(1));
  spec.j0 = dsmt::MA_per_cm2(0.6);
  for (auto _ : state) {
    auto table = dsmt::selfconsistent::generate_design_rule_table(spec);
    benchmark::DoNotOptimize(table.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(
                              spec.levels.size() * spec.gap_fills.size() *
                              spec.duty_cycles.size()));
  dsmt::parallel::set_thread_count(0);
}
BENCHMARK(BM_DesignRuleTableSweep)
    ->Args({1, 4})->Args({1, 16})->Args({1, 32})->Args({1, 64})
    ->Args({2, 32})->Args({8, 32})
    ->Unit(benchmark::kMillisecond);

// Scalar baseline for the table sweep: a faithful replica of the pre-batch
// table path — parallel_map<TableCell>, each cell keyed and solved with its
// own make_level_problem + a transcription of the historical solve(): the
// doubling bracket loop plus brent_robust over a residual that recomputes
// the Eq.-13 terms on every evaluation (the selfconsistent::residual free
// function keeps exactly that form). The one-time terms hoist (eq13.h)
// landed together with the batch core, so the like-for-like baseline for
// the batched row is the path it actually replaced. Outputs are bitwise
// identical to solve() — asserted below before the timed loop — only the
// per-evaluation bookkeeping differs.
dsmt::selfconsistent::Solution solve_prebatch(
    const dsmt::selfconsistent::Problem& p) {
  namespace sc = dsmt::selfconsistent;
  sc::Solution sol;
  const double lo = p.t_ref.value() * (1.0 + 1e-12);
  double hi = p.t_ref.value() + 1.0;
  while (sc::residual(p, dsmt::units::Kelvin{hi}) < 0.0 &&
         hi < p.t_ref.value() + 5000.0) {
    dsmt::core::throw_if_run_interrupted("eq13/solve");
    hi = p.t_ref.value() + 2.0 * (hi - p.t_ref.value());
  }
  if (sc::residual(p, dsmt::units::Kelvin{hi}) < 0.0) {
    dsmt::core::SolverDiag diag;
    diag.record("eq13/solve", dsmt::core::StatusCode::kNoBracket, 0,
                sc::residual(p, dsmt::units::Kelvin{hi}),
                "no sign change up to t_ref + 5000 K");
    throw dsmt::SolveError("selfconsistent::solve: failed to bracket root",
                           diag);
  }
  sol.diag.kernel = "eq13/solve";
  const auto root = dsmt::numeric::brent_robust(
      [&](double t) { return sc::residual(p, dsmt::units::Kelvin{t}); }, lo,
      hi, {.x_tol = 1e-9, .f_tol = 0.0, .max_iterations = 200}, sol.diag);
  sol.t_metal = dsmt::units::Kelvin{root.root};
  sol.delta_t = sol.t_metal - p.t_ref;
  sol.converged = root.ok();
  sol.iterations = root.iterations;
  sol.j_rms = sc::jrms_thermal_at(p, sol.t_metal);
  sol.j_peak = sol.j_rms / std::sqrt(p.duty_cycle);
  sol.j_avg = p.duty_cycle * sol.j_peak;
  return sol;
}

void BM_DesignRuleTableSweepScalar(benchmark::State& state) {
  dsmt::parallel::set_thread_count(static_cast<std::size_t>(state.range(0)));
  dsmt::selfconsistent::TableSpec spec;
  spec.technology = dsmt::tech::make_ntrs_100nm_cu();
  spec.gap_fills = dsmt::materials::paper_dielectrics();
  spec.levels = {1, 2, 3, 4, 5, 6, 7, 8};
  spec.duty_cycles = bench_duty_grid(state.range(1));
  spec.j0 = dsmt::MA_per_cm2(0.6);
  const std::size_t n_gf = spec.gap_fills.size();
  const std::size_t n_lv = spec.levels.size();
  const std::size_t n_cells = spec.duty_cycles.size() * n_gf * n_lv;
  // Faithfulness check: the replica must reproduce solve() bit for bit.
  for (std::size_t idx = 0; idx < n_cells; idx += 17) {
    const auto p = dsmt::selfconsistent::make_level_problem(
        spec.technology, spec.levels[idx % n_lv],
        spec.gap_fills[(idx / n_lv) % n_gf], spec.phi,
        spec.duty_cycles[idx / (n_gf * n_lv)], spec.j0);
    const auto a = solve_prebatch(p);
    const auto b = dsmt::selfconsistent::solve(p);
    if (a.t_metal.value() != b.t_metal.value() ||
        a.j_peak.value() != b.j_peak.value() ||
        a.iterations != b.iterations) {
      state.SkipWithError("solve_prebatch drifted from solve()");
      return;
    }
  }
  for (auto _ : state) {
    auto cells =
        dsmt::parallel::parallel_map<dsmt::selfconsistent::TableCell>(
            n_cells, [&](std::size_t idx) {
              dsmt::selfconsistent::TableCell cell;
              cell.level = spec.levels[idx % n_lv];
              cell.dielectric = spec.gap_fills[(idx / n_lv) % n_gf].name;
              cell.duty_cycle = spec.duty_cycles[idx / (n_gf * n_lv)];
              cell.sol = solve_prebatch(
                  dsmt::selfconsistent::make_level_problem(
                      spec.technology, cell.level,
                      spec.gap_fills[(idx / n_lv) % n_gf], spec.phi,
                      cell.duty_cycle, spec.j0));
              return cell;
            });
    benchmark::DoNotOptimize(cells.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n_cells));
  dsmt::parallel::set_thread_count(0);
}
BENCHMARK(BM_DesignRuleTableSweepScalar)
    ->Args({1, 4})->Args({1, 16})->Args({1, 32})->Args({1, 64})
    ->Args({2, 32})->Args({8, 32})
    ->Unit(benchmark::kMillisecond);

// Solver-core pair: the same 512 Eq.-13 lanes solved one-by-one through
// solve() and once through solve_batch(), single-threaded, isolating the
// batch core (hoisted per-lane terms, straight-line lane solves, elided
// duplicate evaluations) from driver and threading effects. Note solve()
// itself already benefits from the eq13.h terms hoist, so this pair
// understates the win over the pre-batch scalar path — the table-sweep
// pair above carries that comparison.
std::vector<dsmt::selfconsistent::Problem> eq13_lane_problems() {
  std::vector<dsmt::selfconsistent::Problem> out;
  const auto technology = dsmt::tech::make_ntrs_100nm_cu();
  const auto gap_fills = dsmt::materials::paper_dielectrics();
  out.reserve(512);
  for (std::size_t i = 0; out.size() < 512; ++i) {
    const double duty = 0.01 + 0.99 * static_cast<double>(i % 16) / 15.0;
    const double j0 = 0.3 + 0.15 * static_cast<double>(i % 11);
    out.push_back(dsmt::selfconsistent::make_level_problem(
        technology, 1 + static_cast<int>(i % 8), gap_fills[i % 3], 2.45,
        duty, dsmt::MA_per_cm2(j0)));
  }
  return out;
}

void BM_Eq13SolveScalar(benchmark::State& state) {
  dsmt::parallel::set_thread_count(1);
  const auto problems = eq13_lane_problems();
  for (auto _ : state) {
    double acc = 0.0;
    for (const auto& p : problems) acc += dsmt::selfconsistent::solve(p).j_peak;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(problems.size()));
  dsmt::parallel::set_thread_count(0);
}
BENCHMARK(BM_Eq13SolveScalar)->Unit(benchmark::kMillisecond);

void BM_Eq13SolveBatch(benchmark::State& state) {
  dsmt::parallel::set_thread_count(1);
  const auto problems = eq13_lane_problems();
  dsmt::selfconsistent::BatchProblem bp;
  bp.reserve(problems.size());
  for (const auto& p : problems) bp.push_back(p);
  for (auto _ : state) {
    const auto bs = dsmt::selfconsistent::solve_batch(bp);
    benchmark::DoNotOptimize(bs.j_peak.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(problems.size()));
  dsmt::parallel::set_thread_count(0);
}
BENCHMARK(BM_Eq13SolveBatch)->Unit(benchmark::kMillisecond);

void BM_MonteCarloJpeak(benchmark::State& state) {
  dsmt::parallel::set_thread_count(static_cast<std::size_t>(state.range(0)));
  const auto technology = dsmt::tech::make_ntrs_100nm_cu();
  const auto hsq = dsmt::materials::make_hsq();
  const dsmt::core::VariationSpec spec;
  for (auto _ : state) {
    auto mc = dsmt::core::monte_carlo_jpeak(technology, 8, hsq, 2.45, 0.1,
                                            dsmt::MA_per_cm2(1.8), spec, 256);
    benchmark::DoNotOptimize(mc.samples.data());
  }
  state.SetItemsProcessed(state.iterations() * 256);
  dsmt::parallel::set_thread_count(0);
}
BENCHMARK(BM_MonteCarloJpeak)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): `--json <path>` is CI shorthand
// for google-benchmark's own out-file flags, so the workflow (and BENCH_N.json
// snapshots) doesn't have to spell the two --benchmark_out* flags in step
// YAML. Everything else passes through to benchmark::Initialize untouched.
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::string out_flag;
  std::string fmt_flag = "--benchmark_out_format=json";
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json" && i + 1 < argc) {
      out_flag = std::string("--benchmark_out=") + argv[++i];
      args.push_back(out_flag.data());
      args.push_back(fmt_flag.data());
    } else {
      args.push_back(argv[i]);
    }
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
