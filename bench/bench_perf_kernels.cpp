// Google-benchmark micro-benchmarks of the numeric kernels that dominate the
// reproduction harnesses: scalar root solves, dense LU, sparse CG — plus
// serial-vs-N-thread timings of the parallel sweep drivers.
#include <benchmark/benchmark.h>

#include <cmath>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "core/variation.h"
#include "numeric/dense.h"
#include "numeric/roots.h"
#include "numeric/sparse.h"
#include "parallel/parallel_for.h"
#include "selfconsistent/sweep.h"
#include "tech/ntrs.h"

namespace {

void BM_BrentTranscendental(benchmark::State& state) {
  for (auto _ : state) {
    auto r = dsmt::numeric::brent(
        [](double x) { return std::exp(1.0 / x) - x; }, 0.5, 4.0);
    benchmark::DoNotOptimize(r.root);
  }
}
BENCHMARK(BM_BrentTranscendental);

void BM_DenseLuSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  dsmt::numeric::Matrix a(n, n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = dist(rng);
    for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
    a(i, i) += static_cast<double>(n);  // diagonally dominant
  }
  for (auto _ : state) {
    auto x = dsmt::numeric::solve_dense(a, b);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_DenseLuSolve)->Arg(32)->Arg(128);

void BM_SparseCgLaplace(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));  // grid side
  const std::size_t nn = n * n;
  dsmt::numeric::SparseBuilder builder(nn);
  auto idx = [n](std::size_t i, std::size_t j) { return i * n + j; };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      builder.add(idx(i, j), idx(i, j), 4.0);
      if (i > 0) builder.add(idx(i, j), idx(i - 1, j), -1.0);
      if (i + 1 < n) builder.add(idx(i, j), idx(i + 1, j), -1.0);
      if (j > 0) builder.add(idx(i, j), idx(i, j - 1), -1.0);
      if (j + 1 < n) builder.add(idx(i, j), idx(i, j + 1), -1.0);
    }
  }
  dsmt::numeric::CsrMatrix a(builder);
  std::vector<double> b(nn, 1.0), x(nn, 0.0);
  for (auto _ : state) {
    std::fill(x.begin(), x.end(), 0.0);
    auto res = dsmt::numeric::conjugate_gradient(a, b, x, {1e-8, 10000});
    benchmark::DoNotOptimize(res.iterations);
  }
}
BENCHMARK(BM_SparseCgLaplace)->Arg(32)->Arg(64);

// Thread-scaling benchmarks: Arg is the thread count handed to the pool.
// The 1-thread row is the serial baseline (parallel_for falls through to a
// plain loop); higher rows measure the same bit-identical computation under
// the static-block fan-out, so row ratios read directly as speedup.

void BM_DesignRuleTableSweep(benchmark::State& state) {
  dsmt::parallel::set_thread_count(static_cast<std::size_t>(state.range(0)));
  dsmt::selfconsistent::TableSpec spec;
  spec.technology = dsmt::tech::make_ntrs_100nm_cu();
  spec.gap_fills = dsmt::materials::paper_dielectrics();
  spec.levels = {1, 2, 3, 4, 5, 6, 7, 8};
  spec.duty_cycles = {0.01, 0.1, 0.5, 1.0};
  spec.j0 = dsmt::MA_per_cm2(0.6);
  for (auto _ : state) {
    auto table = dsmt::selfconsistent::generate_design_rule_table(spec);
    benchmark::DoNotOptimize(table.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(
                              spec.levels.size() * spec.gap_fills.size() *
                              spec.duty_cycles.size()));
  dsmt::parallel::set_thread_count(0);
}
BENCHMARK(BM_DesignRuleTableSweep)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MonteCarloJpeak(benchmark::State& state) {
  dsmt::parallel::set_thread_count(static_cast<std::size_t>(state.range(0)));
  const auto technology = dsmt::tech::make_ntrs_100nm_cu();
  const auto hsq = dsmt::materials::make_hsq();
  const dsmt::core::VariationSpec spec;
  for (auto _ : state) {
    auto mc = dsmt::core::monte_carlo_jpeak(technology, 8, hsq, 2.45, 0.1,
                                            dsmt::MA_per_cm2(1.8), spec, 256);
    benchmark::DoNotOptimize(mc.samples.data());
  }
  state.SetItemsProcessed(state.iterations() * 256);
  dsmt::parallel::set_thread_count(0);
}
BENCHMARK(BM_MonteCarloJpeak)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): `--json <path>` is CI shorthand
// for google-benchmark's own out-file flags, so the workflow (and BENCH_N.json
// snapshots) doesn't have to spell the two --benchmark_out* flags in step
// YAML. Everything else passes through to benchmark::Initialize untouched.
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::string out_flag;
  std::string fmt_flag = "--benchmark_out_format=json";
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json" && i + 1 < argc) {
      out_flag = std::string("--benchmark_out=") + argv[++i];
      args.push_back(out_flag.data());
      args.push_back(fmt_flag.data());
    } else {
      args.push_back(argv[i]);
    }
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
