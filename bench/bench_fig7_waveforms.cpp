// Fig. 7: current waveforms in the top-layer metal lines for the 0.25 um
// and 0.1 um technologies, from transient simulation of optimally buffered
// stages. Prints a decimated (t, I) series per node, writes full-resolution
// CSVs, and reports the effective duty cycles (paper: 0.12 +/- 0.01 for
// every layer and technology).
#include <cstdio>

#include "numeric/constants.h"
#include "report/table.h"
#include "repeater/simulate.h"
#include "tech/ntrs.h"

using namespace dsmt;

int main() {
  std::printf("== Fig. 7: repeater output current waveforms, top metal ==\n\n");

  report::Table duty({"Node", "Layer", "I_peak [mA]", "I_rms [mA]", "r_eff",
                      "slew frac"});
  for (int node = 0; node < 2; ++node) {
    const auto technology =
        node == 0 ? tech::make_ntrs_250nm_cu() : tech::make_ntrs_100nm_cu();
    const double k_rel = node == 0 ? 4.0 : 2.0;

    for (int level = technology.top_level() - 1;
         level <= technology.top_level(); ++level) {
      const auto opt =
          repeater::optimize_layer(technology, level, k_rel, kTrefK);
      repeater::SimulationOptions so;
      so.steps_per_period = 4000;
      const auto sim = repeater::simulate_stage(technology, level, k_rel, opt,
                                                so);
      duty.add_row({technology.name, report::level_label(level),
                    report::fmt(sim.current_stats.peak * 1e3, 2),
                    report::fmt(sim.current_stats.rms * 1e3, 2),
                    report::fmt(sim.duty_effective, 3),
                    report::fmt(sim.out_rise_fraction, 3)});

      if (level == technology.top_level()) {
        const std::string csv = "fig7_waveform_" +
                                std::to_string(node == 0 ? 250 : 100) +
                                "nm.csv";
        report::write_csv(csv, {"t_s", "i_a"}, {sim.time, sim.line_current});
        std::printf("%s M%d waveform (decimated; full series in %s):\n",
                    technology.name.c_str(), level, csv.c_str());
        report::Table wf({"t [ns]", "I [mA]"});
        const std::size_t stride = sim.time.size() / 24 + 1;
        for (std::size_t i = 0; i < sim.time.size(); i += stride)
          wf.add_row({report::fmt(sim.time[i] * 1e9, 3),
                      report::fmt(sim.line_current[i] * 1e3, 3)});
        std::printf("%s\n", wf.to_string().c_str());
      }
    }
  }
  std::printf("Effective duty cycles (paper: 0.12 +/- 0.01 everywhere):\n%s\n",
              duty.to_string().c_str());
  std::printf(
      "Paper observations reproduced: bipolar current pulses at each clock\n"
      "edge, equal relative rise/fall skew across technologies, and a\n"
      "layer- and node-invariant effective duty cycle near 0.12.\n");
  return 0;
}
