// Table 2: maximum allowed j_peak from the self-consistent approach, Cu
// metallization, j_o = 0.6 MA/cm^2, both NTRS nodes, three intra-level
// dielectrics, signal (r = 0.1) and power (r = 1.0) lines.
#include <cstdio>

#include "design_rule_common.h"
#include "tech/ntrs.h"

int main() {
  std::printf("== Table 2: max j_peak, Cu, j0 = 0.6 MA/cm2 ==\n\n");
  dsmt::benchharness::print_design_rule_table(
      {dsmt::tech::make_ntrs_250nm_cu(), dsmt::tech::make_ntrs_100nm_cu()},
      0.6);
  std::printf(
      "Paper trends reproduced: j_peak falls going up the metallization\n"
      "(stronger thermal isolation), falls again with low-k gap-fill\n"
      "(HSQ < oxide, polyimide < HSQ), and power lines (r = 1) are capped\n"
      "just below j0 while signal lines gain ~1/sqrt(r).\n");
  return 0;
}
