// Ablation: how much does the heat-spreading model matter?
//
// The paper's modification of Hunter's analysis is exactly this knob: the
// quasi-1D Bilotti W_eff (phi = 0.88) vs the measured quasi-2D value
// (phi = 2.45). This ablation recomputes the M8 signal-line design rule
// under phi in {0 (no spreading), 0.88, 2.45, FD-extracted} and shows the
// allowed j_peak each model grants — the "more aggressive design rules"
// the paper's abstract claims.
#include <cstdio>

#include "numeric/constants.h"
#include "report/table.h"
#include "selfconsistent/sweep.h"
#include "tech/ntrs.h"
#include "thermal/impedance.h"
#include "thermal/scenarios.h"

using namespace dsmt;

int main() {
  const auto technology = tech::make_ntrs_100nm_cu();
  const int level = technology.top_level();
  const double j0 = MA_per_cm2(1.8);
  const auto oxide = materials::make_oxide();

  std::printf("== Ablation: heat-spreading parameter phi (M%d, %s) ==\n\n",
              level, technology.name.c_str());

  // FD-extracted phi for this level's geometry (line over its full stack).
  const auto& layer = technology.layer(level);
  const auto stack = technology.stack_below(level, oxide);
  thermal::SingleLineSpec fd_spec;
  fd_spec.width = layer.width;
  fd_spec.thickness = layer.thickness;
  fd_spec.t_ox_below = stack.total_thickness();
  fd_spec.metal = technology.metal;
  fd_spec.lateral_margin = 25e-6;
  thermal::MeshOptions mesh;
  mesh.h_min = 0.05e-6;
  mesh.h_max = 0.5e-6;
  const double rth_fd = thermal::solve_rth_per_length(fd_spec, mesh);
  const double phi_fd = thermal::extract_phi(
      rth_fd, layer.width, stack.total_thickness(), oxide.k_thermal);

  report::Table table({"model", "phi", "R'th [K*m/W]", "j_peak r=0.1",
                       "j_peak r=1.0", "[MA/cm2]"});
  for (const auto& [name, phi] :
       {std::pair{"no spreading", 0.0}, std::pair{"quasi-1D (Bilotti)", 0.88},
        std::pair{"quasi-2D (paper)", 2.45},
        std::pair{"FD cross-section", phi_fd}}) {
    const auto weff = thermal::effective_width(
        metres(layer.width), metres(stack.total_thickness()), phi);
    const auto rth = thermal::rth_per_length(stack, weff);
    selfconsistent::Problem p;
    p.metal = technology.metal;
    p.j0 = A_per_m2(j0);
    p.heating_coefficient = selfconsistent::heating_coefficient(
        metres(layer.width), metres(layer.thickness), rth);
    p.duty_cycle = 0.1;
    const auto sig = selfconsistent::solve(p);
    p.duty_cycle = 1.0;
    const auto pwr = selfconsistent::solve(p);
    table.add_row({name, report::fmt(phi, 2), report::fmt(rth, 3),
                   report::fmt(to_MA_per_cm2(sig.j_peak), 2),
                   report::fmt(to_MA_per_cm2(pwr.j_peak), 3), ""});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: ignoring lateral spreading (phi = 0) over-constrains the\n"
      "design rule severely; any realistic spreading model recovers most of\n"
      "the headroom — the 'more aggressive design rules' claim of the\n"
      "paper's abstract. The FD solve lands at phi = %.2f for this very\n"
      "deep (b ~ 9 um) stack, between Bilotti's 0.88 and the paper's 2.45\n"
      "(which was extracted at b = 1.2 um, where spreading is stronger\n"
      "relative to the line width).\n",
      phi_fd);
  return 0;
}
