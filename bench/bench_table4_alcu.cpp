// Table 4: maximum allowed j_peak for AlCu metallization at
// j_o = 0.6 MA/cm^2 — the direct Cu vs AlCu comparison of the paper.
#include <cstdio>

#include "design_rule_common.h"
#include "numeric/constants.h"
#include "selfconsistent/sweep.h"
#include "tech/ntrs.h"

using namespace dsmt;

int main() {
  std::printf("== Table 4: max j_peak, AlCu, j0 = 0.6 MA/cm2 ==\n\n");
  benchharness::print_design_rule_table(
      {tech::make_ntrs_250nm_alcu(), tech::make_ntrs_100nm_alcu()}, 0.6);

  // Direct Cu-vs-AlCu cell comparison at the top level of each node.
  std::printf("Cu vs AlCu at identical j0 (signal lines, oxide):\n");
  report::Table cmp({"Node", "Level", "Cu j_peak", "AlCu j_peak", "ratio"});
  for (int node = 0; node < 2; ++node) {
    const auto cu =
        node == 0 ? tech::make_ntrs_250nm_cu() : tech::make_ntrs_100nm_cu();
    const auto alcu = node == 0 ? tech::make_ntrs_250nm_alcu()
                                : tech::make_ntrs_100nm_alcu();
    const int top = cu.top_level();
    const auto s_cu = selfconsistent::solve(selfconsistent::make_level_problem(
        cu, top, materials::make_oxide(), 2.45, 0.1, MA_per_cm2(0.6)));
    const auto s_al = selfconsistent::solve(selfconsistent::make_level_problem(
        alcu, top, materials::make_oxide(), 2.45, 0.1, MA_per_cm2(0.6)));
    cmp.add_row({cu.name, report::level_label(top),
                 report::fmt(to_MA_per_cm2(s_cu.j_peak), 3),
                 report::fmt(to_MA_per_cm2(s_al.j_peak), 3),
                 report::fmt(s_al.j_peak / s_cu.j_peak, 3)});
  }
  std::printf("%s\n", cmp.to_string().c_str());
  std::printf(
      "Paper trend reproduced: AlCu's higher resistivity heats more, so its\n"
      "allowed j_peak at the same j0 sits below Cu's; in practice Cu also\n"
      "earns a ~3x higher j0 (Table 3), compounding the advantage.\n");
  return 0;
}
