// Ablation: 2-D cross-section approximation vs true 3-D array thermal
// coupling (Table 7's substrate). The 2-D solver treats every level as
// parallel lines in one plane; the real Fig.-8 array alternates routing
// directions per level. This harness quantifies what the approximation
// costs for the Table 7 quantities.
#include <cstdio>

#include "numeric/constants.h"
#include "report/table.h"
#include "selfconsistent/solver.h"
#include "tech/ntrs.h"
#include "thermal/fd3d.h"
#include "thermal/scenarios.h"

using namespace dsmt;

int main() {
  const auto technology = tech::make_ntrs_250nm_cu();
  const int lines = 5;

  // 2-D (parallel-line) coupling.
  thermal::ArraySpec s2;
  s2.technology = technology;
  s2.max_level = 4;
  s2.lines_per_level = lines;
  const auto h2 =
      thermal::array_heating_coefficients(thermal::make_array_section(s2), 4);

  // True 3-D (alternating directions).
  thermal::Array3DSpec s3;
  s3.technology = technology;
  s3.max_level = 4;
  s3.lines_per_level = lines;
  thermal::Mesh3DOptions mo;
  mo.h_min = 0.10e-6;
  mo.h_max = 1.2e-6;
  mo.cg_rel_tol = 1e-7;
  const auto h3 =
      thermal::array3d_heating_coefficients(thermal::make_array_3d(s3), 4, mo);

  auto jpeak_ratio = [&](double h_all, double h_iso) {
    selfconsistent::Problem p;
    p.metal = technology.metal;
    p.duty_cycle = 0.1;
    p.j0 = MA_per_cm2(1.8);
    p.heating_coefficient = units::HeatingCoefficient{h_all};
    const double j_all = selfconsistent::solve(p).j_peak;
    p.heating_coefficient = units::HeatingCoefficient{h_iso};
    const double j_iso = selfconsistent::solve(p).j_peak;
    return std::pair{j_all, j_iso};
  };
  const auto [j_all2, j_iso2] = jpeak_ratio(h2.h_all_hot, h2.h_isolated);
  const auto [j_all3, j_iso3] = jpeak_ratio(h3.h_all_hot, h3.h_isolated);

  std::printf("== Ablation: 2-D vs true-3-D array coupling (Table 7) ==\n\n");
  report::Table table({"model", "H_all/H_iso", "j_peak all-hot",
                       "j_peak isolated", "reduction"});
  table.add_row({"2-D parallel lines", report::fmt(h2.h_all_hot / h2.h_isolated, 2),
                 report::fmt(to_MA_per_cm2(j_all2), 2),
                 report::fmt(to_MA_per_cm2(j_iso2), 2),
                 report::fmt(100.0 * (1.0 - j_all2 / j_iso2), 0) + "%"});
  table.add_row({"3-D alternating", report::fmt(h3.h_all_hot / h3.h_isolated, 2),
                 report::fmt(to_MA_per_cm2(j_all3), 2),
                 report::fmt(to_MA_per_cm2(j_iso3), 2),
                 report::fmt(100.0 * (1.0 - j_all3 / j_iso3), 0) + "%"});
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper Table 7 reports a ~40%% reduction (6.4 vs 10.6 MA/cm2) from\n"
      "FEM on the alternating-direction array. The 2-D parallel-line\n"
      "approximation and the true 3-D solve agree on the reduction within a\n"
      "couple of percentage points — justifying the cheaper 2-D model for\n"
      "the Table 7 harness.\n");
  return 0;
}
