// Ablation: sensitivity of the signal-line design rule to the assumed duty
// cycle. The paper justifies r = 0.1 via the simulated 0.12 +/- 0.01
// invariant; this sweep shows what the design rule would look like had a
// different r been assumed — including the r_eff values actually measured
// by our transient simulations.
#include <cstdio>

#include "numeric/constants.h"
#include "report/table.h"
#include "selfconsistent/sweep.h"
#include "tech/ntrs.h"

using namespace dsmt;

int main() {
  const auto technology = tech::make_ntrs_100nm_cu();
  const int level = technology.top_level();
  const double j0 = MA_per_cm2(1.8);

  std::printf("== Ablation: assumed duty cycle r (M%d, oxide, j0 = 1.8) ==\n\n",
              level);
  report::Table table({"r", "note", "j_peak [MA/cm2]", "j_rms [MA/cm2]",
                       "T_m [C]"});
  const struct {
    double r;
    const char* note;
  } cases[] = {
      {0.05, "optimistic"},
      {0.10, "paper's choice"},
      {0.114, "our 0.25um r_eff"},
      {0.129, "our 0.1um r_eff"},
      {0.20, "downsized buffers"},
      {0.30, "pessimistic"},
  };
  for (const auto& c : cases) {
    const auto sol = selfconsistent::solve(selfconsistent::make_level_problem(
        technology, level, materials::make_oxide(), 2.45, c.r, A_per_m2(j0)));
    table.add_row({report::fmt(c.r, 3), c.note,
                   report::fmt(to_MA_per_cm2(sol.j_peak), 2),
                   report::fmt(to_MA_per_cm2(sol.j_rms), 2),
                   report::fmt(kelvin_to_celsius(sol.t_metal), 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: j_peak scales roughly as 1/sqrt(r) once thermal effects\n"
      "moderate the EM line, so the difference between assuming 0.1 and the\n"
      "measured 0.114-0.129 is a ~7-12%% shift — the paper's 'this will not\n"
      "change j_self-consistent significantly' claim, quantified.\n");
  return 0;
}
