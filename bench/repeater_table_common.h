// Shared harness for the paper's repeater tables (Tables 5-6): per metal
// layer, extract r/c, compute the delay-optimal repeater design (Eqs.
// 16-17), simulate the stage with the MNA engine, and report current
// densities next to the self-consistent thermal limits.
#pragma once

#include <cstdio>

#include "core/engine.h"
#include "numeric/constants.h"
#include "report/table.h"
#include "tech/ntrs.h"

namespace dsmt::benchharness {

inline void print_repeater_table(const tech::Technology& technology,
                                 double k_rel, double j0_ma) {
  std::printf(
      "Insulator k = %.1f; currents from two-stage MNA transient; thermal\n"
      "limits at the measured effective duty cycle; j in MA/cm^2.\n\n",
      k_rel);

  core::EngineOptions opts;
  opts.sim.steps_per_period = 3000;
  core::DesignRuleEngine engine(technology, MA_per_cm2(j0_ma), opts);

  // The paper's tables cover the global (upper) layers.
  std::vector<int> levels;
  const int top = technology.top_level();
  const int rows = technology.num_levels() >= 8 ? 4 : 2;
  for (int l = top - rows + 1; l <= top; ++l) levels.push_back(l);

  report::Table table({"Metal", "r [Ohm/mm]", "c [fF/mm]", "l_opt [mm]",
                       "s_opt", "delay [ps]", "r_eff", "j_rms", "j_peak",
                       "j_peak_sc", "margin"});
  const auto checks =
      engine.check_layers(levels, k_rel, materials::make_oxide());
  for (const auto& c : checks) {
    table.add_row({report::level_label(c.level),
                   report::fmt(c.optimal.r_per_m * 1e-3, 1),
                   report::fmt(c.optimal.c_per_m * 1e12, 1),
                   report::fmt(c.optimal.l_opt * 1e3, 2),
                   report::fmt(c.sim.size_used, 0),
                   report::fmt(c.sim.delay_50 * 1e12, 0),
                   report::fmt(c.sim.duty_effective, 3),
                   report::fmt(to_MA_per_cm2(c.sim.j_rms), 3),
                   report::fmt(to_MA_per_cm2(c.sim.j_peak), 3),
                   report::fmt(to_MA_per_cm2(c.thermal_limit.j_peak), 3),
                   report::fmt(c.jpeak_margin, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  bool all_pass = true;
  for (const auto& c : checks) all_pass = all_pass && c.pass;
  std::printf(
      "j_peak-delay %s j_peak-self-consistent on every layer (paper: holds\n"
      "for oxide, margin shrinks as low-k enters).\n",
      all_pass ? "<" : "EXCEEDS");
}

}  // namespace dsmt::benchharness
