// Fig. 2: self-consistent solutions for T_m and j_peak vs duty cycle r.
// Geometry from the figure caption: Cu, j_o = 0.6 MA/cm^2, t_ox = 3 um,
// t_m = 0.5 um, W_m = 3 um, quasi-1D W_eff; rho(T) per the caption.
#include <cstdio>

#include "numeric/constants.h"
#include "report/table.h"
#include "selfconsistent/sweep.h"
#include "thermal/impedance.h"

using namespace dsmt;

int main() {
  selfconsistent::Problem p;
  p.metal = materials::make_copper();
  p.metal.em.activation_energy_ev = 0.7;  // AlCu-era Q used by the paper
  p.j0 = MA_per_cm2(0.6);
  const auto weff =
      thermal::effective_width(um(3.0), um(3.0), thermal::kPhiQuasi1D);
  const auto rth = thermal::rth_per_length_uniform(um(3.0), W_per_mK(1.15), weff);
  p.heating_coefficient =
      selfconsistent::heating_coefficient(um(3.0), um(0.5), rth);

  std::printf("== Fig. 2: T_m and j_peak vs duty cycle (Cu, j0 = 0.6 MA/cm2) ==\n\n");
  report::Table table({"duty r", "T_m [C]", "j_peak_sc [MA/cm2]",
                       "j0/r (line a)", "j_rms/sqrt(r) (line b)",
                       "sc/EM-only"});
  const auto duties = selfconsistent::log_spaced(1e-4, 1.0, 17);
  const auto points = selfconsistent::sweep_duty_cycle(p, duties);
  for (const auto& pt : points) {
    table.add_row(
        {report::fmt(pt.duty_cycle, 5),
         report::fmt(kelvin_to_celsius(pt.sc.t_metal), 1),
         report::fmt(to_MA_per_cm2(pt.sc.j_peak), 2),
         report::fmt(to_MA_per_cm2(pt.jpeak_em_only), 2),
         report::fmt(to_MA_per_cm2(pt.jpeak_thermal_only), 2),
         report::fmt(pt.sc.j_peak / pt.jpeak_em_only, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Full-resolution series for plotting.
  {
    std::vector<double> r, tm, jp, jem, jth;
    for (const auto& pt : selfconsistent::sweep_duty_cycle(
             p, selfconsistent::log_spaced(1e-4, 1.0, 81))) {
      r.push_back(pt.duty_cycle);
      tm.push_back(kelvin_to_celsius(pt.sc.t_metal));
      jp.push_back(to_MA_per_cm2(pt.sc.j_peak));
      jem.push_back(to_MA_per_cm2(pt.jpeak_em_only));
      jth.push_back(to_MA_per_cm2(pt.jpeak_thermal_only));
    }
    report::write_csv("fig2_series.csv",
                      {"duty", "tm_C", "jpeak_sc", "jpeak_em_only",
                       "jpeak_thermal_only"},
                      {r, tm, jp, jem, jth});
    std::printf("Full 81-point series written to fig2_series.csv\n\n");
  }

  // Headline check at r = 1e-2.
  selfconsistent::Problem pc = p;
  pc.duty_cycle = 1e-2;
  const auto sc = selfconsistent::solve(pc);
  std::printf(
      "Paper: at r = 1e-2 the self-consistent j_peak is 'nearly 2 times\n"
      "smaller' than the EM-only j0/r line. Measured factor: %.2fx.\n",
      selfconsistent::jpeak_em_only(pc) / sc.j_peak);
  std::printf(
      "Paper: T_m decreases monotonically toward T_ref = 100 C as r -> 1;\n"
      "measured T_m(r=1) = %.1f C, T_m(r=1e-4) = %.1f C.\n",
      kelvin_to_celsius(points.back().sc.t_metal),
      kelvin_to_celsius(points.front().sc.t_metal));
  return 0;
}
