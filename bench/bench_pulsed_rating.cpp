// Extension harness: single-pulse current ratings from the transient
// thermal impedance — the continuum between the paper's two regimes
// (sub-200-ns adiabatic ESD failure and the DC/RMS self-consistent rule).
#include <cstdio>

#include "esd/failure.h"
#include "numeric/constants.h"
#include "report/table.h"
#include "selfconsistent/sweep.h"
#include "tech/ntrs.h"
#include "thermal/impedance.h"
#include "thermal/zth.h"

using namespace dsmt;

int main() {
  const auto technology = tech::make_ntrs_250nm_cu();
  const int level = 6;
  const auto& layer = technology.layer(level);

  thermal::ZthSpec spec;
  spec.metal = technology.metal;
  spec.w_m = metres(layer.width);
  spec.t_m = metres(layer.thickness);
  spec.stack = technology.stack_below(level, materials::make_oxide());
  spec.w_eff = thermal::effective_width(
      metres(layer.width), metres(spec.stack.total_thickness()), 2.45);
  const auto curve = thermal::zth_step_response(spec, seconds(1e-9), seconds(1e-1), 48);

  std::printf("== Pulsed current ratings, %s M%d ==\n", technology.name.c_str(),
              level);
  std::printf("Z'th(DC) = %.3f K*m/W, wire tau = %.2f us\n\n", curve.rth_dc.value(),
              curve.tau_wire.value() * 1e6);

  // Rating for a modest dT budget (design-rule-like) and for melt (ESD-like).
  const auto dt_rule = kelvin_delta(20.0);
  const auto dt_melt = technology.metal.t_melt - kTrefK;
  report::Table table({"pulse width", "Zth [K*m/W]", "j(dT=20K)",
                       "j(melt)", "[MA/cm2]"});
  for (double tp : {1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}) {
    const double j_rule =
        thermal::pulsed_current_rating(spec, curve, seconds(tp), dt_rule, kTrefK);
    const double j_melt =
        thermal::pulsed_current_rating(spec, curve, seconds(tp), dt_melt, kTrefK);
    char label[32];
    std::snprintf(label, sizeof label, "%.0e s", tp);
    table.add_row({label, report::fmt(thermal::zth_at(curve, seconds(tp)), 4),
                   report::fmt(to_MA_per_cm2(j_rule), 1),
                   report::fmt(to_MA_per_cm2(j_melt), 1), ""});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Anchors at the two ends.
  const double j_esd_100ns =
      esd::critical_jpeak_melt_onset(technology.metal, 100e-9, kTrefK);
  const auto dc_limit = selfconsistent::solve(
      selfconsistent::make_level_problem(technology, level,
                                         materials::make_oxide(), 2.45, 1.0,
                                         MA_per_cm2(1.8)));
  std::printf(
      "Anchors: adiabatic ESD melt onset at 100 ns = %.0f MA/cm2 (compare\n"
      "the j(melt) column's short-pulse end); the r = 1 self-consistent DC\n"
      "rule = %.2f MA/cm2 (the long-pulse end of a j(dT~5K) budget). The\n"
      "rating curve spans both regimes with one model.\n",
      to_MA_per_cm2(j_esd_100ns), to_MA_per_cm2(dc_limit.j_peak));
  return 0;
}
