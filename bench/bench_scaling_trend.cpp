// Scaling study: "Technology ... and scaling effects on the thermal
// characteristics of the interconnects" (paper abstract). Sweeps four
// roadmap nodes (0.25 -> 0.18 -> 0.13 -> 0.1 um) and tracks, for the top
// global layer of each: the self-consistent limits, the delay-optimal
// current densities, and the thermal margin — showing how the margin
// evolves with scaling (and how low-k accelerates the squeeze).
#include <cstdio>

#include "core/engine.h"
#include "numeric/constants.h"
#include "report/table.h"
#include "tech/ntrs.h"

using namespace dsmt;

int main() {
  std::printf("== Scaling trend: top global layer across roadmap nodes ==\n");
  std::printf("(j0 = 0.6 MA/cm2; insulator k per node era)\n\n");

  const struct {
    tech::Technology technology;
    double k_rel;
  } nodes[] = {
      {tech::make_ntrs_250nm_cu(), 4.0},
      {tech::make_ntrs_180nm_cu(), 3.5},   // FSG era
      {tech::make_ntrs_130nm_cu(), 2.9},   // first low-k
      {tech::make_ntrs_100nm_cu(), 2.0},
  };

  report::Table table({"node", "top", "clock [GHz]", "l_opt [mm]", "r_eff",
                       "j_peak dly", "j_peak sc(ox)", "j_peak sc(HSQ)",
                       "margin ox", "margin HSQ"});
  for (const auto& n : nodes) {
    core::EngineOptions opts;
    opts.sim.steps_per_period = 2500;
    core::DesignRuleEngine engine(n.technology, MA_per_cm2(0.6), opts);
    const int top = n.technology.top_level();
    const auto ox = engine.check_layer(top, n.k_rel, materials::make_oxide());
    const auto hsq = engine.check_layer(top, n.k_rel, materials::make_hsq());
    table.add_row(
        {n.technology.name, report::level_label(top),
         report::fmt(1e-9 / n.technology.device.clock_period, 2),
         report::fmt(ox.optimal.l_opt * 1e3, 2),
         report::fmt(ox.sim.duty_effective, 3),
         report::fmt(to_MA_per_cm2(ox.sim.j_peak), 3),
         report::fmt(to_MA_per_cm2(ox.thermal_limit.j_peak), 3),
         report::fmt(to_MA_per_cm2(hsq.thermal_limit.j_peak), 3),
         report::fmt(ox.jpeak_margin, 2), report::fmt(hsq.jpeak_margin, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: every node keeps j_peak-delay below the self-consistent\n"
      "limit, but each scaling step adds levels (thicker stacks, hotter\n"
      "lines) while low-k adoption lowers the limit — the two trends the\n"
      "paper warns will make thermal effects dominate design rules.\n");
  return 0;
}
