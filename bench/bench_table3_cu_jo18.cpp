// Table 3: same as Table 2 with a 300% higher EM design-rule current
// density (j_o = 1.8 MA/cm^2, representative of Cu's EM advantage).
#include <cstdio>

#include "design_rule_common.h"
#include "tech/ntrs.h"

int main() {
  std::printf("== Table 3: max j_peak, Cu, j0 = 1.8 MA/cm2 ==\n\n");
  dsmt::benchharness::print_design_rule_table(
      {dsmt::tech::make_ntrs_250nm_cu(), dsmt::tech::make_ntrs_100nm_cu()},
      1.8);
  std::printf(
      "Paper trend reproduced: tripling j0 raises every cell (Cu's higher\n"
      "EM resistance pays off) but sublinearly where self-heating bites;\n"
      "the self-consistent metal temperatures rise accordingly.\n");
  return 0;
}
