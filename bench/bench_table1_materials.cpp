// Table 1: thermal conductivities of the intra-level dielectrics, plus the
// derived material data every other experiment consumes.
#include <cstdio>

#include "materials/dielectric.h"
#include "materials/metal.h"
#include "numeric/constants.h"
#include "report/table.h"

using namespace dsmt;

int main() {
  std::printf("== Table 1: dielectric thermal conductivities ==\n\n");
  report::Table t1({"Dielectric", "K_th [W/m*K]", "paper", "k (electrical)"});
  const double paper[] = {1.15, 0.60, 0.25};
  int i = 0;
  for (const auto& d : materials::paper_dielectrics()) {
    t1.add_row({d.name, report::fmt(d.k_thermal, 2),
                report::fmt(paper[i++], 2),
                report::fmt(d.rel_permittivity, 1)});
  }
  std::printf("%s\n", t1.to_string().c_str());

  std::printf("== Derived: interconnect metal properties at T_ref = 100 C ==\n\n");
  report::Table t2({"Metal", "rho [uOhm*cm]", "TCR [1/K]", "K_th [W/m*K]",
                    "T_melt [C]", "Q_EM [eV]"});
  for (const char* name : {"cu", "alcu", "al", "w"}) {
    const auto m = materials::metal_by_name(name);
    t2.add_row({m.name, report::fmt(m.resistivity(kTrefK) * 1e8, 2),
                report::fmt(m.tcr, 4), report::fmt(m.k_thermal, 0),
                report::fmt(kelvin_to_celsius(m.t_melt), 0),
                report::fmt(m.em.activation_energy_ev, 2)});
  }
  std::printf("%s", t2.to_string().c_str());
  return 0;
}
