// Fig. 3: dependence of the self-consistent T_m and j_peak on the EM
// design-rule current density j_o (same geometry as Fig. 2).
#include <cstdio>

#include "numeric/constants.h"
#include "report/table.h"
#include "selfconsistent/sweep.h"
#include "thermal/impedance.h"

using namespace dsmt;

int main() {
  selfconsistent::Problem p;
  p.metal = materials::make_copper();
  p.metal.em.activation_energy_ev = 0.7;
  const auto weff =
      thermal::effective_width(um(3.0), um(3.0), thermal::kPhiQuasi1D);
  const auto rth = thermal::rth_per_length_uniform(um(3.0), W_per_mK(1.15), weff);
  p.heating_coefficient =
      selfconsistent::heating_coefficient(um(3.0), um(0.5), rth);

  std::printf("== Fig. 3: T_m and j_peak vs duty cycle for several j_o ==\n\n");
  const std::vector<double> j0s = {MA_per_cm2(0.6), MA_per_cm2(1.2),
                                   MA_per_cm2(1.8), MA_per_cm2(2.4)};
  const auto duties = selfconsistent::log_spaced(1e-4, 1.0, 9);
  const auto family = selfconsistent::sweep_j0(p, j0s, duties);

  report::Table table({"duty r", "j0 [MA/cm2]", "T_m [C]",
                       "j_peak_sc [MA/cm2]"});
  for (std::size_t k = 0; k < duties.size(); ++k)
    for (std::size_t i = 0; i < j0s.size(); ++i)
      table.add_row({report::fmt(duties[k], 5),
                     report::fmt(to_MA_per_cm2(j0s[i]), 1),
                     report::fmt(kelvin_to_celsius(family[i][k].sc.t_metal), 1),
                     report::fmt(to_MA_per_cm2(family[i][k].sc.j_peak), 2)});
  std::printf("%s\n", table.to_string().c_str());

  // Full-resolution series per j0 for plotting.
  {
    const auto fine = selfconsistent::log_spaced(1e-4, 1.0, 61);
    const auto fam = selfconsistent::sweep_j0(p, j0s, fine);
    std::vector<std::string> names{"duty"};
    std::vector<std::vector<double>> cols{fine};
    for (std::size_t i = 0; i < j0s.size(); ++i) {
      names.push_back("jpeak_j0_" +
                      report::fmt(to_MA_per_cm2(j0s[i]), 1));
      names.push_back("tm_j0_" + report::fmt(to_MA_per_cm2(j0s[i]), 1));
      std::vector<double> jp, tm;
      for (const auto& pt : fam[i]) {
        jp.push_back(to_MA_per_cm2(pt.sc.j_peak));
        tm.push_back(kelvin_to_celsius(pt.sc.t_metal));
      }
      cols.push_back(jp);
      cols.push_back(tm);
    }
    report::write_csv("fig3_series.csv", names, cols);
    std::printf("Full 61-point series written to fig3_series.csv\n\n");
  }

  // Paper's observation: raising j0 raises T_m, but j_peak gains become
  // increasingly ineffective as r decreases below ~1e-3.
  auto gain = [&](std::size_t k) {
    return family.back()[k].sc.j_peak / family.front()[k].sc.j_peak;
  };
  std::printf(
      "j_peak gain from 4x j0 at r = 1:    %.2fx\n"
      "j_peak gain from 4x j0 at r = 1e-4: %.2fx  (diminishing returns)\n",
      gain(duties.size() - 1), gain(0));
  return 0;
}
