// Extension harness: EM degradation physics beyond Black's closed form —
// the two-phase void-growth trace (resistance vs time), the apparent
// current-exponent crossover that explains why accelerated tests must be
// extrapolated carefully, non-isothermal lifetime profiles, and the
// chip-level statistical budget.
#include <cstdio>

#include "em/budget.h"
#include "em/profile.h"
#include "em/void_growth.h"
#include "numeric/constants.h"
#include "report/table.h"
#include "thermal/impedance.h"

using namespace dsmt;

int main() {
  const auto alcu = materials::make_alcu();
  em::VoidModelParams params;

  std::printf("== EM degradation models ==\n\n");

  // 1. Resistance trace under accelerated stress.
  const double j_acc = MA_per_cm2(2.5);
  const double t_acc = celsius_to_kelvin(250.0);
  const double ttf = em::time_to_failure_void(alcu, params, um(0.5), um(0.5),
                                              um(100), j_acc, t_acc);
  const auto trace = em::simulate_void_growth(
      alcu, params, um(0.5), um(0.5), um(100), j_acc, t_acc, 1.5 * ttf, 13);
  std::printf("Accelerated stress (2.5 MA/cm2, 250 C): TTF = %.1f h\n",
              ttf / 3600.0);
  report::Table rt({"t [h]", "void [nm]", "R/R0"});
  for (std::size_t i = 0; i < trace.time.size(); ++i)
    rt.add_row({report::fmt(trace.time[i] / 3600.0, 1),
                report::fmt(trace.void_length[i] * 1e9, 1),
                report::fmt(trace.resistance[i] / trace.r_initial, 4)});
  std::printf("%s\n", rt.to_string().c_str());

  // 2. Current-exponent crossover.
  report::Table nt({"j [MA/cm2]", "apparent n", "regime"});
  for (double j_ma : {0.3, 0.6, 2.0, 10.0, 50.0}) {
    const double n = em::apparent_current_exponent(
        alcu, params, um(0.5), um(0.5), um(100), MA_per_cm2(j_ma), kTrefK);
    nt.add_row({report::fmt(j_ma, 1), report::fmt(n, 2),
                n > 1.7 ? "nucleation-limited" : "growth-limited"});
  }
  std::printf("Black exponent crossover (n = 2 -> 1 with acceleration):\n%s\n",
              nt.to_string().c_str());

  // 3. Thermally short vs long lines.
  const auto cu = materials::make_copper();
  const auto weff =
      thermal::effective_width(um(1.0), um(3.0), thermal::kPhiQuasi1D);
  const auto rth = thermal::rth_per_length_uniform(um(3.0), W_per_mK(1.15), weff);
  const double lambda = thermal::healing_length(cu, um(1.0), um(0.8), rth);
  report::Table st({"L/lambda", "TTF gain vs infinite line"});
  for (double f : {0.5, 1.0, 2.0, 5.0, 20.0}) {
    const double gain = em::short_line_lifetime_gain(
        cu, um(1.0), um(0.8), rth, f * lambda, 40.0, kTrefK);
    st.add_row({report::fmt(f, 1), report::fmt(gain, 2)});
  }
  std::printf(
      "Via cooling (lambda = %.0f um, strong 40 W/m heating):\n%s\n",
      to_um(lambda), st.to_string().c_str());

  // 4. Chip-level budget.
  report::Table bt({"lines", "usable fraction of j0"});
  for (std::size_t n : {1ul, 1000ul, 1000000ul, 1000000000ul})
    bt.add_row({std::to_string(n),
                report::fmt(em::chip_level_j0(cu.em, A_per_m2(1.0), 0.5, n), 3)});
  std::printf("Statistical budget (sigma = 0.5):\n%s\n", bt.to_string().c_str());
  std::printf(
      "These extension models close the gap between the paper's single-line\n"
      "Black-equation treatment and chip-level reliability sign-off.\n");
  return 0;
}
