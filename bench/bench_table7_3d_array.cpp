// Table 7: maximum allowed j_peak for a metal-4 line inside a densely
// packed quadruple-level array (Fig. 8) with all lines heated, vs the same
// line heated alone. The paper (using Rzepka et al.'s FEM constants)
// reports 6.4 vs 10.6 MA/cm^2 — a ~40% reduction from thermal coupling.
//
// Here the FEM is replaced by the in-house FD array solve, whose per-line
// heating coefficients feed the generalized self-consistent equation
// (Eq. 18).
#include <cstdio>

#include "numeric/constants.h"
#include "report/table.h"
#include "selfconsistent/solver.h"
#include "tech/ntrs.h"
#include "thermal/scenarios.h"

using namespace dsmt;

int main() {
  std::printf("== Table 7: M4 in a dense 3-D array vs isolated ==\n\n");

  thermal::ArraySpec spec;
  spec.technology = tech::make_ntrs_250nm_cu();
  spec.max_level = 4;
  spec.lines_per_level = 9;
  const auto arr = thermal::make_array_section(spec);
  std::printf("Array: %d levels x %d lines = %zu wires (FD cross-section)\n",
              spec.max_level, spec.lines_per_level, arr.section.wire_count());

  const auto h = thermal::array_heating_coefficients(arr, 4);
  std::printf("Heating coefficients: all-hot %.3e, isolated %.3e (x%.2f)\n\n",
              h.h_all_hot, h.h_isolated, h.h_all_hot / h.h_isolated);

  // Self-consistent j_peak with each coefficient (signal duty, Cu j0 = 1.8
  // MA/cm^2 to match the paper's Cu-technology context).
  selfconsistent::Problem p;
  p.metal = spec.technology.metal;
  p.duty_cycle = 0.1;
  p.j0 = MA_per_cm2(1.8);

  report::Table table(
      {"Configuration", "max j_peak [MA/cm2]", "T_m [C]", "paper [MA/cm2]"});
  p.heating_coefficient = units::HeatingCoefficient{h.h_all_hot};
  const auto all_hot = selfconsistent::solve(p);
  p.heating_coefficient = units::HeatingCoefficient{h.h_isolated};
  const auto isolated = selfconsistent::solve(p);

  table.add_row({"M1-M4 heated (3-D)", report::fmt(to_MA_per_cm2(all_hot.j_peak), 2),
                 report::fmt(kelvin_to_celsius(all_hot.t_metal), 1), "6.4"});
  table.add_row({"Isolated M4 heated (2-D)",
                 report::fmt(to_MA_per_cm2(isolated.j_peak), 2),
                 report::fmt(kelvin_to_celsius(isolated.t_metal), 1), "10.6"});
  std::printf("%s\n", table.to_string().c_str());

  const double reduction = 1.0 - all_hot.j_peak / isolated.j_peak;
  std::printf(
      "Reduction from thermal coupling: %.0f%% (paper: 'nearly 40%%').\n",
      100.0 * reduction);
  return 0;
}
