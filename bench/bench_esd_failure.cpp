// Section 6: thermal effects under ESD conditions. Regenerates the paper's
// reference points: critical open-circuit current density for AlCu
// (~60 MA/cm^2 on < 200 ns time scales, ref. [8]), Cu's advantage
// (ref. [27]), latent damage after resolidification (ref. [9]), and the
// interconnect sizing rule for ESD protection / I/O routing.
#include <cstdio>

#include "esd/failure.h"
#include "esd/waveforms.h"
#include "numeric/constants.h"
#include "report/table.h"

using namespace dsmt;

int main() {
  std::printf("== Section 6: ESD interconnect failure ==\n\n");

  // Critical current densities vs pulse width.
  report::Table crit({"pulse [ns]", "AlCu melt-onset", "AlCu open-circuit",
                      "Cu open-circuit", "(MA/cm2)"});
  const auto alcu = materials::make_alcu();
  const auto cu = materials::make_copper();
  for (double tp_ns : {25.0, 50.0, 100.0, 200.0, 500.0}) {
    const double tp = tp_ns * 1e-9;
    crit.add_row(
        {report::fmt(tp_ns, 0),
         report::fmt(to_MA_per_cm2(esd::critical_jpeak_melt_onset(alcu, tp, kTrefK)), 1),
         report::fmt(to_MA_per_cm2(esd::critical_jpeak_open(alcu, tp, kTrefK)), 1),
         report::fmt(to_MA_per_cm2(esd::critical_jpeak_open(cu, tp, kTrefK)), 1),
         ""});
  }
  std::printf("%s\n", crit.to_string().c_str());
  std::printf(
      "Paper reference: AlCu opens at ~60 MA/cm2 for sub-200-ns stress;\n"
      "measured 100 ns open-circuit density: %.1f MA/cm2.\n\n",
      to_MA_per_cm2(esd::critical_jpeak_open(alcu, 100e-9, kTrefK)));

  // HBM sweep on a 3 um x 0.6 um AlCu I/O line.
  thermal::PulseLineSpec line;
  line.metal = alcu;
  line.w_m = um(3.0);
  line.t_m = um(0.6);
  line.rth_per_len = 0.3;
  line.t_ref = kTrefK;

  report::Table sweep({"HBM [kV]", "I_peak [A]", "T_peak [C]", "state",
                       "fusion frac", "EM derating"});
  for (double kv : {0.5, 1.0, 2.0, 4.0, 6.0, 8.0}) {
    const auto out = esd::assess(line, esd::hbm(kv * 1000.0));
    sweep.add_row({report::fmt(kv, 1), report::fmt(kv * 1000.0 / 1500.0, 2),
                   report::fmt(kelvin_to_celsius(out.peak_temperature), 0),
                   esd::to_string(out.state),
                   report::fmt(out.fusion_fraction, 2),
                   report::fmt(out.em_lifetime_derating, 2)});
  }
  std::printf("HBM stress on a 3.0 x 0.6 um AlCu I/O line:\n%s\n",
              sweep.to_string().c_str());

  // Sizing rule.
  report::Table size({"HBM [kV]", "I_peak [A]", "min W AlCu [um]",
                      "min W Cu [um]"});
  for (double kv : {1.0, 2.0, 4.0, 8.0}) {
    const double ip = kv * 1000.0 / 1500.0;
    size.add_row(
        {report::fmt(kv, 1), report::fmt(ip, 2),
         report::fmt(to_um(esd::min_width_for_esd(alcu, ip, 150e-9, um(0.6), kTrefK)), 2),
         report::fmt(to_um(esd::min_width_for_esd(cu, ip, 150e-9, um(0.6), kTrefK)), 2)});
  }
  std::printf(
      "Minimum safe width (150 ns effective stress, 1.5x safety, t = 0.6 um):\n%s\n",
      size.to_string().c_str());
  std::printf(
      "Paper conclusion reproduced: self-consistent j_peak limits sit far\n"
      "below ESD failure densities, but ESD protection and I/O interconnect\n"
      "must be sized separately for high-current robustness.\n");
  return 0;
}
