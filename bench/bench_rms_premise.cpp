// Ablation/validation: the j_rms premise of Eq. 9.
//
// The entire self-consistent framework assumes that for ns-scale periodic
// waveforms the line temperature is set by the RMS current alone. This
// harness co-simulates the real repeater current waveform with the
// transient 1-D thermal solver, integrates to the periodic steady state,
// and compares against the analytic DC-at-j_rms prediction — including the
// ripple the lumped model ignores.
#include <cstdio>

#include "core/cosim.h"
#include "numeric/constants.h"
#include "report/table.h"
#include "repeater/optimizer.h"
#include "tech/ntrs.h"

using namespace dsmt;

int main() {
  std::printf("== RMS-premise verification (Eq. 9) ==\n\n");
  report::Table table({"node", "layer", "tau_th/T_clk", "dT transient [K]",
                       "dT rms model [K]", "agreement", "ripple [mK]"});
  for (int node = 0; node < 2; ++node) {
    const auto technology =
        node == 0 ? tech::make_ntrs_250nm_cu() : tech::make_ntrs_100nm_cu();
    const double k_rel = node == 0 ? 4.0 : 2.0;
    const int level = technology.top_level();
    const auto opt = repeater::optimize_layer(technology, level, k_rel,
                                              kTrefK);
    repeater::SimulationOptions so;
    so.steps_per_period = 2500;
    const auto sim = repeater::simulate_stage(technology, level, k_rel, opt,
                                              so);
    core::CosimOptions co;
    co.thermal_periods = 9000;
    const auto res = core::verify_rms_premise(
        technology, level, materials::make_oxide(), sim, co);
    table.add_row({technology.name, report::level_label(level),
                   report::fmt(res.thermal_tau / res.electrical_period, 0),
                   report::fmt(res.dt_transient, 4),
                   report::fmt(res.dt_rms_model, 4),
                   report::fmt(res.agreement, 3),
                   report::fmt(res.ripple * 1e3, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: the thermal time constant exceeds the clock period by 2-3\n"
      "orders of magnitude, the settled transient rise matches the j_rms\n"
      "prediction, and the within-period ripple is in the millikelvin\n"
      "range — the paper's premise of using j_rms for self-heating (Eq. 9)\n"
      "is verified, not assumed.\n");
  return 0;
}
