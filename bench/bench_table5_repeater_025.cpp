// Table 5: optimized interconnect and buffer parameters with the resulting
// RMS and peak current densities — 0.25 um Cu technology, oxide insulator
// (k = 4.0), j_o = 0.6 MA/cm^2.
#include <cstdio>

#include "repeater_table_common.h"

int main() {
  std::printf("== Table 5: optimal repeaters, 0.25 um Cu ==\n");
  dsmt::benchharness::print_repeater_table(dsmt::tech::make_ntrs_250nm_cu(),
                                           4.0, 0.6);
  return 0;
}
