// Shared harness for the paper's design-rule tables (Tables 2-4): runs the
// self-consistent solver over both NTRS nodes, the three paper dielectrics,
// and the signal (r = 0.1) / power (r = 1.0) duty cycles, printing the same
// row layout the paper uses.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "numeric/constants.h"
#include "report/table.h"
#include "selfconsistent/sweep.h"
#include "tech/technology.h"

namespace dsmt::benchharness {

inline void print_design_rule_table(const std::vector<tech::Technology>& techs,
                                    double j0_ma_per_cm2) {
  for (double r : {0.1, 1.0}) {
    std::printf("%s lines (r = %.1f), j_peak in MA/cm^2:\n",
                r < 0.5 ? "Signal" : "Power", r);
    for (const auto& technology : techs) {
      selfconsistent::TableSpec spec;
      spec.technology = technology;
      spec.gap_fills = materials::paper_dielectrics();
      spec.levels.clear();
      // Paper rows: the top two levels at 0.25 um, the top four at 0.1 um.
      const int top = technology.top_level();
      const int rows = technology.num_levels() >= 8 ? 4 : 2;
      for (int l = top - rows + 1; l <= top; ++l) spec.levels.push_back(l);
      spec.duty_cycles = {r};
      spec.j0 = MA_per_cm2(j0_ma_per_cm2);

      const auto cells = selfconsistent::generate_design_rule_table(spec);
      report::Table table({"Metal", "Oxide", "HSQ", "Polyimide", "T_m(ox) [C]"});
      for (int level : spec.levels) {
        std::vector<std::string> row{report::level_label(level)};
        double t_ox = 0.0;
        for (const auto& name : {"Oxide", "HSQ", "Polyimide"}) {
          for (const auto& c : cells)
            if (c.level == level && c.dielectric == name) {
              row.push_back(report::fmt(to_MA_per_cm2(c.sol.j_peak), 3));
              if (c.dielectric == "Oxide")
                t_ox = kelvin_to_celsius(c.sol.t_metal);
            }
        }
        row.push_back(report::fmt(t_ox, 1));
        table.add_row(std::move(row));
      }
      std::printf("  %s node:\n%s\n", technology.name.c_str(),
                  table.to_string().c_str());
    }
  }
}

}  // namespace dsmt::benchharness
