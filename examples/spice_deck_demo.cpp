// Scenario: using the circuit engine standalone through its SPICE-style
// deck format — a ring-oscillator-flavored chain of three inverters driving
// a global wire, written exactly as a designer would write a deck, then
// simulated and measured with the library's waveform tools.
#include <cstdio>

#include "circuit/deck.h"
#include "circuit/waveform.h"
#include "report/table.h"

int main() {
  using namespace dsmt;

  const std::string deck_text = R"(
* three-stage buffered global wire, 0.25um-class devices
VDD vdd 0 DC 2.5
VIN in 0 PULSE(0 2.5 0.2n 0.15n 0.15n 0.7n 2n)

* stage 1 (small)
MN1 n1 in 0   nmos vt=0.5 vdd=2.5 idsat=0.3m alpha=1.3 vdsat0=1.0 size=4
MP1 n1 in vdd pmos vt=0.5 vdd=2.5 idsat=0.14m alpha=1.3 vdsat0=1.0 size=8
C1  n1 0 12f

* stage 2 (medium)
MN2 n2 n1 0   nmos vt=0.5 vdd=2.5 idsat=0.3m alpha=1.3 vdsat0=1.0 size=16
MP2 n2 n1 vdd pmos vt=0.5 vdd=2.5 idsat=0.14m alpha=1.3 vdsat0=1.0 size=32
C2  n2 0 45f

* stage 3 (large driver) + ammeter + 5-section wire + receiver load
MN3 drv n2 0   nmos vt=0.5 vdd=2.5 idsat=0.3m alpha=1.3 vdsat0=1.0 size=64
MP3 drv n2 vdd pmos vt=0.5 vdd=2.5 idsat=0.14m alpha=1.3 vdsat0=1.0 size=128
VAMM drv w0 DC 0
R1 w0 w1 8
R2 w1 w2 8
R3 w2 w3 8
R4 w3 w4 8
R5 w4 out 8
CW0 w0 0 70f
CW1 w1 0 70f
CW2 w2 0 70f
CW3 w3 0 70f
CW4 w4 0 70f
CL out 0 90f
.tran 0.5p 4n
.end
)";

  auto deck = circuit::parse_deck(deck_text);
  std::printf("Parsed deck: %zu R, %zu C, %zu MOSFETs, %zu sources\n",
              deck.netlist.resistors().size(),
              deck.netlist.capacitors().size(),
              deck.netlist.mosfets().size(),
              deck.netlist.vsources().size());

  const auto result = circuit::run_transient(deck.netlist, deck.tran);

  // Measure the wire current over the second clock period.
  const auto i_wire = result.source_current(deck.source_index("vamm"));
  auto [tw, iw] = circuit::window(result.time(), i_wire, 2e-9, 4e-9);
  const auto stats = circuit::measure(tw, iw);

  report::Table t({"metric", "value"});
  t.add_row({"I_peak", report::fmt(stats.peak * 1e3, 2) + " mA"});
  t.add_row({"I_rms", report::fmt(stats.rms * 1e3, 2) + " mA"});
  t.add_row({"effective duty r_eff", report::fmt(stats.duty_effective, 3)});
  const auto v_out = result.voltage(deck.node("out"));
  auto [tv, vv] = circuit::window(result.time(), v_out, 2e-9, 4e-9);
  t.add_row({"out rise 10-90%",
             report::fmt(circuit::rise_time_10_90(tv, vv, 0.0, 2.5) * 1e12, 1) +
                 " ps"});
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "The deck format gives direct access to the MNA engine (alpha-power\n"
      "MOSFETs, trapezoidal integration) without writing C++ netlist code.\n");
  return 0;
}
