// Quickstart: self-consistent current-density design rule for one global
// Cu line, in ~20 lines of library code.
//
//   $ ./quickstart
//
// Computes the maximum allowed peak/RMS/average current densities for an
// M8 signal line of the built-in NTRS 0.1 um Cu technology, comparing the
// oxide and polyimide gap-fill flows.
#include <cstdio>

#include "numeric/constants.h"
#include "selfconsistent/sweep.h"
#include "tech/ntrs.h"
#include "thermal/impedance.h"

int main() {
  using namespace dsmt;

  const tech::Technology technology = tech::make_ntrs_100nm_cu();
  const double j0 = MA_per_cm2(1.8);   // Cu EM design-rule current density
  const double duty_cycle = 0.1;       // signal line

  std::printf("Self-consistent design rule, %s, M%d signal line:\n\n",
              technology.name.c_str(), technology.top_level());

  for (const auto& gap_fill :
       {materials::make_oxide(), materials::make_polyimide()}) {
    const auto problem = selfconsistent::make_level_problem(
        technology, technology.top_level(), gap_fill,
        thermal::kPhiQuasi2D, duty_cycle, A_per_m2(j0));
    const auto sol = selfconsistent::solve(problem);

    std::printf("%-10s  T_m = %6.1f C   j_peak = %5.2f  j_rms = %5.2f  "
                "j_avg = %5.2f  [MA/cm2]\n",
                gap_fill.name.c_str(), kelvin_to_celsius(sol.t_metal),
                to_MA_per_cm2(sol.j_peak), to_MA_per_cm2(sol.j_rms),
                to_MA_per_cm2(sol.j_avg));
  }

  std::printf(
      "\nThe low-k flow trades capacitance (delay) for thermal headroom:\n"
      "the allowed peak current density drops with the gap-fill's thermal\n"
      "conductivity, exactly the effect the paper quantifies.\n");
  return 0;
}
