// Scenario: a process architect explores "what if we switch the gap-fill
// dielectric?" across the full candidate list (oxide -> FSG -> HSQ ->
// polyimide -> aerogel), quantifying the delay win against the thermal
// cost, and saves the chosen variant as a techfile for the design teams.
#include <cstdio>

#include "numeric/constants.h"
#include "repeater/optimizer.h"
#include "report/table.h"
#include "selfconsistent/sweep.h"
#include "tech/ntrs.h"
#include "tech/techfile.h"
#include "thermal/healing.h"
#include "thermal/impedance.h"

int main() {
  using namespace dsmt;

  const auto technology = tech::make_ntrs_100nm_cu();
  const int level = technology.top_level();
  const double j0 = MA_per_cm2(1.8);

  std::printf("Dielectric what-if on %s M%d (signal lines, r = 0.1)\n\n",
              technology.name.c_str(), level);

  report::Table table({"Gap-fill", "k_el", "K_th", "c [fF/mm]", "l_opt [mm]",
                       "stage delay [ps]", "j_peak_sc [MA/cm2]", "T_m [C]",
                       "lambda_th [um]"});
  for (const auto& d :
       {materials::make_oxide(), materials::make_fsg(), materials::make_hsq(),
        materials::make_polyimide(), materials::make_aerogel()}) {
    // Electrical side: lower k -> lower c -> faster optimal stages.
    const auto opt =
        repeater::optimize_layer(technology, level, d.rel_permittivity, kTrefK);
    // Thermal side: lower K_th -> hotter lines -> lower allowed j_peak.
    const auto sol = selfconsistent::solve(selfconsistent::make_level_problem(
        technology, level, d, thermal::kPhiQuasi2D, 0.1, A_per_m2(j0)));
    // Thermal healing length for via-cooled segments.
    const auto stack = technology.stack_below(level, d);
    const double rth = thermal::rth_per_length(
        stack,
        thermal::effective_width(metres(technology.layer(level).width),
                                 metres(stack.total_thickness()),
                                 thermal::kPhiQuasi2D));
    const double lambda = thermal::healing_length(
        technology.metal, technology.layer(level).width,
        technology.layer(level).thickness, rth);

    table.add_row({d.name, report::fmt(d.rel_permittivity, 1),
                   report::fmt(d.k_thermal, 2),
                   report::fmt(opt.c_per_m * 1e12, 1),
                   report::fmt(opt.l_opt * 1e3, 2),
                   report::fmt(opt.stage_delay * 1e12, 1),
                   report::fmt(to_MA_per_cm2(sol.j_peak), 2),
                   report::fmt(kelvin_to_celsius(sol.t_metal), 1),
                   report::fmt(to_um(lambda), 1)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Persist the chosen variant for downstream tools.
  tech::Technology chosen = technology;
  chosen.name = "NTRS-100nm-Cu-HSQ";
  const std::string path = "ntrs_100nm_cu_hsq.tech";
  tech::save_techfile(chosen, path);
  const auto reloaded = tech::load_techfile(path);
  std::printf(
      "Saved the HSQ variant to '%s' (round-trip check: %s, %d levels).\n\n",
      path.c_str(), reloaded.name.c_str(), reloaded.num_levels());

  std::printf(
      "Reading the table: each step down in k buys stage delay (smaller c)\n"
      "but costs allowed j_peak (smaller K_th) — oxide-to-aerogel roughly\n"
      "halves both. The healing length also grows, so fewer lines qualify\n"
      "as 'thermally short'. This is the paper's central trade-off.\n");
  return 0;
}
