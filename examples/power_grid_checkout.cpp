// Scenario: checking a block's power-distribution grid against the paper's
// power-line (r = 1.0) design rules and the chip-level EM budget.
//
// Power straps carry unipolar near-DC current — the most restrictive corner
// of the self-consistent analysis (j_peak = j_avg = j_rms, capped just
// below j_o). This example solves a two-layer strap grid for IR drop and
// per-segment current densities, then asks: (a) does any strap exceed the
// self-consistent power-line limit? (b) what does EM budgeting across all
// straps do to the allowed density?
#include <cstdio>

#include "em/budget.h"
#include "numeric/constants.h"
#include "powergrid/grid.h"
#include "report/table.h"
#include "selfconsistent/sweep.h"
#include "tech/ntrs.h"

int main() {
  using namespace dsmt;

  powergrid::GridSpec spec;
  spec.technology = tech::make_ntrs_100nm_cu();
  spec.nx = 13;
  spec.ny = 13;
  spec.pitch = 80e-6;  // ~1 mm^2 block
  spec.layer_h = 7;
  spec.layer_v = 8;
  spec.width_h = 4.0 * spec.technology.layer(7).width;  // fat power straps
  spec.width_v = 4.0 * spec.technology.layer(8).width;
  spec.vdd = 1.2;

  std::vector<powergrid::Pad> pads = {{0, 0}, {12, 0}, {0, 12}, {12, 12},
                                      {6, 0}, {6, 12}, {0, 6}, {12, 6}};
  const double block_current = 2.0;  // amps
  const auto demands = powergrid::uniform_demand(spec, block_current);

  const auto sol = powergrid::solve(spec, pads, demands);
  std::printf("Power grid: %dx%d nodes, %.1f A block demand, %zu pads\n",
              spec.nx, spec.ny, block_current, pads.size());
  std::printf("Worst IR drop: %.1f mV (%.1f%% of vdd), CG iters: %d\n\n",
              sol.worst_ir_drop * 1e3, 100.0 * sol.worst_ir_drop / spec.vdd,
              sol.cg_iterations);

  // Self-consistent power-line limits for the two strap layers.
  const double j0 = MA_per_cm2(1.8);  // Cu
  report::Table table({"Layer", "role", "max j [MA/cm2]",
                       "limit r=1 [MA/cm2]", "util", "verdict"});
  for (int pass = 0; pass < 2; ++pass) {
    const int level = pass == 0 ? spec.layer_h : spec.layer_v;
    const double j_max = pass == 0 ? sol.max_j_horizontal : sol.max_j_vertical;
    const auto limit = selfconsistent::solve(
        selfconsistent::make_level_problem(spec.technology, level,
                                           materials::make_oxide(), 2.45, 1.0,
                                           A_per_m2(j0)));
    const double util = j_max / limit.j_peak;
    table.add_row({report::level_label(level),
                   pass == 0 ? "x-straps" : "y-straps",
                   report::fmt(to_MA_per_cm2(j_max), 3),
                   report::fmt(to_MA_per_cm2(limit.j_peak), 3),
                   report::fmt(util, 3), util <= 1.0 ? "PASS" : "FAIL"});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Chip-level EM budget: the block has ~hundreds of straps; a full chip
  // has millions. How much of j0 survives budgeting?
  std::printf("EM budgeting (lognormal sigma = 0.5, 0.1%% chip quantile):\n");
  report::Table budget({"stressed lines", "usable j0 [MA/cm2]", "fraction"});
  for (std::size_t n : {1ul, 1000ul, 1000000ul, 100000000ul}) {
    const double jb = em::chip_level_j0(spec.technology.metal.em, A_per_m2(j0), 0.5, n);
    budget.add_row({std::to_string(n), report::fmt(to_MA_per_cm2(jb), 3),
                    report::fmt(jb / j0, 3)});
  }
  std::printf("%s\n", budget.to_string().c_str());
  std::printf(
      "Takeaway: the grid passes the per-strap self-consistent rule with\n"
      "headroom, but scaling the same rule to chip-wide populations erodes\n"
      "the usable j0 — design rules must budget statistically, not per line.\n");
  return 0;
}
