// dsmt_cli — a small command-line front end over the library, for flows
// that want the analyses without writing C++:
//
//   dsmt_cli designrule --tech <250|180|130|100|file.tech> [--level N]
//                       [--j0 MA] [--duty r] [--dielectric name]
//   dsmt_cli repeater   --tech <...> [--level N] [--k K]
//   dsmt_cli esd        --tech <...> [--level N] [--hbm kV]
//   dsmt_cli signoff    --tech <...> [--j0 MA] [--k K]
//   dsmt_cli techfile   --tech <...>            (dump the techfile)
//
// Unknown options or missing values exit non-zero with a usage message.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "core/signoff.h"
#include "numeric/constants.h"
#include "repeater/optimizer.h"
#include "repeater/simulate.h"
#include "selfconsistent/sweep.h"
#include "tech/ntrs.h"
#include "tech/techfile.h"

namespace {

using namespace dsmt;

int usage() {
  std::fprintf(stderr,
               "usage: dsmt_cli <designrule|repeater|esd|signoff|techfile> "
               "--tech <250|180|130|100|file.tech> [options]\n");
  return 2;
}

tech::Technology load_tech(const std::string& spec) {
  if (spec == "250") return tech::make_ntrs_250nm_cu();
  if (spec == "180") return tech::make_ntrs_180nm_cu();
  if (spec == "130") return tech::make_ntrs_130nm_cu();
  if (spec == "100") return tech::make_ntrs_100nm_cu();
  return tech::load_techfile(spec);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  std::map<std::string, std::string> opts;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) return usage();
    opts[argv[i] + 2] = argv[i + 1];
  }
  if (!opts.count("tech")) return usage();

  try {
    const auto technology = load_tech(opts["tech"]);
    const int level = opts.count("level") ? std::stoi(opts["level"])
                                          : technology.top_level();
    const double j0 =
        MA_per_cm2(opts.count("j0") ? std::stod(opts["j0"]) : 0.6);

    if (cmd == "techfile") {
      std::printf("%s", tech::to_techfile(technology).c_str());
      return 0;
    }
    if (cmd == "designrule") {
      const double duty = opts.count("duty") ? std::stod(opts["duty"]) : 0.1;
      const auto gf = materials::dielectric_by_name(
          opts.count("dielectric") ? opts["dielectric"] : "oxide");
      const auto sol = selfconsistent::solve(
          selfconsistent::make_level_problem(technology, level, gf, 2.45,
                                             duty, A_per_m2(j0)));
      std::printf(
          "%s M%d, %s gap-fill, r = %.3g, j0 = %.2f MA/cm2:\n"
          "  T_m    = %.1f C\n  j_peak = %.3f MA/cm2\n"
          "  j_rms  = %.3f MA/cm2\n  j_avg  = %.3f MA/cm2\n",
          technology.name.c_str(), level, gf.name.c_str(), duty,
          to_MA_per_cm2(j0), kelvin_to_celsius(sol.t_metal),
          to_MA_per_cm2(sol.j_peak), to_MA_per_cm2(sol.j_rms),
          to_MA_per_cm2(sol.j_avg));
      return 0;
    }
    if (cmd == "repeater") {
      const double k = opts.count("k") ? std::stod(opts["k"]) : 4.0;
      const auto opt = repeater::optimize_layer(technology, level, k, kTrefK);
      const auto sim = repeater::simulate_stage(technology, level, k, opt);
      std::printf(
          "%s M%d (insulator k = %.1f):\n"
          "  l_opt = %.2f mm, s_opt = %.0f, stage delay = %.0f ps\n"
          "  simulated: I_peak = %.2f mA, I_rms = %.2f mA, r_eff = %.3f\n"
          "  j_peak = %.3f MA/cm2, j_rms = %.3f MA/cm2\n",
          technology.name.c_str(), level, k, opt.l_opt * 1e3, opt.s_opt,
          opt.stage_delay * 1e12, sim.current_stats.peak * 1e3,
          sim.current_stats.rms * 1e3, sim.duty_effective,
          to_MA_per_cm2(sim.j_peak), to_MA_per_cm2(sim.j_rms));
      return 0;
    }
    if (cmd == "esd") {
      const double kv = opts.count("hbm") ? std::stod(opts["hbm"]) : 2.0;
      core::DesignRuleEngine engine(technology, j0);
      const auto out =
          engine.esd_screen(level, kv * 1000.0, materials::make_oxide());
      std::printf(
          "%s M%d under %.1f kV HBM: %s (T_peak = %.0f C, EM derating %.2f)\n",
          technology.name.c_str(), level, kv, esd::to_string(out.state),
          kelvin_to_celsius(out.peak_temperature), out.em_lifetime_derating);
      return out.state == esd::FailureState::kSafe ? 0 : 1;
    }
    if (cmd == "signoff") {
      core::SignoffOptions so;
      so.j0 = j0;
      if (opts.count("k")) so.k_rel_electrical = std::stod(opts["k"]);
      const auto report = core::run_signoff(technology, so);
      std::printf("%s", report.to_text().c_str());
      return report.all_global_layers_pass ? 0 : 1;
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dsmt_cli: %s\n", e.what());
    return 1;
  }
}
