// Scenario: the one-call chip-level sign-off — everything the library
// reproduces from the paper, run as a single structured report for a
// technology (here loaded through the techfile round-trip to show the
// persistence path a real flow would use).
#include <cstdio>

#include "core/signoff.h"
#include "numeric/constants.h"
#include "tech/ntrs.h"
#include "tech/techfile.h"

int main() {
  using namespace dsmt;

  // A real flow would load a techfile from disk; round-trip the built-in
  // node to exercise that path.
  const tech::Technology technology =
      tech::parse_techfile(tech::to_techfile(tech::make_ntrs_100nm_cu()));

  core::SignoffOptions options;
  options.j0 = MA_per_cm2(1.8);        // Cu EM rule
  options.k_rel_electrical = 2.0;      // low-k era insulator
  options.esd_hbm_volts = 2000.0;      // 2 kV HBM qualification
  options.engine.sim.steps_per_period = 2500;

  const auto report = core::run_signoff(technology, options);
  std::printf("%s", report.to_text().c_str());
  return report.all_global_layers_pass ? 0 : 1;
}
