// dsmt_serve — front end over the fault-tolerant request service
// (dsmt::service::Server), in one of two modes:
//
// Batch mode (default): reads a JSON batch (a bare array of request
// objects, or {"requests": [...]}), serves it through admission control /
// retry / breaker / degradation ladder, and prints one JSON document:
//
//   {"responses": [...one structured response per request, in order...],
//    "service":   {...admission counters, cache, breaker transitions...}}
//
// Socket mode (--listen PATH or --tcp PORT): runs the hardened socket
// front end (dsmt::net::Server) speaking DSM1-framed request/response JSON
// until SIGTERM/SIGINT, then drains gracefully — stop accepting, finish or
// deadline-out in-flight work, flush — and prints the sign-off report
// (connection counters plus the service section) on stdout before exiting.
//
// Process isolation (--isolate, socket mode only): solves run in forked
// worker children supervised by dsmt::supervise::WorkerPool instead of in
// the serving process. A worker that segfaults, aborts, OOMs, or trips its
// rlimit rails (--rlimit-as-mb / --rlimit-cpu-s) kills one request — the
// front end answers it "worker-crashed", restarts the slot, and keeps
// serving; a request that crashes two workers is quarantined. --crash-faults
// arms the chaos harness IN THE CHILDREN ONLY (see numeric/fault_injection).
//
// Exit-code contract (also printed by --help):
//   0  batch: every request got a terminal response (shed and degraded
//      count as served; with --strict, additionally no terminal response
//      carries a failure status);
//      socket: the drain completed cleanly inside its tick budget (with
//      --strict, a forced drain also exits 1). --isolate does not change
//      the contract: worker deaths surface as per-request "worker-crashed"
//      responses, never as a nonzero front-end exit
//   1  --strict violation: a terminal failure response (batch) or a forced
//      drain (socket)
//   2  usage, batch-parse, or socket-setup errors (--isolate with --batch,
//      unknown --crash-faults kind, or a failed initial worker fork)
//
// With fault injection disarmed, batch output is bit-identical for every
// DSMT_THREADS value, and so is each connection's reply byte stream in
// socket mode — with or without --isolate (worker replies are forwarded
// byte-verbatim).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/warm.h"
#include "net/server.h"
#include "numeric/fault_injection.h"
#include "service/server.h"
#include "supervise/pool.h"

namespace {

using namespace dsmt;

/// Single funnel for every usage/error print, so messages stay uniform and
/// grep-able ("dsmt_serve: ..." on stderr).
void print_error(const std::string& message) {
  std::fprintf(stderr, "dsmt_serve: %s\n", message.c_str());
}

int usage(bool to_stdout = false) {
  std::fprintf(
      to_stdout ? stdout : stderr,
      "usage: dsmt_serve [--batch file.json|-] [--listen SOCKET_PATH]\n"
      "                  [--tcp PORT] [--queue N] [--deadline-ms M]\n"
      "                  [--max-attempts N] [--breaker-threshold K]\n"
      "                  [--max-connections N] [--max-inflight N]\n"
      "                  [--tick-ms M] [--idle-ticks N] [--drain-ticks N]\n"
      "                  [--isolate] [--workers N] [--rlimit-as-mb N]\n"
      "                  [--rlimit-cpu-s N] [--crash-faults KIND[:SUBSTR]]\n"
      "                  [--cache-dir DIR] [--warm-cache]\n"
      "                  [--indent N] [--strict] [--help]\n"
      "\n"
      "Batch mode (default; --batch - reads stdin) serves one JSON batch\n"
      "and prints {\"responses\": [...], \"service\": {...}}.\n"
      "Socket mode (--listen or --tcp, mutually exclusive with --batch)\n"
      "serves DSM1-framed requests until SIGTERM/SIGINT, drains\n"
      "gracefully, and prints the sign-off report.\n"
      "\n"
      "--isolate (socket mode only) runs solves in --workers forked child\n"
      "processes: a crashing request costs one worker, answered\n"
      "\"worker-crashed\"; two crashes quarantine the request's hash.\n"
      "--rlimit-as-mb/--rlimit-cpu-s rail each worker; --crash-faults\n"
      "KIND[:SUBSTR] (abort|segv|oom|stall, default SUBSTR \"poison\") arms the\n"
      "crash-chaos harness in the children only.\n"
      "\n"
      "--cache-dir DIR persists the content-addressed solve cache as an\n"
      "append-only checksummed segment (DIR/solve.dsc), recovered and\n"
      "repaired at startup; --warm-cache pre-solves the hot lattice into\n"
      "it. Every hit is checksum-verified and replies stay byte-identical\n"
      "to cold solves; corrupt entries are quarantined, never served.\n"
      "Works with and without --isolate (the parent shares the cache).\n"
      "\n"
      "exit codes:\n"
      "  0  served: every request answered (batch) / clean drain (socket);\n"
      "     worker crashes under --isolate never change the exit code\n"
      "  1  --strict violation: terminal failure response or forced drain\n"
      "  2  usage, batch-parse, or socket-setup error (--isolate with\n"
      "     --batch, bad --crash-faults kind, failed initial worker fork)\n");
  return to_stdout ? 0 : 2;
}

bool read_all(const std::string& path, std::string& out) {
  std::FILE* in = path == "-" ? stdin : std::fopen(path.c_str(), "rb");
  if (in == nullptr) return false;
  char buf[1 << 14];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, in)) > 0)
    out.append(buf, got);
  const bool ok = std::ferror(in) == 0;
  if (in != stdin) std::fclose(in);
  return ok;
}

int run_batch(const std::map<std::string, std::string>& opts,
              const service::ServerConfig& config, bool strict, int indent) {
  const auto batch_it = opts.find("batch");
  const std::string path = batch_it != opts.end() ? batch_it->second : "-";
  std::string text;
  if (!read_all(path, text)) {
    print_error("cannot read batch '" + path + "'");
    return 2;
  }

  const std::vector<service::Request> batch = service::parse_batch(text);
  service::Server server(config);
  const std::vector<service::Response> responses = server.submit_batch(batch);

  int failures = 0;
  report::Json responses_json = report::Json::array();
  for (const service::Response& resp : responses) {
    if (!resp.ok()) ++failures;
    responses_json.push(service::response_to_json(resp));
  }
  report::Json root = report::Json::object();
  root.set("responses", std::move(responses_json));
  root.set("service", server.service_json());
  std::printf("%s\n", root.dump(indent).c_str());
  if (strict && failures > 0) {
    print_error("--strict: " + std::to_string(failures) + " of " +
                std::to_string(responses.size()) +
                " responses carry a failure status");
    return 1;
  }
  return 0;
}

/// Parses --crash-faults KIND[:SUBSTR] into a child fault plan. Returns
/// false on an unknown kind.
bool parse_crash_faults(const std::string& value,
                        numeric::fault::FaultPlan& plan) {
  const std::size_t colon = value.find(':');
  const std::string kind = value.substr(0, colon);
  if (kind == "abort")
    plan.kind = numeric::fault::FaultKind::kCrashAbort;
  else if (kind == "segv")
    plan.kind = numeric::fault::FaultKind::kCrashSegv;
  else if (kind == "oom")
    plan.kind = numeric::fault::FaultKind::kCrashOom;
  else if (kind == "stall")
    plan.kind = numeric::fault::FaultKind::kCrashStall;
  else
    return false;
  plan.kernel_substr = "supervise/worker";
  plan.key_substr =
      colon == std::string::npos ? "poison" : value.substr(colon + 1);
  return true;
}

int run_socket(const net::NetConfig& config, bool strict, int indent,
               supervise::WorkerPool* pool) {
  net::Server server(config);
  server.open();  // fail fast (and resolve an ephemeral TCP port) pre-loop
  if (config.endpoint.kind == net::Endpoint::Kind::kTcp)
    std::fprintf(stderr, "dsmt_serve: listening on 127.0.0.1:%u\n",
                 static_cast<unsigned>(server.bound_port()));
  else
    std::fprintf(stderr, "dsmt_serve: listening on %s\n",
                 config.endpoint.path.c_str());
  server.install_signal_drain();
  const net::NetStats stats = server.run();

  report::Json net_json = report::Json::object();
  net_json.set("accepted", report::Json::integer(
                               static_cast<long long>(stats.accepted)))
      .set("rejected_connections",
           report::Json::integer(
               static_cast<long long>(stats.rejected_connections)))
      .set("frames_in",
           report::Json::integer(static_cast<long long>(stats.frames_in)))
      .set("replies_sent",
           report::Json::integer(static_cast<long long>(stats.replies_sent)))
      .set("pings", report::Json::integer(static_cast<long long>(stats.pings)))
      .set("rejected_inflight",
           report::Json::integer(
               static_cast<long long>(stats.rejected_inflight)))
      .set("invalid_requests",
           report::Json::integer(
               static_cast<long long>(stats.invalid_requests)))
      .set("protocol_errors",
           report::Json::integer(
               static_cast<long long>(stats.protocol_errors)))
      .set("evicted_idle",
           report::Json::integer(static_cast<long long>(stats.evicted_idle)))
      .set("evicted_midframe",
           report::Json::integer(
               static_cast<long long>(stats.evicted_midframe)))
      .set("evicted_stalled",
           report::Json::integer(
               static_cast<long long>(stats.evicted_stalled)))
      .set("resets", report::Json::integer(
                         static_cast<long long>(stats.resets)))
      .set("drained_clean", report::Json::boolean(stats.drained_clean));
  report::Json root = report::Json::object();
  root.set("net", std::move(net_json));
  root.set("service", server.service().service_json());
  if (pool != nullptr) root.set("supervise", pool->supervise_json());
  std::printf("%s\n", root.dump(indent).c_str());

  if (!stats.drained_clean) {
    print_error("drain timed out with work in flight (forced shutdown)");
    if (strict) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> opts;
  bool strict = false;
  bool isolate = false;
  bool warm = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(/*to_stdout=*/true);
    if (arg == "--strict") {
      strict = true;
      continue;
    }
    if (arg == "--isolate") {
      isolate = true;
      continue;
    }
    if (arg == "--warm-cache") {
      warm = true;
      continue;
    }
    if (std::strncmp(argv[i], "--", 2) != 0 || i + 1 >= argc) return usage();
    opts[arg.substr(2)] = argv[++i];
  }

  try {
    service::ServerConfig config;
    if (opts.count("queue"))
      config.queue_capacity =
          static_cast<std::size_t>(std::stoul(opts["queue"]));
    if (opts.count("deadline-ms"))
      config.deadline_ns =
          static_cast<std::uint64_t>(std::stoull(opts["deadline-ms"])) *
          1000000ULL;
    if (opts.count("max-attempts"))
      config.retry.max_attempts = std::stoi(opts["max-attempts"]);
    if (opts.count("breaker-threshold"))
      config.breaker.failure_threshold = std::stoi(opts["breaker-threshold"]);
    const int indent = opts.count("indent") ? std::stoi(opts["indent"]) : 2;

    // Content-addressed solve cache: --cache-dir makes it durable (the
    // segment file is recovered/repaired here, before any server thread
    // exists), --warm-cache alone gives a memory-only warm cache.
    std::shared_ptr<cache::SolveCache> solve_cache;
    if (opts.count("cache-dir") || warm) {
      cache::SolveCacheConfig cache_config;
      if (opts.count("cache-dir")) cache_config.dir = opts["cache-dir"];
      solve_cache = std::make_shared<cache::SolveCache>(cache_config);
      if (warm) {
        const cache::WarmReport report = cache::warm_hot_lattice(*solve_cache);
        std::fprintf(stderr,
                     "dsmt_serve: warm cache: %zu lattice points, %zu "
                     "solved, %zu cached\n",
                     report.requested, report.solved, report.inserted);
      }
      config.solve_cache = solve_cache;
    }

    const bool socket_mode = opts.count("listen") > 0 || opts.count("tcp") > 0;
    if (!socket_mode) {
      if (isolate) {
        print_error("--isolate requires socket mode (--listen or --tcp)");
        return usage();
      }
      return run_batch(opts, config, strict, indent);
    }

    if (opts.count("batch") > 0 || (opts.count("listen") && opts.count("tcp"))) {
      print_error("--listen/--tcp are mutually exclusive with each other "
                  "and with --batch");
      return usage();
    }
    net::NetConfig net_config;
    net_config.service = config;
    if (opts.count("listen")) {
      net_config.endpoint.kind = net::Endpoint::Kind::kUnix;
      net_config.endpoint.path = opts["listen"];
    } else {
      net_config.endpoint.kind = net::Endpoint::Kind::kTcp;
      net_config.endpoint.port =
          static_cast<std::uint16_t>(std::stoi(opts["tcp"]));
    }
    if (opts.count("max-connections"))
      net_config.max_connections =
          static_cast<std::size_t>(std::stoul(opts["max-connections"]));
    if (opts.count("max-inflight"))
      net_config.max_inflight_total =
          static_cast<std::size_t>(std::stoul(opts["max-inflight"]));
    if (opts.count("tick-ms"))
      net_config.tick_ms = std::stoi(opts["tick-ms"]);
    if (opts.count("idle-ticks"))
      net_config.idle_timeout_ticks = std::stoull(opts["idle-ticks"]);
    if (opts.count("drain-ticks"))
      net_config.drain_timeout_ticks = std::stoull(opts["drain-ticks"]);
    // The request budget mirrors the service deadline so socket callers get
    // the same per-request guarantee as batch callers.
    net_config.request_deadline_ns = config.deadline_ns;

    if (!isolate) return run_socket(net_config, strict, indent, nullptr);

    supervise::SuperviseConfig sup;
    sup.service = config;  // the CHILD-side service configuration
    // The parent serves verified hits itself; the WorkerPool constructor
    // strips service.solve_cache so children never inherit the cache.
    sup.solve_cache = solve_cache;
    if (opts.count("workers"))
      sup.workers = static_cast<std::size_t>(std::stoul(opts["workers"]));
    if (opts.count("rlimit-as-mb"))
      sup.limits.rlimit_as_bytes =
          static_cast<std::uint64_t>(std::stoull(opts["rlimit-as-mb"]))
          << 20;
    if (opts.count("rlimit-cpu-s"))
      sup.limits.rlimit_cpu_seconds =
          static_cast<std::uint64_t>(std::stoull(opts["rlimit-cpu-s"]));
    if (opts.count("crash-faults") &&
        !parse_crash_faults(opts["crash-faults"], sup.limits.child_fault)) {
      print_error("--crash-faults: unknown kind in '" +
                  opts["crash-faults"] + "' (want abort|segv|oom|stall)");
      return usage();
    }
    // The in-process service goes unused in isolate mode; the pool owns the
    // sign-off "service" key (quarantine table + worker fleet health).
    net_config.service.publish_signoff = false;

    // Fork the fleet BEFORE any server thread exists: the constructor is
    // the single-threaded window where fork() is safe.
    auto pool = std::make_unique<supervise::WorkerPool>(sup);
    if (pool->live_workers() == 0) {
      print_error("--isolate: no worker could be forked");
      return 2;
    }
    supervise::WorkerPool* pool_ptr = pool.get();
    net_config.frame_handler = [pool_ptr](const service::Request& request,
                                          std::uint64_t seq) {
      return pool_ptr->execute(request, seq).frame;
    };
    net_config.health_source = [pool_ptr] {
      return pool_ptr->supervise_json();
    };
    const int code = run_socket(net_config, strict, indent, pool_ptr);
    pool->shutdown();
    return code;
  } catch (const std::exception& e) {
    print_error(e.what());
    return 2;
  }
}
