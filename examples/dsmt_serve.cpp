// dsmt_serve — batch front end over the fault-tolerant request service
// (dsmt::service::Server). Reads a JSON batch (a bare array of request
// objects, or {"requests": [...]}), serves it through admission control /
// retry / breaker / degradation ladder, and prints one JSON document:
//
//   {"responses": [...one structured response per request, in order...],
//    "service":   {...admission counters, cache, breaker transitions...}}
//
//   dsmt_serve [--batch file.json|-] [--queue N] [--deadline-ms M]
//              [--max-attempts N] [--breaker-threshold K] [--indent N]
//
// --batch defaults to "-" (stdin). Exit code: 0 when every request got a
// terminal response (shed and degraded count as served), 2 on usage or
// batch-parse errors. With fault injection disarmed the output is
// bit-identical for every DSMT_THREADS value.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "service/server.h"

namespace {

using namespace dsmt;

int usage() {
  std::fprintf(stderr,
               "usage: dsmt_serve [--batch file.json|-] [--queue N] "
               "[--deadline-ms M] [--max-attempts N] "
               "[--breaker-threshold K] [--indent N]\n");
  return 2;
}

bool read_all(const std::string& path, std::string& out) {
  std::FILE* in = path == "-" ? stdin : std::fopen(path.c_str(), "rb");
  if (in == nullptr) return false;
  char buf[1 << 14];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, in)) > 0)
    out.append(buf, got);
  const bool ok = std::ferror(in) == 0;
  if (in != stdin) std::fclose(in);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> opts;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) return usage();
    opts[argv[i] + 2] = argv[i + 1];
  }
  if (argc >= 2 && (argc - 1) % 2 != 0) return usage();

  try {
    const std::string path = opts.count("batch") ? opts["batch"] : "-";
    std::string text;
    if (!read_all(path, text)) {
      std::fprintf(stderr, "dsmt_serve: cannot read batch '%s'\n",
                   path.c_str());
      return 2;
    }

    service::ServerConfig config;
    if (opts.count("queue"))
      config.queue_capacity =
          static_cast<std::size_t>(std::stoul(opts["queue"]));
    if (opts.count("deadline-ms"))
      config.deadline_ns =
          static_cast<std::uint64_t>(std::stoull(opts["deadline-ms"])) *
          1000000ULL;
    if (opts.count("max-attempts"))
      config.retry.max_attempts = std::stoi(opts["max-attempts"]);
    if (opts.count("breaker-threshold"))
      config.breaker.failure_threshold = std::stoi(opts["breaker-threshold"]);
    const int indent = opts.count("indent") ? std::stoi(opts["indent"]) : 2;

    const std::vector<service::Request> batch = service::parse_batch(text);
    service::Server server(config);
    const std::vector<service::Response> responses =
        server.submit_batch(batch);

    report::Json responses_json = report::Json::array();
    for (const service::Response& resp : responses)
      responses_json.push(service::response_to_json(resp));
    report::Json root = report::Json::object();
    root.set("responses", std::move(responses_json));
    root.set("service", server.service_json());
    std::printf("%s\n", root.dump(indent).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dsmt_serve: %s\n", e.what());
    return 2;
  }
}
