// dsmt_serve — front end over the fault-tolerant request service
// (dsmt::service::Server), in one of two modes:
//
// Batch mode (default): reads a JSON batch (a bare array of request
// objects, or {"requests": [...]}), serves it through admission control /
// retry / breaker / degradation ladder, and prints one JSON document:
//
//   {"responses": [...one structured response per request, in order...],
//    "service":   {...admission counters, cache, breaker transitions...}}
//
// Socket mode (--listen PATH or --tcp PORT): runs the hardened socket
// front end (dsmt::net::Server) speaking DSM1-framed request/response JSON
// until SIGTERM/SIGINT, then drains gracefully — stop accepting, finish or
// deadline-out in-flight work, flush — and prints the sign-off report
// (connection counters plus the service section) on stdout before exiting.
//
// Exit-code contract (also printed by --help):
//   0  batch: every request got a terminal response (shed and degraded
//      count as served; with --strict, additionally no terminal response
//      carries a failure status);
//      socket: the drain completed cleanly inside its tick budget (with
//      --strict, a forced drain also exits 1)
//   1  --strict violation: a terminal failure response (batch) or a forced
//      drain (socket)
//   2  usage, batch-parse, or socket-setup errors
//
// With fault injection disarmed, batch output is bit-identical for every
// DSMT_THREADS value, and so is each connection's reply byte stream in
// socket mode.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "net/server.h"
#include "service/server.h"

namespace {

using namespace dsmt;

/// Single funnel for every usage/error print, so messages stay uniform and
/// grep-able ("dsmt_serve: ..." on stderr).
void print_error(const std::string& message) {
  std::fprintf(stderr, "dsmt_serve: %s\n", message.c_str());
}

int usage(bool to_stdout = false) {
  std::fprintf(
      to_stdout ? stdout : stderr,
      "usage: dsmt_serve [--batch file.json|-] [--listen SOCKET_PATH]\n"
      "                  [--tcp PORT] [--queue N] [--deadline-ms M]\n"
      "                  [--max-attempts N] [--breaker-threshold K]\n"
      "                  [--max-connections N] [--max-inflight N]\n"
      "                  [--tick-ms M] [--idle-ticks N] [--drain-ticks N]\n"
      "                  [--indent N] [--strict] [--help]\n"
      "\n"
      "Batch mode (default; --batch - reads stdin) serves one JSON batch\n"
      "and prints {\"responses\": [...], \"service\": {...}}.\n"
      "Socket mode (--listen or --tcp, mutually exclusive with --batch)\n"
      "serves DSM1-framed requests until SIGTERM/SIGINT, drains\n"
      "gracefully, and prints the sign-off report.\n"
      "\n"
      "exit codes:\n"
      "  0  served: every request answered (batch) / clean drain (socket)\n"
      "  1  --strict violation: terminal failure response or forced drain\n"
      "  2  usage, batch-parse, or socket-setup error\n");
  return to_stdout ? 0 : 2;
}

bool read_all(const std::string& path, std::string& out) {
  std::FILE* in = path == "-" ? stdin : std::fopen(path.c_str(), "rb");
  if (in == nullptr) return false;
  char buf[1 << 14];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, in)) > 0)
    out.append(buf, got);
  const bool ok = std::ferror(in) == 0;
  if (in != stdin) std::fclose(in);
  return ok;
}

int run_batch(const std::map<std::string, std::string>& opts,
              const service::ServerConfig& config, bool strict, int indent) {
  const auto batch_it = opts.find("batch");
  const std::string path = batch_it != opts.end() ? batch_it->second : "-";
  std::string text;
  if (!read_all(path, text)) {
    print_error("cannot read batch '" + path + "'");
    return 2;
  }

  const std::vector<service::Request> batch = service::parse_batch(text);
  service::Server server(config);
  const std::vector<service::Response> responses = server.submit_batch(batch);

  int failures = 0;
  report::Json responses_json = report::Json::array();
  for (const service::Response& resp : responses) {
    if (!resp.ok()) ++failures;
    responses_json.push(service::response_to_json(resp));
  }
  report::Json root = report::Json::object();
  root.set("responses", std::move(responses_json));
  root.set("service", server.service_json());
  std::printf("%s\n", root.dump(indent).c_str());
  if (strict && failures > 0) {
    print_error("--strict: " + std::to_string(failures) + " of " +
                std::to_string(responses.size()) +
                " responses carry a failure status");
    return 1;
  }
  return 0;
}

int run_socket(const net::NetConfig& config, bool strict, int indent) {
  net::Server server(config);
  server.open();  // fail fast (and resolve an ephemeral TCP port) pre-loop
  if (config.endpoint.kind == net::Endpoint::Kind::kTcp)
    std::fprintf(stderr, "dsmt_serve: listening on 127.0.0.1:%u\n",
                 static_cast<unsigned>(server.bound_port()));
  else
    std::fprintf(stderr, "dsmt_serve: listening on %s\n",
                 config.endpoint.path.c_str());
  server.install_signal_drain();
  const net::NetStats stats = server.run();

  report::Json net_json = report::Json::object();
  net_json.set("accepted", report::Json::integer(
                               static_cast<long long>(stats.accepted)))
      .set("rejected_connections",
           report::Json::integer(
               static_cast<long long>(stats.rejected_connections)))
      .set("frames_in",
           report::Json::integer(static_cast<long long>(stats.frames_in)))
      .set("replies_sent",
           report::Json::integer(static_cast<long long>(stats.replies_sent)))
      .set("pings", report::Json::integer(static_cast<long long>(stats.pings)))
      .set("rejected_inflight",
           report::Json::integer(
               static_cast<long long>(stats.rejected_inflight)))
      .set("invalid_requests",
           report::Json::integer(
               static_cast<long long>(stats.invalid_requests)))
      .set("protocol_errors",
           report::Json::integer(
               static_cast<long long>(stats.protocol_errors)))
      .set("evicted_idle",
           report::Json::integer(static_cast<long long>(stats.evicted_idle)))
      .set("evicted_midframe",
           report::Json::integer(
               static_cast<long long>(stats.evicted_midframe)))
      .set("evicted_stalled",
           report::Json::integer(
               static_cast<long long>(stats.evicted_stalled)))
      .set("resets", report::Json::integer(
                         static_cast<long long>(stats.resets)))
      .set("drained_clean", report::Json::boolean(stats.drained_clean));
  report::Json root = report::Json::object();
  root.set("net", std::move(net_json));
  root.set("service", server.service().service_json());
  std::printf("%s\n", root.dump(indent).c_str());

  if (!stats.drained_clean) {
    print_error("drain timed out with work in flight (forced shutdown)");
    if (strict) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> opts;
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(/*to_stdout=*/true);
    if (arg == "--strict") {
      strict = true;
      continue;
    }
    if (std::strncmp(argv[i], "--", 2) != 0 || i + 1 >= argc) return usage();
    opts[arg.substr(2)] = argv[++i];
  }

  try {
    service::ServerConfig config;
    if (opts.count("queue"))
      config.queue_capacity =
          static_cast<std::size_t>(std::stoul(opts["queue"]));
    if (opts.count("deadline-ms"))
      config.deadline_ns =
          static_cast<std::uint64_t>(std::stoull(opts["deadline-ms"])) *
          1000000ULL;
    if (opts.count("max-attempts"))
      config.retry.max_attempts = std::stoi(opts["max-attempts"]);
    if (opts.count("breaker-threshold"))
      config.breaker.failure_threshold = std::stoi(opts["breaker-threshold"]);
    const int indent = opts.count("indent") ? std::stoi(opts["indent"]) : 2;

    const bool socket_mode = opts.count("listen") > 0 || opts.count("tcp") > 0;
    if (!socket_mode) return run_batch(opts, config, strict, indent);

    if (opts.count("batch") > 0 || (opts.count("listen") && opts.count("tcp"))) {
      print_error("--listen/--tcp are mutually exclusive with each other "
                  "and with --batch");
      return usage();
    }
    net::NetConfig net_config;
    net_config.service = config;
    if (opts.count("listen")) {
      net_config.endpoint.kind = net::Endpoint::Kind::kUnix;
      net_config.endpoint.path = opts["listen"];
    } else {
      net_config.endpoint.kind = net::Endpoint::Kind::kTcp;
      net_config.endpoint.port =
          static_cast<std::uint16_t>(std::stoi(opts["tcp"]));
    }
    if (opts.count("max-connections"))
      net_config.max_connections =
          static_cast<std::size_t>(std::stoul(opts["max-connections"]));
    if (opts.count("max-inflight"))
      net_config.max_inflight_total =
          static_cast<std::size_t>(std::stoul(opts["max-inflight"]));
    if (opts.count("tick-ms"))
      net_config.tick_ms = std::stoi(opts["tick-ms"]);
    if (opts.count("idle-ticks"))
      net_config.idle_timeout_ticks = std::stoull(opts["idle-ticks"]);
    if (opts.count("drain-ticks"))
      net_config.drain_timeout_ticks = std::stoull(opts["drain-ticks"]);
    // The request budget mirrors the service deadline so socket callers get
    // the same per-request guarantee as batch callers.
    net_config.request_deadline_ns = config.deadline_ns;
    return run_socket(net_config, strict, indent);
  } catch (const std::exception& e) {
    print_error(e.what());
    return 2;
  }
}
