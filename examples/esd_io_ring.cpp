// Scenario: sizing the interconnect of an I/O cell's ESD discharge path
// (paper Section 6). The ESD clamp may survive a 2 kV HBM zap, but the
// metal routing to it must carry the same current without melting — the
// paper's point that ESD-path interconnect obeys *different* rules than
// the self-consistent signal/power limits.
#include <cstdio>

#include "esd/failure.h"
#include "esd/waveforms.h"
#include "numeric/constants.h"
#include "report/table.h"
#include "tech/ntrs.h"
#include "thermal/impedance.h"

int main() {
  using namespace dsmt;

  const auto technology = tech::make_ntrs_250nm_alcu();
  const double hbm_kv = 2.0;                       // qualification target
  const double i_peak = hbm_kv * 1000.0 / 1500.0;  // HBM peak current

  std::printf("ESD discharge-path sizing, %s, %.0f kV HBM (I_peak = %.2f A)\n\n",
              technology.name.c_str(), hbm_kv, i_peak);

  // 1. Minimum width per metal level (adiabatic melt-onset criterion with
  //    1.5x safety at the HBM's ~150 ns effective width).
  report::Table widths({"Layer", "t_m [um]", "min W [um]", "I/W [mA/um]"});
  for (const auto& layer : technology.layers) {
    const double w_min = esd::min_width_for_esd(
        technology.metal, i_peak, 150e-9, layer.thickness, kTrefK);
    widths.add_row({report::level_label(layer.level),
                    report::fmt(to_um(layer.thickness), 2),
                    report::fmt(to_um(w_min), 2),
                    report::fmt(i_peak * 1e3 / to_um(w_min), 1)});
  }
  std::printf("Minimum discharge-path width per level:\n%s\n",
              widths.to_string().c_str());

  // 2. What happens if a designer routes the path on minimum-width wire
  //    instead? Full waveform assessment with vertical heat loss.
  std::printf("Assessment of candidate routings on M%d:\n",
              technology.top_level());
  report::Table assess_tbl({"W [um]", "T_peak [C]", "state", "EM derating"});
  const auto& top = technology.layer(technology.top_level());
  const auto stack = technology.stack_below(technology.top_level(),
                                            materials::make_oxide());
  for (double w_um : {1.0, 4.0, 8.0, 16.0, 32.0}) {
    thermal::PulseLineSpec line;
    line.metal = technology.metal;
    line.w_m = um(w_um);
    line.t_m = top.thickness;
    line.rth_per_len = thermal::rth_per_length(
        stack, thermal::effective_width(metres(line.w_m),
                                        metres(stack.total_thickness()),
                                        thermal::kPhiQuasi2D));
    line.t_ref = kTrefK;
    const auto out = esd::assess(line, esd::hbm(hbm_kv * 1000.0));
    assess_tbl.add_row({report::fmt(w_um, 1),
                        report::fmt(kelvin_to_celsius(out.peak_temperature), 0),
                        esd::to_string(out.state),
                        report::fmt(out.em_lifetime_derating, 2)});
  }
  std::printf("%s\n", assess_tbl.to_string().c_str());
  std::printf(
      "Narrow routings either open outright or survive with latent damage\n"
      "(melted and resolidified -> degraded EM lifetime, paper ref. [9]);\n"
      "the sizing rule above keeps the path in the 'safe' region.\n");
  return 0;
}
