// Scenario: a chip integrator checks whether the delay-optimal global bus
// plan respects the thermal/EM design rules — the paper's Section 4 flow,
// end to end:
//   1. extract per-layer wire parasitics,
//   2. compute delay-optimal repeater length/size (Eqs. 16-17),
//   3. simulate the buffered stage with the MNA engine (SPICE substitute),
//   4. compare the measured current densities against the self-consistent
//      limits (Eq. 13 + Eq. 15), per dielectric flow.
#include <cstdio>

#include "core/engine.h"
#include "numeric/constants.h"
#include "report/table.h"
#include "tech/ntrs.h"

int main() {
  using namespace dsmt;

  const auto technology = tech::make_ntrs_100nm_cu();
  core::EngineOptions opts;
  opts.sim.steps_per_period = 3000;
  core::DesignRuleEngine engine(technology, MA_per_cm2(0.6), opts);

  std::printf("Global-bus sign-off for %s (j0 = 0.6 MA/cm2)\n\n",
              technology.name.c_str());

  report::Table table({"Layer", "Dielectric", "l_opt [mm]", "s_opt", "r_eff",
                       "j_peak [MA/cm2]", "limit [MA/cm2]", "margin",
                       "verdict"});
  for (const auto& [gap_fill, k_rel] :
       {std::pair{materials::make_oxide(), 4.0},
        std::pair{materials::make_hsq(), 2.9}}) {
    for (int level : {technology.top_level() - 1, technology.top_level()}) {
      const auto check = engine.check_layer(level, k_rel, gap_fill);
      table.add_row({report::level_label(level), gap_fill.name,
                     report::fmt(check.optimal.l_opt * 1e3, 2),
                     report::fmt(check.sim.size_used, 0),
                     report::fmt(check.sim.duty_effective, 3),
                     report::fmt(to_MA_per_cm2(check.sim.j_peak), 3),
                     report::fmt(to_MA_per_cm2(check.thermal_limit.j_peak), 3),
                     report::fmt(check.jpeak_margin, 2),
                     check.pass ? "PASS" : "FAIL"});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Interpretation: the delay-optimal plan passes with margin on oxide;\n"
      "switching the flow to low-k keeps the delay win (lower c lengthens\n"
      "l_opt and shrinks s_opt) but eats into the thermal margin — the\n"
      "paper's core design-guidance message.\n");
  return 0;
}
