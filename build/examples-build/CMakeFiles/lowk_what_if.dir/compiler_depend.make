# Empty compiler generated dependencies file for lowk_what_if.
# This may be replaced when dependencies are built.
