file(REMOVE_RECURSE
  "../examples/lowk_what_if"
  "../examples/lowk_what_if.pdb"
  "CMakeFiles/lowk_what_if.dir/lowk_what_if.cpp.o"
  "CMakeFiles/lowk_what_if.dir/lowk_what_if.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowk_what_if.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
