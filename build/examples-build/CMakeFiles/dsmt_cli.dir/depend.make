# Empty dependencies file for dsmt_cli.
# This may be replaced when dependencies are built.
