file(REMOVE_RECURSE
  "../examples/dsmt_cli"
  "../examples/dsmt_cli.pdb"
  "CMakeFiles/dsmt_cli.dir/dsmt_cli.cpp.o"
  "CMakeFiles/dsmt_cli.dir/dsmt_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsmt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
