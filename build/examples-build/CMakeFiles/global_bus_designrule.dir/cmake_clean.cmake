file(REMOVE_RECURSE
  "../examples/global_bus_designrule"
  "../examples/global_bus_designrule.pdb"
  "CMakeFiles/global_bus_designrule.dir/global_bus_designrule.cpp.o"
  "CMakeFiles/global_bus_designrule.dir/global_bus_designrule.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_bus_designrule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
