# Empty compiler generated dependencies file for global_bus_designrule.
# This may be replaced when dependencies are built.
