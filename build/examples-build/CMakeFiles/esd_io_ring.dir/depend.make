# Empty dependencies file for esd_io_ring.
# This may be replaced when dependencies are built.
