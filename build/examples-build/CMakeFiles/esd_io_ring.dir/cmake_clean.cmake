file(REMOVE_RECURSE
  "../examples/esd_io_ring"
  "../examples/esd_io_ring.pdb"
  "CMakeFiles/esd_io_ring.dir/esd_io_ring.cpp.o"
  "CMakeFiles/esd_io_ring.dir/esd_io_ring.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esd_io_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
