# Empty dependencies file for power_grid_checkout.
# This may be replaced when dependencies are built.
