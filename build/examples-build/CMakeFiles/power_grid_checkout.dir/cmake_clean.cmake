file(REMOVE_RECURSE
  "../examples/power_grid_checkout"
  "../examples/power_grid_checkout.pdb"
  "CMakeFiles/power_grid_checkout.dir/power_grid_checkout.cpp.o"
  "CMakeFiles/power_grid_checkout.dir/power_grid_checkout.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_grid_checkout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
