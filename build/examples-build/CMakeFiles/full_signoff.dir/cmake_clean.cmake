file(REMOVE_RECURSE
  "../examples/full_signoff"
  "../examples/full_signoff.pdb"
  "CMakeFiles/full_signoff.dir/full_signoff.cpp.o"
  "CMakeFiles/full_signoff.dir/full_signoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_signoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
