# Empty compiler generated dependencies file for full_signoff.
# This may be replaced when dependencies are built.
