file(REMOVE_RECURSE
  "../examples/spice_deck_demo"
  "../examples/spice_deck_demo.pdb"
  "CMakeFiles/spice_deck_demo.dir/spice_deck_demo.cpp.o"
  "CMakeFiles/spice_deck_demo.dir/spice_deck_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_deck_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
