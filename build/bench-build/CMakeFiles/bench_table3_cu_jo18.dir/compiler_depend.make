# Empty compiler generated dependencies file for bench_table3_cu_jo18.
# This may be replaced when dependencies are built.
