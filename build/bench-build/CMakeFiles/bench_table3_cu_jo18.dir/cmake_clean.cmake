file(REMOVE_RECURSE
  "../bench/bench_table3_cu_jo18"
  "../bench/bench_table3_cu_jo18.pdb"
  "CMakeFiles/bench_table3_cu_jo18.dir/bench_table3_cu_jo18.cpp.o"
  "CMakeFiles/bench_table3_cu_jo18.dir/bench_table3_cu_jo18.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_cu_jo18.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
