# Empty dependencies file for bench_table7_3d_array.
# This may be replaced when dependencies are built.
