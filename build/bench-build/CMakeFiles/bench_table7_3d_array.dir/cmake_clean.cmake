file(REMOVE_RECURSE
  "../bench/bench_table7_3d_array"
  "../bench/bench_table7_3d_array.pdb"
  "CMakeFiles/bench_table7_3d_array.dir/bench_table7_3d_array.cpp.o"
  "CMakeFiles/bench_table7_3d_array.dir/bench_table7_3d_array.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_3d_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
