# Empty compiler generated dependencies file for bench_fig2_duty_cycle.
# This may be replaced when dependencies are built.
