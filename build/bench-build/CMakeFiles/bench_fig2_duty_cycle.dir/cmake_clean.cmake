file(REMOVE_RECURSE
  "../bench/bench_fig2_duty_cycle"
  "../bench/bench_fig2_duty_cycle.pdb"
  "CMakeFiles/bench_fig2_duty_cycle.dir/bench_fig2_duty_cycle.cpp.o"
  "CMakeFiles/bench_fig2_duty_cycle.dir/bench_fig2_duty_cycle.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_duty_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
