file(REMOVE_RECURSE
  "../bench/bench_esd_failure"
  "../bench/bench_esd_failure.pdb"
  "CMakeFiles/bench_esd_failure.dir/bench_esd_failure.cpp.o"
  "CMakeFiles/bench_esd_failure.dir/bench_esd_failure.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_esd_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
