file(REMOVE_RECURSE
  "../bench/bench_table6_repeater_010"
  "../bench/bench_table6_repeater_010.pdb"
  "CMakeFiles/bench_table6_repeater_010.dir/bench_table6_repeater_010.cpp.o"
  "CMakeFiles/bench_table6_repeater_010.dir/bench_table6_repeater_010.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_repeater_010.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
