# Empty compiler generated dependencies file for bench_table6_repeater_010.
# This may be replaced when dependencies are built.
