file(REMOVE_RECURSE
  "../bench/bench_ablation_duty"
  "../bench/bench_ablation_duty.pdb"
  "CMakeFiles/bench_ablation_duty.dir/bench_ablation_duty.cpp.o"
  "CMakeFiles/bench_ablation_duty.dir/bench_ablation_duty.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_duty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
