file(REMOVE_RECURSE
  "../bench/bench_crowding"
  "../bench/bench_crowding.pdb"
  "CMakeFiles/bench_crowding.dir/bench_crowding.cpp.o"
  "CMakeFiles/bench_crowding.dir/bench_crowding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crowding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
