# Empty compiler generated dependencies file for bench_ablation_stack.
# This may be replaced when dependencies are built.
