file(REMOVE_RECURSE
  "../bench/bench_ablation_stack"
  "../bench/bench_ablation_stack.pdb"
  "CMakeFiles/bench_ablation_stack.dir/bench_ablation_stack.cpp.o"
  "CMakeFiles/bench_ablation_stack.dir/bench_ablation_stack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
