file(REMOVE_RECURSE
  "../bench/bench_table2_cu_jo06"
  "../bench/bench_table2_cu_jo06.pdb"
  "CMakeFiles/bench_table2_cu_jo06.dir/bench_table2_cu_jo06.cpp.o"
  "CMakeFiles/bench_table2_cu_jo06.dir/bench_table2_cu_jo06.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cu_jo06.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
