# Empty dependencies file for bench_table2_cu_jo06.
# This may be replaced when dependencies are built.
