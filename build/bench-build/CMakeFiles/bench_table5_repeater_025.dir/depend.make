# Empty dependencies file for bench_table5_repeater_025.
# This may be replaced when dependencies are built.
