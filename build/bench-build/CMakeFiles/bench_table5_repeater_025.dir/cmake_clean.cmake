file(REMOVE_RECURSE
  "../bench/bench_table5_repeater_025"
  "../bench/bench_table5_repeater_025.pdb"
  "CMakeFiles/bench_table5_repeater_025.dir/bench_table5_repeater_025.cpp.o"
  "CMakeFiles/bench_table5_repeater_025.dir/bench_table5_repeater_025.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_repeater_025.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
