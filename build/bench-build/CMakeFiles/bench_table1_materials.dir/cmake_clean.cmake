file(REMOVE_RECURSE
  "../bench/bench_table1_materials"
  "../bench/bench_table1_materials.pdb"
  "CMakeFiles/bench_table1_materials.dir/bench_table1_materials.cpp.o"
  "CMakeFiles/bench_table1_materials.dir/bench_table1_materials.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_materials.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
