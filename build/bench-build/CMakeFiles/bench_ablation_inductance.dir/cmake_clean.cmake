file(REMOVE_RECURSE
  "../bench/bench_ablation_inductance"
  "../bench/bench_ablation_inductance.pdb"
  "CMakeFiles/bench_ablation_inductance.dir/bench_ablation_inductance.cpp.o"
  "CMakeFiles/bench_ablation_inductance.dir/bench_ablation_inductance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_inductance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
