# Empty dependencies file for bench_ablation_inductance.
# This may be replaced when dependencies are built.
