# Empty dependencies file for bench_em_models.
# This may be replaced when dependencies are built.
