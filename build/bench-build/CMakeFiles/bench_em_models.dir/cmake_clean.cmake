file(REMOVE_RECURSE
  "../bench/bench_em_models"
  "../bench/bench_em_models.pdb"
  "CMakeFiles/bench_em_models.dir/bench_em_models.cpp.o"
  "CMakeFiles/bench_em_models.dir/bench_em_models.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_em_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
