file(REMOVE_RECURSE
  "../bench/bench_fig7_waveforms"
  "../bench/bench_fig7_waveforms.pdb"
  "CMakeFiles/bench_fig7_waveforms.dir/bench_fig7_waveforms.cpp.o"
  "CMakeFiles/bench_fig7_waveforms.dir/bench_fig7_waveforms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_waveforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
