file(REMOVE_RECURSE
  "../bench/bench_table4_alcu"
  "../bench/bench_table4_alcu.pdb"
  "CMakeFiles/bench_table4_alcu.dir/bench_table4_alcu.cpp.o"
  "CMakeFiles/bench_table4_alcu.dir/bench_table4_alcu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_alcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
