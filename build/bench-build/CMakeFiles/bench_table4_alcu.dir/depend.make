# Empty dependencies file for bench_table4_alcu.
# This may be replaced when dependencies are built.
