file(REMOVE_RECURSE
  "../bench/bench_scaling_trend"
  "../bench/bench_scaling_trend.pdb"
  "CMakeFiles/bench_scaling_trend.dir/bench_scaling_trend.cpp.o"
  "CMakeFiles/bench_scaling_trend.dir/bench_scaling_trend.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
