# Empty dependencies file for bench_scaling_trend.
# This may be replaced when dependencies are built.
