file(REMOVE_RECURSE
  "../bench/bench_pulsed_rating"
  "../bench/bench_pulsed_rating.pdb"
  "CMakeFiles/bench_pulsed_rating.dir/bench_pulsed_rating.cpp.o"
  "CMakeFiles/bench_pulsed_rating.dir/bench_pulsed_rating.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pulsed_rating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
