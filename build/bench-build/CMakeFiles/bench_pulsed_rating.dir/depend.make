# Empty dependencies file for bench_pulsed_rating.
# This may be replaced when dependencies are built.
