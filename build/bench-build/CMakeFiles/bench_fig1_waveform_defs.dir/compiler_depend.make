# Empty compiler generated dependencies file for bench_fig1_waveform_defs.
# This may be replaced when dependencies are built.
