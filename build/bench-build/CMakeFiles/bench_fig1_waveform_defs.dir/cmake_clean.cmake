file(REMOVE_RECURSE
  "../bench/bench_fig1_waveform_defs"
  "../bench/bench_fig1_waveform_defs.pdb"
  "CMakeFiles/bench_fig1_waveform_defs.dir/bench_fig1_waveform_defs.cpp.o"
  "CMakeFiles/bench_fig1_waveform_defs.dir/bench_fig1_waveform_defs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_waveform_defs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
