# Empty compiler generated dependencies file for bench_fig3_jo_dependence.
# This may be replaced when dependencies are built.
