file(REMOVE_RECURSE
  "../bench/bench_fig3_jo_dependence"
  "../bench/bench_fig3_jo_dependence.pdb"
  "CMakeFiles/bench_fig3_jo_dependence.dir/bench_fig3_jo_dependence.cpp.o"
  "CMakeFiles/bench_fig3_jo_dependence.dir/bench_fig3_jo_dependence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_jo_dependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
