file(REMOVE_RECURSE
  "../bench/bench_fig5_thermal_impedance"
  "../bench/bench_fig5_thermal_impedance.pdb"
  "CMakeFiles/bench_fig5_thermal_impedance.dir/bench_fig5_thermal_impedance.cpp.o"
  "CMakeFiles/bench_fig5_thermal_impedance.dir/bench_fig5_thermal_impedance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_thermal_impedance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
