# Empty compiler generated dependencies file for bench_fig5_thermal_impedance.
# This may be replaced when dependencies are built.
