file(REMOVE_RECURSE
  "../bench/bench_rms_premise"
  "../bench/bench_rms_premise.pdb"
  "CMakeFiles/bench_rms_premise.dir/bench_rms_premise.cpp.o"
  "CMakeFiles/bench_rms_premise.dir/bench_rms_premise.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rms_premise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
