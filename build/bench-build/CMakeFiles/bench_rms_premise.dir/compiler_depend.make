# Empty compiler generated dependencies file for bench_rms_premise.
# This may be replaced when dependencies are built.
