file(REMOVE_RECURSE
  "../bench/bench_ablation_3d"
  "../bench/bench_ablation_3d.pdb"
  "CMakeFiles/bench_ablation_3d.dir/bench_ablation_3d.cpp.o"
  "CMakeFiles/bench_ablation_3d.dir/bench_ablation_3d.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
