# Empty dependencies file for dsmt.
# This may be replaced when dependencies are built.
