
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/deck.cpp" "src/CMakeFiles/dsmt.dir/circuit/deck.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/circuit/deck.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/CMakeFiles/dsmt.dir/circuit/netlist.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/circuit/netlist.cpp.o.d"
  "/root/repo/src/circuit/rcline.cpp" "src/CMakeFiles/dsmt.dir/circuit/rcline.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/circuit/rcline.cpp.o.d"
  "/root/repo/src/circuit/rctree.cpp" "src/CMakeFiles/dsmt.dir/circuit/rctree.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/circuit/rctree.cpp.o.d"
  "/root/repo/src/circuit/transient.cpp" "src/CMakeFiles/dsmt.dir/circuit/transient.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/circuit/transient.cpp.o.d"
  "/root/repo/src/circuit/waveform.cpp" "src/CMakeFiles/dsmt.dir/circuit/waveform.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/circuit/waveform.cpp.o.d"
  "/root/repo/src/core/cosim.cpp" "src/CMakeFiles/dsmt.dir/core/cosim.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/core/cosim.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/CMakeFiles/dsmt.dir/core/engine.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/core/engine.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/CMakeFiles/dsmt.dir/core/sensitivity.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/core/sensitivity.cpp.o.d"
  "/root/repo/src/core/signoff.cpp" "src/CMakeFiles/dsmt.dir/core/signoff.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/core/signoff.cpp.o.d"
  "/root/repo/src/core/variation.cpp" "src/CMakeFiles/dsmt.dir/core/variation.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/core/variation.cpp.o.d"
  "/root/repo/src/em/bipolar.cpp" "src/CMakeFiles/dsmt.dir/em/bipolar.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/em/bipolar.cpp.o.d"
  "/root/repo/src/em/black.cpp" "src/CMakeFiles/dsmt.dir/em/black.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/em/black.cpp.o.d"
  "/root/repo/src/em/budget.cpp" "src/CMakeFiles/dsmt.dir/em/budget.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/em/budget.cpp.o.d"
  "/root/repo/src/em/crowding.cpp" "src/CMakeFiles/dsmt.dir/em/crowding.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/em/crowding.cpp.o.d"
  "/root/repo/src/em/profile.cpp" "src/CMakeFiles/dsmt.dir/em/profile.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/em/profile.cpp.o.d"
  "/root/repo/src/em/void_growth.cpp" "src/CMakeFiles/dsmt.dir/em/void_growth.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/em/void_growth.cpp.o.d"
  "/root/repo/src/esd/failure.cpp" "src/CMakeFiles/dsmt.dir/esd/failure.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/esd/failure.cpp.o.d"
  "/root/repo/src/esd/waveforms.cpp" "src/CMakeFiles/dsmt.dir/esd/waveforms.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/esd/waveforms.cpp.o.d"
  "/root/repo/src/extraction/capmodel.cpp" "src/CMakeFiles/dsmt.dir/extraction/capmodel.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/extraction/capmodel.cpp.o.d"
  "/root/repo/src/extraction/laplace2d.cpp" "src/CMakeFiles/dsmt.dir/extraction/laplace2d.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/extraction/laplace2d.cpp.o.d"
  "/root/repo/src/extraction/wire_rc.cpp" "src/CMakeFiles/dsmt.dir/extraction/wire_rc.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/extraction/wire_rc.cpp.o.d"
  "/root/repo/src/materials/dielectric.cpp" "src/CMakeFiles/dsmt.dir/materials/dielectric.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/materials/dielectric.cpp.o.d"
  "/root/repo/src/materials/metal.cpp" "src/CMakeFiles/dsmt.dir/materials/metal.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/materials/metal.cpp.o.d"
  "/root/repo/src/numeric/dense.cpp" "src/CMakeFiles/dsmt.dir/numeric/dense.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/numeric/dense.cpp.o.d"
  "/root/repo/src/numeric/interp.cpp" "src/CMakeFiles/dsmt.dir/numeric/interp.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/numeric/interp.cpp.o.d"
  "/root/repo/src/numeric/mesh.cpp" "src/CMakeFiles/dsmt.dir/numeric/mesh.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/numeric/mesh.cpp.o.d"
  "/root/repo/src/numeric/ode.cpp" "src/CMakeFiles/dsmt.dir/numeric/ode.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/numeric/ode.cpp.o.d"
  "/root/repo/src/numeric/polyfit.cpp" "src/CMakeFiles/dsmt.dir/numeric/polyfit.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/numeric/polyfit.cpp.o.d"
  "/root/repo/src/numeric/quadrature.cpp" "src/CMakeFiles/dsmt.dir/numeric/quadrature.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/numeric/quadrature.cpp.o.d"
  "/root/repo/src/numeric/roots.cpp" "src/CMakeFiles/dsmt.dir/numeric/roots.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/numeric/roots.cpp.o.d"
  "/root/repo/src/numeric/sparse.cpp" "src/CMakeFiles/dsmt.dir/numeric/sparse.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/numeric/sparse.cpp.o.d"
  "/root/repo/src/numeric/stats.cpp" "src/CMakeFiles/dsmt.dir/numeric/stats.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/numeric/stats.cpp.o.d"
  "/root/repo/src/numeric/tridiag.cpp" "src/CMakeFiles/dsmt.dir/numeric/tridiag.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/numeric/tridiag.cpp.o.d"
  "/root/repo/src/powergrid/grid.cpp" "src/CMakeFiles/dsmt.dir/powergrid/grid.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/powergrid/grid.cpp.o.d"
  "/root/repo/src/repeater/constrained.cpp" "src/CMakeFiles/dsmt.dir/repeater/constrained.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/repeater/constrained.cpp.o.d"
  "/root/repo/src/repeater/crosstalk.cpp" "src/CMakeFiles/dsmt.dir/repeater/crosstalk.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/repeater/crosstalk.cpp.o.d"
  "/root/repo/src/repeater/delay.cpp" "src/CMakeFiles/dsmt.dir/repeater/delay.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/repeater/delay.cpp.o.d"
  "/root/repo/src/repeater/optimizer.cpp" "src/CMakeFiles/dsmt.dir/repeater/optimizer.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/repeater/optimizer.cpp.o.d"
  "/root/repo/src/repeater/power.cpp" "src/CMakeFiles/dsmt.dir/repeater/power.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/repeater/power.cpp.o.d"
  "/root/repo/src/repeater/simulate.cpp" "src/CMakeFiles/dsmt.dir/repeater/simulate.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/repeater/simulate.cpp.o.d"
  "/root/repo/src/report/json.cpp" "src/CMakeFiles/dsmt.dir/report/json.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/report/json.cpp.o.d"
  "/root/repo/src/report/table.cpp" "src/CMakeFiles/dsmt.dir/report/table.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/report/table.cpp.o.d"
  "/root/repo/src/selfconsistent/solver.cpp" "src/CMakeFiles/dsmt.dir/selfconsistent/solver.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/selfconsistent/solver.cpp.o.d"
  "/root/repo/src/selfconsistent/sweep.cpp" "src/CMakeFiles/dsmt.dir/selfconsistent/sweep.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/selfconsistent/sweep.cpp.o.d"
  "/root/repo/src/selfconsistent/waveform.cpp" "src/CMakeFiles/dsmt.dir/selfconsistent/waveform.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/selfconsistent/waveform.cpp.o.d"
  "/root/repo/src/tech/layer_stack.cpp" "src/CMakeFiles/dsmt.dir/tech/layer_stack.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/tech/layer_stack.cpp.o.d"
  "/root/repo/src/tech/ntrs.cpp" "src/CMakeFiles/dsmt.dir/tech/ntrs.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/tech/ntrs.cpp.o.d"
  "/root/repo/src/tech/scaling.cpp" "src/CMakeFiles/dsmt.dir/tech/scaling.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/tech/scaling.cpp.o.d"
  "/root/repo/src/tech/techfile.cpp" "src/CMakeFiles/dsmt.dir/tech/techfile.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/tech/techfile.cpp.o.d"
  "/root/repo/src/tech/technology.cpp" "src/CMakeFiles/dsmt.dir/tech/technology.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/tech/technology.cpp.o.d"
  "/root/repo/src/tech/via.cpp" "src/CMakeFiles/dsmt.dir/tech/via.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/tech/via.cpp.o.d"
  "/root/repo/src/thermal/fd1d.cpp" "src/CMakeFiles/dsmt.dir/thermal/fd1d.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/thermal/fd1d.cpp.o.d"
  "/root/repo/src/thermal/fd2d.cpp" "src/CMakeFiles/dsmt.dir/thermal/fd2d.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/thermal/fd2d.cpp.o.d"
  "/root/repo/src/thermal/fd3d.cpp" "src/CMakeFiles/dsmt.dir/thermal/fd3d.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/thermal/fd3d.cpp.o.d"
  "/root/repo/src/thermal/foster.cpp" "src/CMakeFiles/dsmt.dir/thermal/foster.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/thermal/foster.cpp.o.d"
  "/root/repo/src/thermal/healing.cpp" "src/CMakeFiles/dsmt.dir/thermal/healing.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/thermal/healing.cpp.o.d"
  "/root/repo/src/thermal/impedance.cpp" "src/CMakeFiles/dsmt.dir/thermal/impedance.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/thermal/impedance.cpp.o.d"
  "/root/repo/src/thermal/scenarios.cpp" "src/CMakeFiles/dsmt.dir/thermal/scenarios.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/thermal/scenarios.cpp.o.d"
  "/root/repo/src/thermal/thermometry.cpp" "src/CMakeFiles/dsmt.dir/thermal/thermometry.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/thermal/thermometry.cpp.o.d"
  "/root/repo/src/thermal/transient.cpp" "src/CMakeFiles/dsmt.dir/thermal/transient.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/thermal/transient.cpp.o.d"
  "/root/repo/src/thermal/zth.cpp" "src/CMakeFiles/dsmt.dir/thermal/zth.cpp.o" "gcc" "src/CMakeFiles/dsmt.dir/thermal/zth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
