file(REMOVE_RECURSE
  "libdsmt.a"
)
