
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_circuit_mosfet.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_circuit_mosfet.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_circuit_mosfet.cpp.o.d"
  "/root/repo/tests/test_circuit_transient.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_circuit_transient.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_circuit_transient.cpp.o.d"
  "/root/repo/tests/test_constrained.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_constrained.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_constrained.cpp.o.d"
  "/root/repo/tests/test_cosim.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_cosim.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_cosim.cpp.o.d"
  "/root/repo/tests/test_crosstalk.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_crosstalk.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_crosstalk.cpp.o.d"
  "/root/repo/tests/test_crowding.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_crowding.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_crowding.cpp.o.d"
  "/root/repo/tests/test_deck.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_deck.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_deck.cpp.o.d"
  "/root/repo/tests/test_delay_models.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_delay_models.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_delay_models.cpp.o.d"
  "/root/repo/tests/test_electrothermal.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_electrothermal.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_electrothermal.cpp.o.d"
  "/root/repo/tests/test_em.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_em.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_em.cpp.o.d"
  "/root/repo/tests/test_em_budget.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_em_budget.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_em_budget.cpp.o.d"
  "/root/repo/tests/test_em_profile.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_em_profile.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_em_profile.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_esd.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_esd.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_esd.cpp.o.d"
  "/root/repo/tests/test_extraction.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_extraction.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_extraction.cpp.o.d"
  "/root/repo/tests/test_fd3d.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_fd3d.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_fd3d.cpp.o.d"
  "/root/repo/tests/test_fit_interp_stats.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_fit_interp_stats.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_fit_interp_stats.cpp.o.d"
  "/root/repo/tests/test_foster.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_foster.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_foster.cpp.o.d"
  "/root/repo/tests/test_inductance_extraction.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_inductance_extraction.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_inductance_extraction.cpp.o.d"
  "/root/repo/tests/test_inductor.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_inductor.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_inductor.cpp.o.d"
  "/root/repo/tests/test_isource.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_isource.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_isource.cpp.o.d"
  "/root/repo/tests/test_json.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_json.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_json.cpp.o.d"
  "/root/repo/tests/test_linalg.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_linalg.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_linalg.cpp.o.d"
  "/root/repo/tests/test_materials.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_materials.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_materials.cpp.o.d"
  "/root/repo/tests/test_mesh.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_mesh.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_mesh.cpp.o.d"
  "/root/repo/tests/test_paper_claims.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_paper_claims.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_paper_claims.cpp.o.d"
  "/root/repo/tests/test_power.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_power.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_power.cpp.o.d"
  "/root/repo/tests/test_powergrid.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_powergrid.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_powergrid.cpp.o.d"
  "/root/repo/tests/test_property_sweeps.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_property_sweeps.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_property_sweeps.cpp.o.d"
  "/root/repo/tests/test_quadrature_ode.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_quadrature_ode.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_quadrature_ode.cpp.o.d"
  "/root/repo/tests/test_rctree.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_rctree.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_rctree.cpp.o.d"
  "/root/repo/tests/test_repeater.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_repeater.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_repeater.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_roots.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_roots.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_roots.cpp.o.d"
  "/root/repo/tests/test_sanity.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_sanity.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_sanity.cpp.o.d"
  "/root/repo/tests/test_sc_waveform.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_sc_waveform.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_sc_waveform.cpp.o.d"
  "/root/repo/tests/test_scaling.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_scaling.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_scaling.cpp.o.d"
  "/root/repo/tests/test_selfconsistent.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_selfconsistent.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_selfconsistent.cpp.o.d"
  "/root/repo/tests/test_sensitivity_variation.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_sensitivity_variation.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_sensitivity_variation.cpp.o.d"
  "/root/repo/tests/test_signoff.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_signoff.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_signoff.cpp.o.d"
  "/root/repo/tests/test_tech.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_tech.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_tech.cpp.o.d"
  "/root/repo/tests/test_thermal_array.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_thermal_array.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_thermal_array.cpp.o.d"
  "/root/repo/tests/test_thermal_fd2d.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_thermal_fd2d.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_thermal_fd2d.cpp.o.d"
  "/root/repo/tests/test_thermal_healing.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_thermal_healing.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_thermal_healing.cpp.o.d"
  "/root/repo/tests/test_thermal_impedance.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_thermal_impedance.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_thermal_impedance.cpp.o.d"
  "/root/repo/tests/test_thermal_transient.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_thermal_transient.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_thermal_transient.cpp.o.d"
  "/root/repo/tests/test_thermometry.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_thermometry.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_thermometry.cpp.o.d"
  "/root/repo/tests/test_via.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_via.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_via.cpp.o.d"
  "/root/repo/tests/test_void_growth.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_void_growth.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_void_growth.cpp.o.d"
  "/root/repo/tests/test_waveform.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_waveform.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_waveform.cpp.o.d"
  "/root/repo/tests/test_zth.cpp" "tests/CMakeFiles/dsmt_tests.dir/test_zth.cpp.o" "gcc" "tests/CMakeFiles/dsmt_tests.dir/test_zth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dsmt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
