# Empty dependencies file for dsmt_tests.
# This may be replaced when dependencies are built.
